"""Size and time unit constants and helpers.

All device capacities in this library are expressed in bytes and all
simulated time in integer nanoseconds.  These helpers keep call sites
readable (``4 * KIB``, ``usec(250)``) and make the scaling rules in
DESIGN.md auditable.
"""

from __future__ import annotations

# --- sizes -----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# --- time (simulated clock is integer nanoseconds) -------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(value * USEC)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(value * MSEC)


def sec(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(value * SEC)


def to_seconds(nanoseconds: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return nanoseconds / SEC


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return -(-value // alignment) * alignment


def is_aligned(value: int, alignment: int) -> bool:
    """Return True if ``value`` is a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value % alignment == 0


def format_size(num_bytes: int) -> str:
    """Human-readable size string, e.g. ``format_size(16 * MIB) == '16.0MiB'``."""
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024
    raise AssertionError("unreachable")
