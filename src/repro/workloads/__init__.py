"""Workload generators.

* :mod:`repro.workloads.distributions` — Zipf popularity (CacheBench-
  style) and db_bench's ``ReadRandom Exp Range`` skew knob.
* :mod:`repro.workloads.cachebench` — the micro-benchmark driver
  modelled on CacheBench's ``feature_stress/navy/bc`` config: 50% get,
  30% set, 20% delete (§4.1).
* :mod:`repro.workloads.dbbench` — fillrandom + readrandom drivers for
  the end-to-end RocksDB experiment (§4.2).
"""

from repro.workloads.distributions import (
    ExponentialSampler,
    ExpRangeSampler,
    UniformSampler,
    ZipfSampler,
    ValueSizeSampler,
)
from repro.workloads.cachebench import (
    CacheBenchConfig,
    CacheBenchDriver,
    CacheOp,
    WorkloadResult,
)
from repro.workloads.dbbench import DbBenchConfig, DbBenchDriver, DbBenchResult

__all__ = [
    "ExponentialSampler",
    "ExpRangeSampler",
    "UniformSampler",
    "ZipfSampler",
    "ValueSizeSampler",
    "CacheOp",
    "CacheBenchConfig",
    "CacheBenchDriver",
    "WorkloadResult",
    "DbBenchConfig",
    "DbBenchDriver",
    "DbBenchResult",
]
