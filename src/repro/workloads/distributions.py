"""Key-popularity and value-size distributions.

Caching workloads are skewed; the paper's micro benchmark uses
CacheBench's Zipf-like popularity and the end-to-end experiment controls
skew with db_bench's ``ReadRandom Exp Range`` parameter ("larger ER
value means more skewed data", §4.2).
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence

from repro.sim.rng import bulk_random, make_rng

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class UniformSampler:
    """Uniform key indices over ``[0, num_keys)``."""

    def __init__(self, num_keys: int, seed: int = 1) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        self.num_keys = num_keys
        self._rng = make_rng(seed, "uniform")

    def sample(self) -> int:
        return self._rng.randrange(self.num_keys)


class ZipfSampler:
    """Zipf(theta) popularity over a finite keyspace via inverse-CDF.

    Rank 1 is the hottest key; ranks are shuffled deterministically so
    hot keys are spread across the key space (as CacheBench does).
    """

    def __init__(self, num_keys: int, theta: float = 0.9, seed: int = 1) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.num_keys = num_keys
        self.theta = theta
        self._rng = make_rng(seed, "zipf")
        weights = [1.0 / (rank ** theta) for rank in range(1, num_keys + 1)]
        total = math.fsum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        # Map popularity ranks onto shuffled key ids.
        self._rank_to_key = list(range(num_keys))
        make_rng(seed, "zipf.shuffle").shuffle(self._rank_to_key)
        # Built lazily on the first sample_many(); plain sample() never
        # pays for the array copies.
        self._cdf_array = None
        self._rank_array = None

    def sample(self) -> int:
        rank = bisect.bisect_left(self._cdf, self._rng.random())
        return self._rank_to_key[min(rank, self.num_keys - 1)]

    def sample_many(self, n: int) -> List[int]:
        """Draw ``n`` key ids, bit-identical to ``n`` ``sample()`` calls.

        ``numpy.searchsorted(side="left")`` places a probe exactly where
        ``bisect.bisect_left`` does, so the vectorized inverse-CDF walk
        reproduces the scalar path draw for draw.
        """
        if n <= 0:
            return []
        us = bulk_random(self._rng, n)
        if _np is not None and isinstance(us, _np.ndarray):
            if self._cdf_array is None:
                self._cdf_array = _np.array(self._cdf, dtype=_np.float64)
                self._rank_array = _np.array(self._rank_to_key, dtype=_np.int64)
            ranks = _np.searchsorted(self._cdf_array, us, side="left")
            if self.num_keys > 1:
                _np.minimum(ranks, self.num_keys - 1, out=ranks)
            else:
                ranks = _np.zeros(n, dtype=_np.int64)
            return self._rank_array[ranks].tolist()
        cdf = self._cdf
        last = self.num_keys - 1
        rank_to_key = self._rank_to_key
        bl = bisect.bisect_left
        return [rank_to_key[min(bl(cdf, u), last)] for u in us]

    def key_of_rank(self, rank: int) -> int:
        """Key id holding popularity rank ``rank`` (0 = hottest)."""
        if not 0 <= rank < self.num_keys:
            raise IndexError(f"rank {rank} outside [0, {self.num_keys})")
        return self._rank_to_key[rank]


class ExpRangeSampler:
    """db_bench's ``-read_random_exp_range`` skew model.

    A draw ``x ~ U(0, exp_range)`` selects key ``floor(num_keys *
    exp(-x))``-ish: the probability mass decays exponentially across the
    key space, and a *larger* ``exp_range`` concentrates more of the
    accesses on fewer keys.  Like db_bench we scramble the key order so
    the hot set is not one contiguous range.
    """

    def __init__(self, num_keys: int, exp_range: float, seed: int = 1) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if exp_range < 0:
            raise ValueError("exp_range must be >= 0")
        self.num_keys = num_keys
        self.exp_range = exp_range
        self._rng = make_rng(seed, "exprange")

    def sample(self) -> int:
        if self.exp_range == 0:
            return self._rng.randrange(self.num_keys)
        x = self._rng.random() * self.exp_range
        frac = math.exp(-x)
        index = int(self.num_keys * frac)
        if index >= self.num_keys:
            index = self.num_keys - 1
        # Multiplicative hashing scrambles adjacency, as db_bench does.
        return (index * 0x9E3779B1) % self.num_keys


class ExponentialSampler:
    """Exponential inter-arrival gaps for open-loop (Poisson) traffic.

    ``sample()`` returns one gap in nanoseconds at the given rate;
    ``sample_at(rate)`` draws at a caller-supplied instantaneous rate,
    which is how the serving layer's diurnal/burst arrival processes
    modulate a base Poisson stream without a second RNG.
    """

    def __init__(self, rate_per_sec: float, seed: int = 1) -> None:
        if rate_per_sec <= 0:
            raise ValueError(f"rate_per_sec must be positive, got {rate_per_sec}")
        self.rate_per_sec = rate_per_sec
        self._rng = make_rng(seed, "exponential")

    def sample(self) -> int:
        return self.sample_at(self.rate_per_sec)

    def sample_at(self, rate_per_sec: float) -> int:
        """One inter-arrival gap (ns) at ``rate_per_sec`` requests/s."""
        if rate_per_sec <= 0:
            raise ValueError(f"rate_per_sec must be positive, got {rate_per_sec}")
        gap_seconds = self._rng.expovariate(rate_per_sec)
        # At least 1 ns so two arrivals never share a timestamp and the
        # event order stays well-defined.
        return max(1, int(gap_seconds * 1e9))

    def draw_uniforms(self, n: int) -> Sequence[float]:
        """Expose ``n`` raw uniforms from this stream (see bulk_random).

        Callers that modulate the rate per draw (diurnal/burst arrival
        processes) take the uniforms in bulk and apply the inverse
        transform themselves; the arithmetic must mirror
        :meth:`sample_at` exactly:
        ``max(1, int((-log(1 - u) / rate) * 1e9))``.
        """
        return bulk_random(self._rng, n)

    def sample_many(self, n: int, rate_per_sec: Optional[float] = None) -> List[int]:
        """``n`` gaps (ns) at a fixed rate, bit-identical to a scalar loop."""
        rate = self.rate_per_sec if rate_per_sec is None else rate_per_sec
        if rate <= 0:
            raise ValueError(f"rate_per_sec must be positive, got {rate}")
        log = math.log
        # CPython's expovariate is -log(1 - random()) / lambd; keep the
        # float operation order identical so int truncation matches.
        return [
            max(1, int((-log(1.0 - u) / rate) * 1e9))
            for u in bulk_random(self._rng, n)
        ]


class ValueSizeSampler:
    """Discrete value-size distribution (sizes with relative weights)."""

    def __init__(
        self,
        sizes: Sequence[int],
        weights: Sequence[float] = (),
        seed: int = 1,
    ) -> None:
        if not sizes:
            raise ValueError("need at least one size")
        if any(size <= 0 for size in sizes):
            raise ValueError("sizes must be positive")
        if weights and len(weights) != len(sizes):
            raise ValueError("weights must match sizes")
        self.sizes = list(sizes)
        self._weights = list(weights) if weights else [1.0] * len(sizes)
        total = math.fsum(self._weights)
        cumulative = 0.0
        self._cdf = []
        for weight in self._weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._rng = make_rng(seed, "valuesize")

    def sample(self) -> int:
        slot = bisect.bisect_left(self._cdf, self._rng.random())
        return self.sizes[min(slot, len(self.sizes) - 1)]
