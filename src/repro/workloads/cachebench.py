"""CacheBench-style micro-benchmark driver.

Models the workload the paper uses in §4.1: CacheBench's
``feature_stress/navy/bc`` mix — "50% get, 30% set, and 20% delete
operations" over a Zipf-popular keyspace, with LRU eviction in the
cache.  The driver runs against any :class:`~repro.cache.HybridCache`
and reports the figures the paper plots: throughput (operations per
minute), hit ratio, WAF breakdown, and latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.cache.engine import HybridCache
from repro.errors import ConfigError
from repro.sim.rng import bulk_random, make_rng
from repro.workloads.distributions import (
    UniformSampler,
    ValueSizeSampler,
    ZipfSampler,
)

# Integer op kinds for the pre-generated fast path: comparing small ints
# in the serving loop is markedly cheaper than string comparison, and
# the kinds array packs tighter than one CacheOp object per arrival.
KIND_GET = 0
KIND_SET = 1
KIND_DELETE = 2
KIND_NAMES = ("get", "set", "delete")


@dataclass(frozen=True)
class CacheBenchConfig:
    """Knobs mirroring the CacheBench config file."""

    num_ops: int = 50_000
    num_keys: int = 20_000
    get_ratio: float = 0.50
    set_ratio: float = 0.30
    delete_ratio: float = 0.20
    zipf_theta: float = 0.9
    key_size: int = 16
    value_sizes: Tuple[int, ...] = (512, 1024, 2048, 4096)
    value_weights: Tuple[float, ...] = (2.0, 4.0, 3.0, 1.0)
    warmup_ops: int = 0
    set_on_miss: bool = False
    # Deletes model invalidations of *stale* content: they sample
    # uniformly from the cold fraction of the popularity ranking rather
    # than by popularity (popularity-weighted deletes would cap the hit
    # ratio at sets/(sets+deletes) = 0.6, far below the paper's 94%).
    delete_uniform: bool = True
    delete_cold_fraction: float = 0.3
    seed: int = 7

    def __post_init__(self) -> None:
        total = self.get_ratio + self.set_ratio + self.delete_ratio
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"op ratios must sum to 1.0, got {total}")
        if self.num_ops < 1 or self.num_keys < 1:
            raise ConfigError("num_ops and num_keys must be >= 1")
        if self.key_size < 4:
            raise ConfigError("key_size must be >= 4")
        validate_value_distribution(self.value_sizes, self.value_weights)


def validate_value_distribution(
    sizes: Tuple[int, ...], weights: Tuple[float, ...]
) -> None:
    """Reject malformed value-size distributions at config time.

    The samplers would eventually fail on these, but deep inside a run
    with an unhelpful traceback; benchmark configs validate up front.
    """
    if not sizes:
        raise ConfigError("value_sizes must not be empty")
    for size in sizes:
        if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
            raise ConfigError(f"value_sizes must be positive ints, got {size!r}")
    if weights:
        if len(weights) != len(sizes):
            raise ConfigError(
                f"value_weights length {len(weights)} != value_sizes "
                f"length {len(sizes)}"
            )
        for weight in weights:
            if not isinstance(weight, (int, float)) or isinstance(weight, bool) \
                    or weight <= 0:
                raise ConfigError(
                    f"value_weights must be positive numbers, got {weight!r}"
                )


@dataclass
class WorkloadResult:
    """Everything the paper's micro-benchmark figures report."""

    scheme: str
    operations: int
    sim_seconds: float
    throughput_ops_per_sec: float
    hit_ratio: float
    waf_app: float
    waf_device: float
    get_p50_ns: int = 0
    get_p99_ns: int = 0
    set_p50_ns: int = 0
    set_p99_ns: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_minute_m(self) -> float:
        """Operations per minute, in millions (Figure 4's y-axis)."""
        return self.throughput_ops_per_sec * 60 / 1e6

    @property
    def waf_total(self) -> float:
        return self.waf_app * self.waf_device


class CacheOp(NamedTuple):
    """One generated operation, decoupled from its execution.

    The closed-loop driver applies each op immediately; the serving
    layer generates ops at arrival time and applies them when a shard's
    queue drains.  Value bytes are materialized at *apply* time so the
    size-sampler RNG stream is identical in both modes (ops that get
    shed never draw from it).

    A NamedTuple rather than a dataclass: op construction sits on the
    generation hot path and tuples allocate in one step.
    """

    kind: str  # "get" | "set" | "delete"
    key_index: int


class CacheBenchDriver:
    """Drives the get/set/delete mix against one cache instance."""

    def __init__(self, config: CacheBenchConfig = CacheBenchConfig()) -> None:
        self.config = config
        self._keys = ZipfSampler(config.num_keys, config.zipf_theta, config.seed)
        self._delete_keys = UniformSampler(config.num_keys, config.seed)
        self._sizes = ValueSizeSampler(
            config.value_sizes, config.value_weights, config.seed
        )
        self._ops_rng = make_rng(config.seed, "opmix")
        # key/value memos: both are pure functions of their arguments and
        # the keyspace is small and reused constantly under Zipf.
        self._key_cache: Dict[int, bytes] = {}
        self._value_cache: Dict[Tuple[int, int], bytes] = {}

    def key_bytes(self, key_index: int) -> bytes:
        """Fixed-width printable key, like CacheBench's generated keys."""
        cached = self._key_cache.get(key_index)
        if cached is None:
            cached = f"k{key_index:0{self.config.key_size - 1}d}".encode()[
                : self.config.key_size
            ]
            self._key_cache[key_index] = cached
        return cached

    def value_bytes(self, key_index: int, size: int) -> bytes:
        cached = self._value_cache.get((key_index, size))
        if cached is None:
            unit = f"v{key_index:014d}".encode()
            reps = -(-size // len(unit))
            cached = (unit * reps)[:size]
            self._value_cache[(key_index, size)] = cached
        return cached

    def run(self, cache: HybridCache) -> WorkloadResult:
        """Execute the mix; stats are reset after warm-up."""
        config = self.config
        for op_index in range(config.warmup_ops):
            self._one_op(cache)
        cache.reset_stats()
        for op_index in range(config.num_ops):
            self._one_op(cache)
        return self.summarize(cache)

    def summarize(self, cache: HybridCache) -> WorkloadResult:
        stats = cache.stats
        waf = cache.waf_window()
        return WorkloadResult(
            scheme=cache.store.scheme_name,
            operations=stats.operations,
            sim_seconds=stats.elapsed_seconds(),
            throughput_ops_per_sec=stats.throughput_ops(),
            hit_ratio=stats.hit_ratio,
            waf_app=waf.app,
            waf_device=waf.device,
            get_p50_ns=stats.get_latency.p50(),
            get_p99_ns=stats.get_latency.p99(),
            set_p50_ns=stats.set_latency.p50(),
            set_p99_ns=stats.set_latency.p99(),
            extra={
                "flash_hit_ratio": stats.flash_lookups.ratio,
                "ram_hit_ratio": stats.ram_lookups.ratio,
                "regions_evicted": cache.regions.regions_evicted,
                "items_evicted": cache.regions.items_evicted,
            },
        )

    def next_op(self) -> CacheOp:
        """Draw the next operation of the mix without executing it."""
        draw = self._ops_rng.random()
        config = self.config
        if draw < config.get_ratio:
            return CacheOp("get", self._keys.sample())
        if draw < config.get_ratio + config.set_ratio:
            return CacheOp("set", self._keys.sample())
        if config.delete_uniform:
            first_cold_rank = int(
                config.num_keys * (1.0 - config.delete_cold_fraction)
            )
            rank = first_cold_rank + self._delete_keys.sample() % max(
                1, config.num_keys - first_cold_rank
            )
            key_index = self._keys.key_of_rank(rank)
        else:
            key_index = self._keys.sample()
        return CacheOp("delete", key_index)

    def next_ops(self, n: int) -> Tuple[List[int], List[int]]:
        """Pre-draw ``n`` ops, bit-identical to ``n`` :meth:`next_op` calls.

        Returns parallel ``(kinds, key_indices)`` lists with ``KIND_*``
        integer kinds.  The op-mix, Zipf and uniform-delete streams are
        independent generators, so draining each in bulk preserves every
        per-stream draw sequence; the Zipf draws are consumed in op
        order by the get/set ops exactly as the scalar path would.
        """
        config = self.config
        us = bulk_random(self._ops_rng, n)
        get_t = config.get_ratio
        set_t = config.get_ratio + config.set_ratio
        kinds = [
            KIND_GET if u < get_t else (KIND_SET if u < set_t else KIND_DELETE)
            for u in us
        ]
        if not config.delete_uniform:
            # Every op (deletes included) draws from the Zipf stream in
            # op order, so one bulk draw covers the whole batch.
            return kinds, self._keys.sample_many(n)
        num_deletes = kinds.count(KIND_DELETE)
        zipf_keys = self._keys.sample_many(n - num_deletes)
        if num_deletes == 0:
            return kinds, zipf_keys
        key_indices = [0] * n
        zi = 0
        first_cold_rank = int(config.num_keys * (1.0 - config.delete_cold_fraction))
        cold_span = max(1, config.num_keys - first_cold_rank)
        sample_delete = self._delete_keys.sample
        key_of_rank = self._keys.key_of_rank
        for i, kind in enumerate(kinds):
            if kind != KIND_DELETE:
                key_indices[i] = zipf_keys[zi]
                zi += 1
            else:
                # randrange takes the *top* bits with rejection — numpy
                # masks the bottom bits — so delete draws stay scalar.
                key_indices[i] = key_of_rank(
                    first_cold_rank + sample_delete() % cold_span
                )
        return kinds, key_indices

    def apply_op(
        self, cache: HybridCache, op: CacheOp, key_prefix: bytes = b""
    ) -> bool:
        """Execute a generated op; returns True for a get that hit.

        ``key_prefix`` namespaces the keyspace (the serving layer gives
        each tenant a distinct prefix); with the default empty prefix the
        byte stream is identical to the closed-loop driver's.
        """
        key = key_prefix + self.key_bytes(op.key_index)
        if op.kind == "get":
            value = cache.get(key)
            if value is None and self.config.set_on_miss:
                cache.set(key, self.value_bytes(op.key_index, self._sizes.sample()))
            return value is not None
        if op.kind == "set":
            cache.set(key, self.value_bytes(op.key_index, self._sizes.sample()))
            return False
        cache.delete(key)
        return False

    def apply_kind(
        self, cache: HybridCache, kind: int, key_index: int, key: bytes
    ) -> bool:
        """:meth:`apply_op` for the pre-generated fast path.

        Takes the ``KIND_*`` integer and the already-built key so the
        serving loop neither constructs a CacheOp nor re-derives key
        bytes.  Draw-for-draw identical to :meth:`apply_op`.
        """
        if kind == KIND_GET:
            value = cache.get(key)
            if value is None and self.config.set_on_miss:
                cache.set(key, self.value_bytes(key_index, self._sizes.sample()))
            return value is not None
        if kind == KIND_SET:
            cache.set(key, self.value_bytes(key_index, self._sizes.sample()))
            return False
        cache.delete(key)
        return False

    def fill_on_miss(self, cache: HybridCache, key_index: int, key: bytes) -> None:
        """The set-on-miss fill exactly as :meth:`apply_op` performs it
        (same size-stream draw).  For serving loops that must interpose
        between the lookup and the fill — e.g. to consult a diversion
        journal before declaring a miss."""
        if self.config.set_on_miss:
            cache.set(key, self.value_bytes(key_index, self._sizes.sample()))

    def apply_kind_value(
        self, cache: HybridCache, kind: int, key_index: int, key: bytes
    ) -> Tuple[bool, Optional[bytes]]:
        """:meth:`apply_kind`, also returning the bytes the op moved.

        Returns ``(hit, value)``: for a get hit, the value read (so the
        replicated serving loop can read-repair without another lookup);
        for a set or a set-on-miss fill, the value written (so replica
        writes reuse the primary's bytes and never re-draw from the size
        stream — R=1 draw sequences are untouched, R>1 stays
        deterministic); ``None`` for a bare miss or a delete.
        Draw-for-draw identical to :meth:`apply_kind`.
        """
        if kind == KIND_GET:
            value = cache.get(key)
            if value is None:
                if self.config.set_on_miss:
                    written = self.value_bytes(key_index, self._sizes.sample())
                    cache.set(key, written)
                    return False, written
                return False, None
            return True, value
        if kind == KIND_SET:
            written = self.value_bytes(key_index, self._sizes.sample())
            cache.set(key, written)
            return False, written
        cache.delete(key)
        return False, None

    def _one_op(self, cache: HybridCache) -> None:
        self.apply_op(cache, self.next_op())
