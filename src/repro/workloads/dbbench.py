"""db_bench-style drivers for the end-to-end experiment (§4.2).

``fillrandom`` inserts the keyspace in random order (16-byte keys,
64-byte values, the paper's sizes), then ``readrandom`` issues point
gets with the ``ReadRandom Exp Range`` skew knob.  The LSM lives on the
simulated HDD; the scheme under test serves as the secondary cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bench.schemes import SCHEME_NAMES, SchemeScale, SchemeStack, build_scheme
from repro.errors import ConfigError
from repro.flash.hdd import HddConfig, HddDevice
from repro.lsm.db import Db, DbConfig, DbStats
from repro.lsm.secondary import CacheLibSecondaryCache
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng
from repro.units import GIB, KIB, MIB
from repro.workloads.distributions import ExpRangeSampler


@dataclass(frozen=True)
class DbBenchConfig:
    """Scaled mirror of the paper's db_bench settings."""

    num_keys: int = 80_000
    num_reads: int = 8_000
    warmup_reads: int = -1  # -1 → same as num_reads
    key_size: int = 16
    value_size: int = 64
    exp_range: float = 25.0
    scheme: str = "Region-Cache"
    # Flash cache size in zones (may be fractional: the paper's 5 GiB
    # cache is 4.75 zones of 1077 MiB, so Zone-Cache can only use 4 whole
    # zones while the other schemes get the full budget — one source of
    # its lower hit ratio in Figure 5).
    cache_zones: float = 4.5
    # Extra zones of OP for the non-Zone schemes.  The paper "reserves
    # enough OP space to reduce GC and focus on tail latency" (§4.2); at
    # zone granularity a FIFO-cycled cache needs roughly a cache-sized
    # tail of aging zones before garbage concentrates, hence ~6 spare
    # zones for a 4.5-zone cache.
    op_zones: int = 6
    hdd_bytes: int = 1 * GIB
    dram_block_cache_bytes: int = 128 * KIB
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_keys < 1 or self.num_reads < 1:
            raise ConfigError("num_keys and num_reads must be >= 1")
        if self.key_size < 8 or self.value_size < 1:
            raise ConfigError("key_size must be >= 8 and value_size >= 1")
        if not isinstance(self.value_size, int) or isinstance(self.value_size, bool):
            raise ConfigError(f"value_size must be an int, got {self.value_size!r}")
        if self.cache_zones < 1:
            raise ConfigError("cache_zones must be >= 1")
        if self.scheme not in SCHEME_NAMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEME_NAMES}"
            )


@dataclass
class DbBenchResult:
    """What Figure 5 and Table 2 report."""

    scheme: str
    exp_range: float
    reads: int
    sim_seconds: float
    ops_per_sec: float
    p50_ns: int
    p99_ns: int
    cache_hit_ratio: float
    found_ratio: float
    waf_app: float
    waf_device: float


# Fig 5 scale: 1 MiB zones keep the paper's zone≈cache/5 ratio at a DB
# size a simulation can fill; parallelism 4 keeps the per-byte program
# cost of 16 KiB regions and whole zones identical.
FIG5_SCALE = SchemeScale(
    zone_size=1 * MIB,
    # 64 KiB regions: 15 of the LSM's ~4 KiB blocks per region (≈6%
    # internal fragmentation).  Smaller scaled regions would waste a
    # quarter of the cache on fragmentation, which the paper's real
    # 16 MiB regions do not.
    region_size=64 * KIB,
    ram_bytes=64 * KIB,
    parallelism=4,
    pages_per_block=32,  # 128 KiB erase blocks: the small devices of this
    # experiment must hold many erase blocks or the FTL's GC headroom
    # would swallow the cache.
)


class DbBenchDriver:
    """fillrandom + readrandom against one scheme stack."""

    def __init__(
        self, config: DbBenchConfig, scale: Optional[SchemeScale] = None
    ) -> None:
        self.config = config
        self.scale = scale if scale is not None else FIG5_SCALE
        self.clock = SimClock()
        self.stack: Optional[SchemeStack] = None
        self.db: Optional[Db] = None

    def key_bytes(self, index: int) -> bytes:
        return f"user{index:0{self.config.key_size - 4}d}".encode()

    def value_bytes(self, index: int) -> bytes:
        unit = f"val{index:09d}".encode()
        reps = -(-self.config.value_size // len(unit))
        return (unit * reps)[: self.config.value_size]

    def setup(self) -> None:
        """Build the scheme stack, the HDD-backed DB, and fillrandom."""
        config = self.config
        cache_bytes = int(config.cache_zones * self.scale.zone_size)
        if config.scheme == "Zone-Cache":
            # Zone-Cache can only use whole zones of the budget.
            media_bytes = max(
                self.scale.zone_size,
                (cache_bytes // self.scale.zone_size) * self.scale.zone_size,
            )
        elif config.scheme == "File-Cache":
            # F2FS needs roughly double the zones for a given cache size
            # (the paper's 38 zones + nullblk for a 20 GiB cache), plus
            # the cleaning margin the small zone counts of this scaled
            # experiment demand.
            media_bytes = int(2.5 * cache_bytes)
        else:
            media_bytes = cache_bytes + config.op_zones * self.scale.zone_size
        self.stack = build_scheme(
            config.scheme, self.clock, self.scale, media_bytes, cache_bytes
        )
        hdd = HddDevice(
            self.clock, HddConfig(capacity_bytes=config.hdd_bytes), seed=config.seed
        )
        secondary = CacheLibSecondaryCache(self.stack.cache)
        self.db = Db(
            self.clock,
            hdd,
            DbConfig(block_cache_bytes=config.dram_block_cache_bytes),
            secondary_cache=secondary,
        )
        self._fillrandom()

    def _fillrandom(self) -> None:
        assert self.db is not None
        order = list(range(self.config.num_keys))
        make_rng(self.config.seed, "fillrandom").shuffle(order)
        for index in order:
            self.db.put(self.key_bytes(index), self.value_bytes(index))
        self.db.flush_memtable()

    def run(self) -> DbBenchResult:
        """Execute the benchmark and summarize (setup() runs if needed)."""
        if self.db is None:
            self.setup()
        assert self.db is not None and self.stack is not None
        sampler = ExpRangeSampler(
            self.config.num_keys, self.config.exp_range, self.config.seed
        )
        warmup = self.config.warmup_reads
        if warmup < 0:
            warmup = self.config.num_reads
        for _ in range(warmup):
            self.db.get(self.key_bytes(sampler.sample()))
        # Fresh measurement window after fill + cache warm-up.
        self.db.stats = DbStats()
        self.stack.cache.reset_stats()
        start_ns = self.clock.now
        for _ in range(self.config.num_reads):
            self.db.get(self.key_bytes(sampler.sample()))
        elapsed = (self.clock.now - start_ns) / 1e9
        waf = self.stack.cache.waf_window()
        return DbBenchResult(
            scheme=self.config.scheme,
            exp_range=self.config.exp_range,
            reads=self.config.num_reads,
            sim_seconds=elapsed,
            ops_per_sec=self.config.num_reads / elapsed if elapsed > 0 else 0.0,
            p50_ns=self.db.stats.get_latency.p50(),
            p99_ns=self.db.stats.get_latency.p99(),
            cache_hit_ratio=self.stack.cache.stats.hit_ratio,
            found_ratio=self.db.stats.found.ratio,
            waf_app=waf.app,
            waf_device=waf.device,
        )
