"""F2FS-like log-structured filesystem on a ZNS SSD (File-Cache substrate).

The paper's first scheme runs CacheLib on a ZNS-compatible filesystem
(F2FS) so that "all the low-level operations including zone allocation,
zone cleaning with GC, and indexing are applied and managed by the file
system" (§3.1).  This package implements the parts of F2FS that matter
for that analysis:

* **Zoned main area** — sections map 1:1 onto device zones; multi-head
  logs (hot data, cold data, node) append sequentially, so the zone
  write-pointer rule is always respected.
* **Conventional metadata area** — NAT/SIT checkpoints land on a
  separate :class:`~repro.flash.NullBlkDevice`, mirroring the paper's
  6 GiB nullblk device.
* **Block-granular mapping** — 4 KiB indexing, the "additional mapping
  overhead" the paper contrasts with the middle layer's region map.
* **Section cleaning** — greedy / cost-benefit victim selection with
  background pacing (small increments), which is why File-Cache shows
  the *lowest* tail latency in Figure 5(d) despite its overheads.
* **Provisioning** — a reserved fraction of sections (default 20%),
  the "additional space provisioning" the paper charges against F2FS.

The filesystem actually persists: ``checkpoint()`` serializes NAT/SIT to
the metadata device and ``F2fs.mount`` restores them, so tests can
verify remount-consistency.
"""

from repro.f2fs.layout import F2fsConfig, F2fsLayout
from repro.f2fs.sit import SegmentInfoTable
from repro.f2fs.nat import NodeAddressTable
from repro.f2fs.segment import LogManager, LogStream
from repro.f2fs.gc import Cleaner, CleanerConfig, VictimPolicy
from repro.f2fs.file import F2fsFile
from repro.f2fs.fs import F2fs, F2fsStats
from repro.f2fs.fsck import FsckReport, fsck

__all__ = [
    "F2fsConfig",
    "F2fsLayout",
    "SegmentInfoTable",
    "NodeAddressTable",
    "LogManager",
    "LogStream",
    "Cleaner",
    "CleanerConfig",
    "VictimPolicy",
    "F2fsFile",
    "F2fs",
    "F2fsStats",
    "FsckReport",
    "fsck",
]
