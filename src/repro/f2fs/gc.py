"""Section cleaning (filesystem-level garbage collection).

F2FS cleans at section granularity: pick a victim section, migrate its
valid blocks to the cold-data log, then the whole section — and on ZNS
the zone underneath it — can be reset.  Two victim policies are
implemented, as in F2FS:

* ``GREEDY`` — fewest valid blocks (foreground cleaning).
* ``COST_BENEFIT`` — weighs free space gained against section age
  (background cleaning; avoids repeatedly scrubbing hot sections).

Cleaning is *paced*: at most ``pace_blocks`` are migrated per foreground
trigger, so the stall any single operation observes stays small.  This
pacing is the mechanism behind the paper's observation that File-Cache
has the lowest P99 latency (Figure 5d, "F2FS is optimized for tail
latency").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import PowerCutError, RetryableError
from repro.f2fs.layout import F2fsLayout
from repro.f2fs.segment import LogManager
from repro.f2fs.sit import SegmentInfoTable
from repro.sim.io import NULL_TRACER, IoTracer


class VictimPolicy(enum.Enum):
    GREEDY = "greedy"
    COST_BENEFIT = "cost_benefit"


@dataclass(frozen=True)
class CleanerConfig:
    """Cleaning thresholds.

    Cleaning starts when free sections fall below ``low_watermark`` and
    keeps a victim "in progress" until it is fully migrated; at most
    ``pace_blocks`` blocks move per trigger.
    """

    low_watermark: int = 3
    pace_blocks: int = 16
    policy: VictimPolicy = VictimPolicy.COST_BENEFIT

    def __post_init__(self) -> None:
        if self.low_watermark < 1:
            raise ValueError("low_watermark must be >= 1")
        if self.pace_blocks < 1:
            raise ValueError("pace_blocks must be >= 1")


class Cleaner:
    """Incremental section cleaner.

    Data movement is delegated to ``migrate_block(block_addr)`` and
    section disposal to ``release_section(section)`` so the cleaner stays
    a policy object (the filesystem wires the callbacks).
    """

    def __init__(
        self,
        layout: F2fsLayout,
        sit: SegmentInfoTable,
        logs: LogManager,
        config: CleanerConfig,
        migrate_block: Callable[[int], None],
        release_section: Callable[[int], None],
    ) -> None:
        self.layout = layout
        self.sit = sit
        self.logs = logs
        self.config = config
        self._migrate_block = migrate_block
        self._release_section = release_section
        self._victim: Optional[int] = None
        self._pending: List[int] = []
        # Age proxy: bump per section every time it is opened by a log head.
        self._mtime = [0] * layout.num_sections
        self._tick = 0
        self.sections_cleaned = 0
        self.blocks_migrated = 0
        self.io_retries = 0
        # The filesystem points this at the data device's tracer so each
        # cleaning step appears as an "f2fs.gc" span in I/O traces.
        self.tracer: IoTracer = NULL_TRACER

    # --- hooks from the filesystem ----------------------------------------------------

    def note_section_written(self, section: int) -> None:
        """Track write recency for the cost-benefit policy."""
        self._tick += 1
        self._mtime[section] = self._tick

    def needs_cleaning(self) -> bool:
        return self.logs.free_section_count < self.config.low_watermark

    # --- cleaning --------------------------------------------------------------------

    def background_step(self) -> int:
        """Paced cleaning; returns blocks migrated this step."""
        if self._victim is None and not self.needs_cleaning():
            return 0
        return self._step(self.config.pace_blocks)

    def clean_one_section(self) -> bool:
        """Foreground (emergency) cleaning: finish an entire victim now.

        Returns True if a section was fully reclaimed.
        """
        before = self.sections_cleaned
        self._step(self.layout.blocks_per_section + 1)
        # Bounded: a persistently faulting device must not livelock the
        # foreground path (each retry-triggered early return costs one).
        for _ in range(self.layout.blocks_per_section + 8):
            if self._victim is None:
                break
            self._step(self.layout.blocks_per_section + 1)
        return self.sections_cleaned > before

    def _step(self, budget: int) -> int:
        if self._victim is None:
            self._victim = self._pick_victim()
            if self._victim is None:
                return 0
            self._pending = list(self.sit.valid_blocks(self._victim))
        moved = 0
        with self.tracer.span("f2fs.gc", "clean", zone=self._victim):
            while self._pending and moved < budget:
                block_addr = self._pending.pop()
                if not self.sit.is_valid(block_addr):
                    continue  # invalidated since the list was built
                try:
                    self._migrate_block(block_addr)
                except PowerCutError:
                    raise
                except RetryableError:
                    # Transient device error: put the block back and give
                    # up this step — it stays valid, nothing was mutated.
                    self._pending.append(block_addr)
                    self.io_retries += 1
                    return moved
                moved += 1
                self.blocks_migrated += 1
        if not self._pending:
            section = self._victim
            self._victim = None
            self.sit.wipe_section(section)
            self._release_section(section)
            self.logs.release_section(section)
            self.sections_cleaned += 1
        return moved

    def _pick_victim(self) -> Optional[int]:
        open_sections = set(self.logs.open_sections())
        candidates = [
            section
            for section in range(self.layout.num_sections)
            if section not in open_sections
            and not self.logs.is_free(section)
            and not self.logs.is_retired(section)
        ]
        if not candidates:
            return None
        if self.config.policy == VictimPolicy.GREEDY:
            return min(candidates, key=self.sit.valid_count)
        return min(candidates, key=self._cost_benefit_score)

    def _cost_benefit_score(self, section: int) -> float:
        """Lower is a better victim: cost / (benefit * age)."""
        valid = self.sit.valid_fraction(section)
        age = max(1, self._tick - self._mtime[section])
        if valid >= 1.0:
            return float("inf")
        # Classic cost-benefit: (1 - u) * age / (1 + u); invert for min().
        benefit = (1.0 - valid) * age / (1.0 + valid)
        return -benefit
