"""Section cleaning (filesystem-level garbage collection).

F2FS cleans at section granularity: pick a victim section, migrate its
valid blocks to the cold-data log, then the whole section — and on ZNS
the zone underneath it — can be reset.  The victim policies mirror
F2FS's:

* ``GREEDY`` — fewest valid blocks (foreground cleaning).
* ``COST_BENEFIT`` — weighs free space gained against section age
  (background cleaning; avoids repeatedly scrubbing hot sections).
* ``AGE_THRESHOLD`` / ``RANDOM`` — ablation policies from
  :mod:`repro.reclaim` (greedy gated on age; a seeded random baseline).

The selection/pacing loop is the shared
:class:`~repro.reclaim.ReclaimEngine`; this module provides the
section-shaped :class:`~repro.reclaim.ReclaimSource` and keeps the
public ``Cleaner`` surface the filesystem already wires.

Cleaning is *paced*: at most ``pace_blocks`` are migrated per foreground
trigger, so the stall any single operation observes stays small.  This
pacing is the mechanism behind the paper's observation that File-Cache
has the lowest P99 latency (Figure 5d, "F2FS is optimized for tail
latency").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import PowerCutError, RetryableError
from repro.f2fs.layout import F2fsLayout
from repro.f2fs.segment import LogManager
from repro.f2fs.sit import SegmentInfoTable
from repro.reclaim import (
    AdaptivePacingConfig,
    PacerConfig,
    ReclaimEngine,
    ReclaimPacer,
    ReclaimSource,
    UnitOutcome,
    VictimView,
    ensure_at_least,
    make_victim_policy,
)
from repro.sim.io import IoTracer


class VictimPolicy(enum.Enum):
    GREEDY = "greedy"
    COST_BENEFIT = "cost_benefit"
    AGE_THRESHOLD = "age_threshold"
    RANDOM = "random"


@dataclass(frozen=True)
class CleanerConfig:
    """Cleaning thresholds.

    Cleaning starts when free sections fall below ``low_watermark`` and
    keeps a victim "in progress" until it is fully migrated; at most
    ``pace_blocks`` blocks move per trigger.
    """

    low_watermark: int = 3
    pace_blocks: int = 16
    policy: VictimPolicy = VictimPolicy.COST_BENEFIT
    # Defer victims holding more than this fraction of valid blocks
    # (1.0 = accept anything, the historical behavior).  Below
    # ``emergency_sections`` free sections the engine cleans the
    # least-valid candidate regardless, so deferral cannot wedge the
    # log heads against ``NoSpaceError``.
    victim_valid_threshold: float = 1.0
    emergency_sections: int = 0
    # At or below this many free sections cleaning runs unbounded and the
    # pacer reports "urgent" (-1 = disabled, the historical behavior).
    urgent_sections: int = -1
    # Optional AIMD controller on pace_blocks (None = static pacing);
    # see repro.reclaim.AdaptivePacingConfig.
    adaptive: Optional["AdaptivePacingConfig"] = None

    def __post_init__(self) -> None:
        ensure_at_least("low_watermark", self.low_watermark, 1)
        ensure_at_least("pace_blocks", self.pace_blocks, 1)
        ensure_at_least("emergency_sections", self.emergency_sections, 0)
        ensure_at_least("urgent_sections", self.urgent_sections, -1)

    def pacer_config(self) -> PacerConfig:
        return PacerConfig(
            background=self.low_watermark,
            target=self.low_watermark,
            urgent=self.urgent_sections,
            emergency=self.emergency_sections,
            victim_valid_threshold=self.victim_valid_threshold,
            pace_units=self.pace_blocks,
            adaptive=self.adaptive,
        )


class _SectionReclaimSource(ReclaimSource):
    """Section-shaped adapter over the SIT + log manager."""

    name = "f2fs"

    def __init__(self, owner: "Cleaner") -> None:
        self.owner = owner
        self.unit_bytes = owner.layout.block_size

    def free_units(self) -> int:
        return self.owner.logs.free_section_count

    def candidate_views(self) -> List[VictimView]:
        owner = self.owner
        sit = owner.sit
        open_sections = set(owner.logs.open_sections())
        views = []
        for section in range(owner.layout.num_sections):
            if (
                section in open_sections
                or owner.logs.is_free(section)
                or owner.logs.is_retired(section)
            ):
                continue
            views.append(
                VictimView(
                    victim_id=section,
                    valid_count=sit.valid_count(section),
                    valid_fraction=sit.valid_fraction(section),
                    age=owner._tick - owner._mtime[section],
                )
            )
        return views

    def pending_units(self, section: int) -> List[int]:
        return list(self.owner.sit.valid_blocks(section))

    def migrate_unit(self, section: int, block_addr: int) -> UnitOutcome:
        owner = self.owner
        if not owner.sit.is_valid(block_addr):
            return UnitOutcome.SKIPPED  # invalidated since the list was built
        hints = self.hints
        if hints is not None and owner._region_of_block is not None:
            region_id = owner._region_of_block(block_addr)
            if region_id is not None and not hints.migration_worth(region_id):
                # §3.4 drop path: the cache condemned the region this
                # block backs, so unmap it instead of copying it to the
                # cold log.  No device I/O happens — just SIT/NAT
                # bookkeeping the filesystem wires via ``bind_hints``.
                owner._drop_block(block_addr)
                hints.on_drop(region_id)
                return UnitOutcome.DROPPED
        try:
            owner._migrate_block(block_addr)
        except PowerCutError:
            raise
        except RetryableError:
            # Transient device error: the block stays valid, nothing was
            # mutated — the engine re-queues it and ends the step.
            return UnitOutcome.RETRY
        return UnitOutcome.MIGRATED

    def release_victim(self, section: int) -> None:
        owner = self.owner
        owner.sit.wipe_section(section)
        owner._release_section(section)
        owner.logs.release_section(section)

    def step_span(self, tracer: IoTracer, section: int):
        # Preserve the historical "f2fs.gc" span each cleaning step emits
        # (nested inside the engine's uniform reclaim.f2fs span).
        return tracer.span("f2fs.gc", "clean", zone=section)


class Cleaner:
    """Incremental section cleaner.

    Data movement is delegated to ``migrate_block(block_addr)`` and
    section disposal to ``release_section(section)`` so the cleaner stays
    a policy object (the filesystem wires the callbacks).
    """

    def __init__(
        self,
        layout: F2fsLayout,
        sit: SegmentInfoTable,
        logs: LogManager,
        config: CleanerConfig,
        migrate_block: Callable[[int], None],
        release_section: Callable[[int], None],
    ) -> None:
        self.layout = layout
        self.sit = sit
        self.logs = logs
        self.config = config
        self._migrate_block = migrate_block
        self._release_section = release_section
        # §3.4 hint wiring (bind_hints): block → cache region ownership
        # and the no-copy drop callback.  None = hints disabled.
        self._region_of_block: Optional[Callable[[int], Optional[int]]] = None
        self._drop_block: Optional[Callable[[int], None]] = None
        # Age proxy: bump per section every time it is opened by a log head.
        self._mtime = [0] * layout.num_sections
        self._tick = 0
        self.engine = ReclaimEngine(
            _SectionReclaimSource(self),
            make_victim_policy(config.policy.value),
            ReclaimPacer(config.pacer_config()),
        )

    # --- counters / wiring (legacy names, engine-backed) ----------------------------

    @property
    def sections_cleaned(self) -> int:
        return self.engine.stats.victims_reclaimed

    @property
    def blocks_migrated(self) -> int:
        return self.engine.stats.units_migrated

    @property
    def io_retries(self) -> int:
        return self.engine.stats.retries

    @property
    def tracer(self) -> IoTracer:
        """The data device's tracer; each cleaning step appears as an
        "f2fs.gc" span (inside the uniform reclaim.f2fs span)."""
        return self.engine.tracer

    @tracer.setter
    def tracer(self, tracer: IoTracer) -> None:
        self.engine.tracer = tracer

    def bind_clock(self, clock) -> None:
        """Attach the simulation clock for foreground-stall accounting."""
        self.engine.clock = clock

    def bind_hints(
        self,
        hints,
        region_of_block: Callable[[int], Optional[int]],
        drop_block: Callable[[int], None],
    ) -> None:
        """Wire the cache's §3.4 :class:`~repro.reclaim.GcHints`.

        ``region_of_block(block_addr)`` maps a main-area block to the
        cache region it backs (None for node blocks, other files, or
        out-of-range offsets — those always migrate).  ``drop_block``
        unmaps one condemned block without copying it.
        """
        self.engine.source.hints = hints
        self._region_of_block = region_of_block
        self._drop_block = drop_block

    # --- hooks from the filesystem ----------------------------------------------------

    def note_section_written(self, section: int) -> None:
        """Track write recency for the cost-benefit policy."""
        self._tick += 1
        self._mtime[section] = self._tick

    def needs_cleaning(self) -> bool:
        return self.engine.needs_reclaim()

    # --- cleaning --------------------------------------------------------------------

    def background_step(self) -> int:
        """Paced cleaning; returns blocks migrated this step."""
        return self.engine.background_step()

    def clean_one_section(self) -> bool:
        """Foreground (emergency) cleaning: finish an entire victim now.

        Returns True if a section was fully reclaimed.  Bounded: a
        persistently faulting device must not livelock the foreground
        path (each retry-triggered early return costs one step).
        """
        return (
            self.engine.collect(
                max_victims=1, max_steps=self.layout.blocks_per_section + 8
            )
            > 0
        )

    def _pick_victim(self) -> Optional[int]:
        return self.engine.pick_victim()
