"""Segment Info Table: per-section validity tracking.

Real F2FS keeps a SIT entry per segment with a validity bitmap; the
cleaner aggregates them per section.  Here the table tracks validity at
section granularity directly (sections are the cleaning unit) plus the
owner of every valid block so the cleaner can update file mappings when
it migrates data.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.ztl.bitmap import SlotBitmap

# (file_id, file_block_index) — who owns a valid main-area block.
BlockOwner = Tuple[int, int]


class SegmentInfoTable:
    """Validity bitmaps and block ownership for every section."""

    def __init__(self, num_sections: int, blocks_per_section: int) -> None:
        if num_sections < 1 or blocks_per_section < 1:
            raise ValueError("need at least one section and one block per section")
        self.num_sections = num_sections
        self.blocks_per_section = blocks_per_section
        self._bitmaps: List[SlotBitmap] = [
            SlotBitmap(blocks_per_section) for _ in range(num_sections)
        ]
        self._owners: Dict[int, BlockOwner] = {}
        self.total_valid_blocks = 0

    def mark_valid(self, block_addr: int, owner: BlockOwner) -> None:
        section, offset = self._split(block_addr)
        bitmap = self._bitmaps[section]
        if not bitmap.is_set(offset):
            bitmap.set(offset)
            self.total_valid_blocks += 1
        self._owners[block_addr] = owner

    def mark_invalid(self, block_addr: int) -> None:
        section, offset = self._split(block_addr)
        bitmap = self._bitmaps[section]
        if bitmap.is_set(offset):
            bitmap.clear(offset)
            self.total_valid_blocks -= 1
        self._owners.pop(block_addr, None)

    def is_valid(self, block_addr: int) -> bool:
        section, offset = self._split(block_addr)
        return self._bitmaps[section].is_set(offset)

    def owner_of(self, block_addr: int) -> Optional[BlockOwner]:
        return self._owners.get(block_addr)

    def valid_count(self, section: int) -> int:
        return self._bitmaps[section].valid_count

    def valid_fraction(self, section: int) -> float:
        return self._bitmaps[section].valid_fraction

    def valid_blocks(self, section: int) -> Iterator[int]:
        """Block addresses of valid blocks in a section (ascending)."""
        base = section * self.blocks_per_section
        for offset in self._bitmaps[section].valid_slots():
            yield base + offset

    def wipe_section(self, section: int) -> None:
        """Clear a section after cleaning (all blocks already migrated)."""
        base = section * self.blocks_per_section
        bitmap = self._bitmaps[section]
        self.total_valid_blocks -= bitmap.valid_count
        for offset in list(bitmap.valid_slots()):
            self._owners.pop(base + offset, None)
        bitmap.clear_all()

    # --- persistence ------------------------------------------------------------

    def to_state(self) -> dict:
        """Serializable snapshot for checkpoints."""
        return {
            "valid": {
                str(addr): list(owner) for addr, owner in self._owners.items()
            },
        }

    @classmethod
    def from_state(
        cls, state: dict, num_sections: int, blocks_per_section: int
    ) -> "SegmentInfoTable":
        table = cls(num_sections, blocks_per_section)
        for addr_str, owner in state["valid"].items():
            table.mark_valid(int(addr_str), (owner[0], owner[1]))
        return table

    def _split(self, block_addr: int) -> Tuple[int, int]:
        section = block_addr // self.blocks_per_section
        if not 0 <= section < self.num_sections:
            raise IndexError(f"block {block_addr} outside the main area")
        return section, block_addr % self.blocks_per_section
