"""The F2FS-like filesystem facade.

Wires the layout, NAT, SIT, log manager and cleaner onto two devices:

* a :class:`~repro.flash.ZnsSsd` carrying the main (data) area, one
  section per zone, and
* a conventional :class:`~repro.flash.device.BlockDevice` (nullblk in
  the paper) carrying the metadata area: NAT/SIT journal writes and
  checkpoints.

The write path is out-of-place: old block mappings are invalidated in
the SIT, new blocks are allocated from the hot-data log, and every
mapping update is journaled to the metadata device in batches.  The
paper's File-Cache criticisms fall out of this design naturally: block-
granular mapping overhead, filesystem WA from cleaning, and reserved
provisioning space.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import (
    AlignmentError,
    NoSpaceError,
    PowerCutError,
    RetryableError,
    ZoneDeadError,
)
from repro.f2fs.file import F2fsFile
from repro.f2fs.gc import Cleaner, CleanerConfig
from repro.f2fs.layout import F2fsConfig, F2fsLayout
from repro.f2fs.nat import NodeAddressTable
from repro.f2fs.segment import LogManager, LogStream
from repro.f2fs.sit import SegmentInfoTable
from repro.flash.device import BlockDevice
from repro.flash.znsssd import ZnsSsd
from repro.sim.clock import SimClock
from repro.sim.io import IoTracer


@dataclass
class F2fsStats:
    """Filesystem counters; ``write_amplification`` is the FS-level WAF."""

    host_write_bytes: int = 0
    host_read_bytes: int = 0
    data_write_bytes: int = 0  # all main-area writes incl. cleaning
    meta_write_bytes: int = 0
    checkpoints: int = 0
    # Fault handling: sections lost to dead zones, transient I/O retries.
    dead_sections: int = 0
    io_retries: int = 0

    @property
    def write_amplification(self) -> float:
        if self.host_write_bytes == 0:
            return 1.0
        return (self.data_write_bytes + self.meta_write_bytes) / self.host_write_bytes


class F2fs:
    """Log-structured filesystem over (zoned data device, metadata device)."""

    SUPERBLOCK_MAGIC = b"REPRO-F2FS-v1\x00\x00\x00"

    def __init__(
        self,
        clock: SimClock,
        data_device: ZnsSsd,
        meta_device: BlockDevice,
        config: F2fsConfig = F2fsConfig(),
        cleaner_config: CleanerConfig = CleanerConfig(),
    ) -> None:
        self._clock = clock
        self.data_device = data_device
        self.meta_device = meta_device
        self.config = config
        self.layout = F2fsLayout.for_device(
            data_device.zone_size, data_device.num_zones, config
        )
        self.nat = NodeAddressTable()
        self.sit = SegmentInfoTable(
            self.layout.num_sections, self.layout.blocks_per_section
        )
        self.logs = LogManager(self.layout)
        self.cleaner = Cleaner(
            self.layout,
            self.sit,
            self.logs,
            cleaner_config,
            migrate_block=self._migrate_block,
            release_section=self._reset_section_zone,
        )
        self.cleaner.tracer = self.tracer
        self.cleaner.bind_clock(clock)
        self.stats = F2fsStats()
        self._meta_pending_updates = 0
        self._meta_cursor_block = 1  # block 0 is the superblock
        self._blocks_since_checkpoint = 0
        self._mkfs_done = False
        # (file_id, node_group) -> current node-block address in the main
        # area; node blocks are invalidated and rewritten when any data
        # block they index is remapped.
        self._node_addr: dict = {}

    @property
    def tracer(self) -> IoTracer:
        """The I/O tracer shared with the main-area (data) device."""
        return self.data_device.tracer

    # --- lifecycle ------------------------------------------------------------------

    def mkfs(self) -> None:
        """Format: reset all zones, write the superblock, empty tables."""
        for zone_index in range(self.layout.num_sections):
            self.data_device.reset_zone(zone_index)
        block = self.SUPERBLOCK_MAGIC.ljust(self.meta_device.block_size, b"\x00")
        self.meta_device.write(0, block)
        self.stats.meta_write_bytes += len(block)
        self._mkfs_done = True

    @classmethod
    def mount(
        cls,
        clock: SimClock,
        data_device: ZnsSsd,
        meta_device: BlockDevice,
        config: F2fsConfig = F2fsConfig(),
        cleaner_config: CleanerConfig = CleanerConfig(),
    ) -> "F2fs":
        """Re-attach a filesystem from its last checkpoint."""
        superblock = meta_device.read(0, meta_device.block_size).data
        if not superblock or not superblock.startswith(cls.SUPERBLOCK_MAGIC):
            raise NoSpaceError("no filesystem found on the metadata device")
        fs = cls(clock, data_device, meta_device, config, cleaner_config)
        fs._mkfs_done = True
        fs._restore_checkpoint()
        return fs

    # --- namespace ---------------------------------------------------------------------

    def create(self, name: str) -> F2fsFile:
        self._require_formatted()
        file_id = self.nat.create_file(name)
        return F2fsFile(self, name, file_id)

    def open(self, name: str) -> F2fsFile:
        self._require_formatted()
        return F2fsFile(self, name, self.nat.lookup_file(name))

    def exists(self, name: str) -> bool:
        return self.nat.has_file(name)

    def delete(self, name: str) -> None:
        """Unlink a file, invalidating all of its data and node blocks."""
        self._require_formatted()
        file_id = self.nat.lookup_file(name)
        block_map = self.nat.remove_file(name)
        for block_addr in block_map.values():
            self.sit.mark_invalid(block_addr)
        for key in [k for k in self._node_addr if k[0] == file_id]:
            self.sit.mark_invalid(self._node_addr.pop(key))
        self._note_meta_updates(len(block_map) + 1)

    # --- free space ----------------------------------------------------------------------

    @property
    def usable_bytes(self) -> int:
        return self.layout.usable_bytes

    @property
    def live_bytes(self) -> int:
        """Live *data* bytes (node blocks are accounted to the reserve)."""
        data_blocks = self.sit.total_valid_blocks - len(self._node_addr)
        return data_blocks * self.layout.block_size

    @property
    def free_bytes(self) -> int:
        return self.usable_bytes - self.live_bytes

    # --- data path -----------------------------------------------------------------------

    def pwrite(self, file_id: int, offset: int, data: bytes) -> int:
        """Out-of-place block write; returns total latency in ns."""
        self._require_formatted()
        block_size = self.layout.block_size
        if offset % block_size or len(data) % block_size:
            raise AlignmentError(
                f"pwrite (offset={offset}, len={len(data)}) must be "
                f"{block_size}B-aligned"
            )
        if not data:
            return 0
        num_blocks = len(data) // block_size
        first_block = offset // block_size
        new_blocks = sum(
            1
            for i in range(num_blocks)
            if self.nat.get_block(file_id, first_block + i) is None
        )
        if self.live_bytes + new_blocks * block_size > self.usable_bytes:
            raise NoSpaceError(
                f"write needs {new_blocks} new blocks but only "
                f"{self.free_bytes // block_size} remain"
            )
        start_ns = self._clock.now
        with self.tracer.span("f2fs", "pwrite", offset=offset, length=len(data)):
            # Indexing CPU cost (block-granular mapping, the File-Cache tax).
            self._clock.advance(self.config.cpu_ns_per_block * num_blocks)
            addresses = self._allocate_with_cleaning(LogStream.HOT_DATA, num_blocks)
            if self.data_device.pipeline.faults is not None:
                addresses = self._write_blocks_resilient(
                    LogStream.HOT_DATA, addresses, data
                )
            else:
                self._write_blocks(addresses, data)
            for i, block_addr in enumerate(addresses):
                file_block = first_block + i
                old = self.nat.set_block(file_id, file_block, block_addr)
                if old is not None:
                    self.sit.mark_invalid(old)
                self.sit.mark_valid(block_addr, (file_id, file_block))
                self.cleaner.note_section_written(
                    self.layout.section_of_block(block_addr)
                )
            self.nat.update_size(file_id, offset + len(data))
            touched_groups = {
                (first_block + i) // self.config.blocks_per_node
                for i in range(num_blocks)
            }
            for group in touched_groups:
                self._write_node_block(file_id, group)
            self.stats.host_write_bytes += len(data)
            self._note_meta_updates(num_blocks)
            self._blocks_since_checkpoint += num_blocks
            if self._blocks_since_checkpoint >= self.config.checkpoint_interval_blocks:
                self.checkpoint()
            try:
                self.cleaner.background_step()
            except PowerCutError:
                raise
            except RetryableError:
                # Background cleaning hit a transient device error; the
                # cleaner re-queued the block and will retry next step.
                self.stats.io_retries += 1
        return self._clock.now - start_ns

    def pread(self, file_id: int, offset: int, length: int) -> bytes:
        """Block-aligned read; unmapped blocks (holes) read as zeros."""
        self._require_formatted()
        block_size = self.layout.block_size
        if offset % block_size or length % block_size:
            raise AlignmentError(
                f"pread (offset={offset}, len={length}) must be "
                f"{block_size}B-aligned"
            )
        if length <= 0:
            return b""
        with self.tracer.span("f2fs", "pread", offset=offset, length=length):
            self._clock.advance(self.config.cpu_ns_per_block * (length // block_size))
            # Node/NAT lookup touches the metadata device (block-granular
            # indexing is not free — §3.1's "additional mapping overhead").
            self.meta_device.read(0, self.meta_device.block_size)
            chunks: List[bytes] = []
            for run_addr, run_len, is_hole in self._runs(file_id, offset, length):
                if is_hole:
                    chunks.append(b"\x00" * run_len)
                else:
                    device_offset = self.layout.device_offset(run_addr)
                    chunks.append(self.data_device.read(device_offset, run_len).data)
        self.stats.host_read_bytes += length
        return b"".join(chunks)

    # --- internals --------------------------------------------------------------------------

    def _runs(self, file_id: int, offset: int, length: int):
        """Yield (block_addr, run_bytes, is_hole) coalescing contiguous blocks."""
        block_size = self.layout.block_size
        first = offset // block_size
        count = length // block_size
        run_start: Optional[int] = None
        run_len = 0
        prev_addr: Optional[int] = None
        hole_len = 0
        for i in range(count):
            addr = self.nat.get_block(file_id, first + i)
            if addr is None:
                if run_start is not None:
                    yield run_start, run_len * block_size, False
                    run_start, run_len, prev_addr = None, 0, None
                hole_len += 1
                continue
            if hole_len:
                yield 0, hole_len * block_size, True
                hole_len = 0
            if run_start is not None and addr == prev_addr + 1:
                run_len += 1
            else:
                if run_start is not None:
                    yield run_start, run_len * block_size, False
                run_start, run_len = addr, 1
            prev_addr = addr
        if hole_len:
            yield 0, hole_len * block_size, True
        if run_start is not None:
            yield run_start, run_len * block_size, False

    def _allocate_with_cleaning(self, stream: LogStream, count: int) -> List[int]:
        try:
            return self.logs.allocate_blocks(stream, count)
        except NoSpaceError:
            if not self.cleaner.clean_one_section():
                raise
            return self.logs.allocate_blocks(stream, count)

    def _write_blocks(self, addresses: List[int], data: bytes) -> None:
        """Write payload to allocated blocks, coalescing contiguous runs.

        The coalesced runs are submitted as one batch: on a serial device
        pool this is identical to writing them one by one, but a pool
        with multiple channels or queue depth overlaps the runs — the
        flush of one ``pwrite`` becomes a single pipelined submission.
        """
        block_size = self.layout.block_size
        items: List[Tuple[int, bytes]] = []
        i = 0
        while i < len(addresses):
            j = i
            # Contiguous addresses may continue into the physically
            # adjacent section when a log head rolls over; a zone can only
            # be written through its own write pointer, so a run must
            # break at every section (= zone) boundary.
            while (
                j + 1 < len(addresses)
                and addresses[j + 1] == addresses[j] + 1
                and self.layout.block_offset_in_section(addresses[j + 1]) != 0
            ):
                j += 1
            run = addresses[i : j + 1]
            device_offset = self.layout.device_offset(run[0])
            payload = data[i * block_size : (j + 1) * block_size]
            items.append((device_offset, payload))
            self.stats.data_write_bytes += len(payload)
            i = j + 1
        self.data_device.write_many(items)

    def _write_blocks_resilient(
        self, stream: LogStream, addresses: List[int], data: bytes
    ) -> List[int]:
        """Fault-tolerant variant of :meth:`_write_blocks`.

        Writes run by run so a fault only costs its own run: a transient
        error retries the same addresses (the device gates faults before
        mutating state), a dead zone retires its section and re-allocates
        the run elsewhere.  Returns the final (possibly remapped) block
        addresses in file order.
        """
        block_size = self.layout.block_size
        final = list(addresses)
        i = 0
        attempts = 0
        while i < len(final):
            j = i
            # Same section-boundary split as _write_blocks: a run that
            # rolled into the adjacent section is two zone writes.
            while (
                j + 1 < len(final)
                and final[j + 1] == final[j] + 1
                and self.layout.block_offset_in_section(final[j + 1]) != 0
            ):
                j += 1
            payload = data[i * block_size : (j + 1) * block_size]
            try:
                self.data_device.write(self.layout.device_offset(final[i]), payload)
            except PowerCutError:
                raise
            except ZoneDeadError as error:
                attempts += 1
                if attempts > 8:
                    raise
                zone = error.zone_index
                if zone is None:
                    zone = self.layout.section_of_block(final[i])
                self.retire_section(zone)
                final[i : j + 1] = self._allocate_with_cleaning(stream, j - i + 1)
                continue
            except RetryableError:
                attempts += 1
                if attempts > 8:
                    raise
                self.stats.io_retries += 1
                continue
            self.stats.data_write_bytes += len(payload)
            i = j + 1
        return final

    def _write_node_block(self, file_id: int, group: int) -> None:
        """Write (or rewrite) the node block indexing one group of data
        blocks.  Node blocks live in the NODE log on the main area, so
        they contribute to filesystem WA and participate in cleaning."""
        key = (file_id, group)
        old = self._node_addr.get(key)
        if old is not None:
            self.sit.mark_invalid(old)
        addr = self._allocate_with_cleaning(LogStream.NODE, 1)[0]
        payload = b"\x4e" * self.layout.block_size
        last_error: Optional[BaseException] = None
        for _ in range(8):
            try:
                self.data_device.write(self.layout.device_offset(addr), payload)
                break
            except PowerCutError:
                raise
            except ZoneDeadError as error:
                last_error = error
                zone = error.zone_index
                if zone is None:
                    zone = self.layout.section_of_block(addr)
                self.retire_section(zone)
                addr = self._allocate_with_cleaning(LogStream.NODE, 1)[0]
            except RetryableError as error:
                last_error = error
                self.stats.io_retries += 1
        else:
            assert last_error is not None
            raise last_error
        self.stats.data_write_bytes += self.layout.block_size
        # Node ownership is encoded with a negative file id so the cleaner
        # can tell node blocks from data blocks.
        self.sit.mark_valid(addr, (-file_id, group))
        self._node_addr[key] = addr
        self.cleaner.note_section_written(self.layout.section_of_block(addr))

    def _migrate_block(self, block_addr: int) -> None:
        """Cleaner callback: relocate one valid block to the cold log."""
        owner = self.sit.owner_of(block_addr)
        if owner is None:
            return
        file_id, file_block = owner
        if file_id < 0:
            self._migrate_node_block(block_addr, -file_id, file_block)
            return
        device_offset = self.layout.device_offset(block_addr)
        try:
            payload = self.data_device.read(device_offset, self.layout.block_size).data
        except ZoneDeadError:
            # The victim's media died under the cleaner: the block's
            # bytes are gone.  Drop it so cleaning can finish the section.
            self.sit.mark_invalid(block_addr)
            return
        new_addr = self._write_migration_block(LogStream.COLD_DATA, payload)
        self.stats.data_write_bytes += self.layout.block_size
        self.sit.mark_invalid(block_addr)
        self.nat.set_block(file_id, file_block, new_addr)
        self.sit.mark_valid(new_addr, owner)
        self._note_meta_updates(1)

    def _drop_block(self, block_addr: int) -> None:
        """Cleaner callback for §3.4 hint drops: unmap one condemned
        data block without copying it — SIT invalidate plus NAT unmap,
        one metadata update, zero data-device I/O."""
        owner = self.sit.owner_of(block_addr)
        self.sit.mark_invalid(block_addr)
        if owner is not None:
            file_id, file_block = owner
            if file_id > 0:
                self.nat.clear_block(file_id, file_block)
        self._note_meta_updates(1)

    def _write_migration_block(self, stream: LogStream, payload: bytes) -> int:
        """Land one cleaning-migration block, retiring dead target zones.

        Transient errors propagate to the cleaner, which re-queues the
        source block (nothing was mutated — faults gate before state).
        """
        new_addr = self.logs.allocate_blocks(stream, 1)[0]
        last_error: Optional[BaseException] = None
        for _ in range(4):
            try:
                self.data_device.write(self.layout.device_offset(new_addr), payload)
                return new_addr
            except PowerCutError:
                raise
            except ZoneDeadError as error:
                last_error = error
                zone = error.zone_index
                if zone is None:
                    zone = self.layout.section_of_block(new_addr)
                self.retire_section(zone)
                new_addr = self.logs.allocate_blocks(stream, 1)[0]
        assert last_error is not None
        raise last_error

    def _migrate_node_block(self, block_addr: int, file_id: int, group: int) -> None:
        """Relocate a node block during cleaning (SIT + node map update)."""
        try:
            payload = self.data_device.read(
                self.layout.device_offset(block_addr), self.layout.block_size
            ).data
        except ZoneDeadError:
            # Node block lost with its zone; drop it (it will be
            # rewritten the next time its data group is updated).
            self.sit.mark_invalid(block_addr)
            self._node_addr.pop((file_id, group), None)
            return
        new_addr = self._write_migration_block(LogStream.NODE, payload)
        self.stats.data_write_bytes += self.layout.block_size
        self.sit.mark_invalid(block_addr)
        self.sit.mark_valid(new_addr, (-file_id, group))
        self._node_addr[(file_id, group)] = new_addr
        self._note_meta_updates(1)

    def retire_section(self, section: int) -> None:
        """Take a dead zone's section permanently out of service."""
        if self.logs.is_retired(section):
            return
        self.logs.retire_section(section)
        self.stats.dead_sections += 1
        self.tracer.emit_event("f2fs.fault", "retire_section", zone=section)

    def _reset_section_zone(self, section: int) -> None:
        """Cleaner callback: a fully-migrated section maps to a zone reset."""
        for _ in range(5):
            try:
                self.data_device.reset_zone(section)
                return
            except PowerCutError:
                raise
            except ZoneDeadError:
                # The victim died before its reset: keep it out of the
                # free pool instead of handing out an unresettable zone.
                self.retire_section(section)
                return
            except RetryableError:
                self.stats.io_retries += 1
        # The reset never landed; reusing an unreset zone would wedge the
        # write pointer, so retire the section defensively.
        self.retire_section(section)

    def _note_meta_updates(self, count: int) -> None:
        """Batch NAT/SIT journal updates into metadata-device block writes."""
        self._meta_pending_updates += count
        block_size = self.meta_device.block_size
        while self._meta_pending_updates >= self.config.meta_batch_blocks:
            self._meta_pending_updates -= self.config.meta_batch_blocks
            self._write_meta_block(b"\xA5" * block_size)

    def _write_meta_block(self, payload: bytes) -> None:
        block_size = self.meta_device.block_size
        capacity_blocks = self.meta_device.capacity_bytes // block_size
        # Journal area wraps within the metadata device after the superblock
        # and checkpoint region (first 25% of the device).
        journal_start = max(1, capacity_blocks // 4)
        journal_blocks = capacity_blocks - journal_start
        slot = journal_start + (self._meta_cursor_block % journal_blocks)
        self._meta_cursor_block += 1
        self.meta_device.write(slot * block_size, payload)
        self.stats.meta_write_bytes += block_size

    # --- checkpointing ------------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Serialize NAT/SIT/log state to the metadata checkpoint region."""
        self._require_formatted()
        state = {
            "nat": self.nat.to_state(),
            "sit": self.sit.to_state(),
            "logs": self.logs.to_state(),
            "nodes": {f"{fid}:{grp}": addr for (fid, grp), addr in self._node_addr.items()},
        }
        blob = pickle.dumps(state)
        block_size = self.meta_device.block_size
        header = len(blob).to_bytes(8, "little")
        payload = header + blob
        padded_len = -(-len(payload) // block_size) * block_size
        payload = payload.ljust(padded_len, b"\x00")
        checkpoint_offset = block_size  # right after the superblock
        if checkpoint_offset + len(payload) > self.meta_device.capacity_bytes:
            raise NoSpaceError("checkpoint does not fit in the metadata device")
        self.meta_device.write(checkpoint_offset, payload)
        self.stats.meta_write_bytes += len(payload)
        self.stats.checkpoints += 1
        self._blocks_since_checkpoint = 0

    def _restore_checkpoint(self) -> None:
        block_size = self.meta_device.block_size
        header = self.meta_device.read(block_size, block_size).data
        blob_len = int.from_bytes(header[:8], "little")
        if blob_len == 0:
            return  # freshly formatted, nothing checkpointed yet
        total = 8 + blob_len
        padded = -(-total // block_size) * block_size
        raw = self.meta_device.read(block_size, padded).data
        state = pickle.loads(raw[8 : 8 + blob_len])
        self.nat = NodeAddressTable.from_state(state["nat"])
        self.sit = SegmentInfoTable.from_state(
            state["sit"], self.layout.num_sections, self.layout.blocks_per_section
        )
        self.logs = LogManager.from_state(state["logs"], self.layout)
        self._node_addr = {
            (int(key.split(":")[0]), int(key.split(":")[1])): addr
            for key, addr in state.get("nodes", {}).items()
        }
        self.cleaner.sit = self.sit
        self.cleaner.logs = self.logs

    def _require_formatted(self) -> None:
        if not self._mkfs_done:
            raise NoSpaceError("filesystem not formatted; call mkfs() first")

    def __repr__(self) -> str:
        return (
            f"F2fs(sections={self.layout.num_sections}, "
            f"usable={self.usable_bytes}, live={self.live_bytes}, "
            f"waf={self.stats.write_amplification:.2f})"
        )
