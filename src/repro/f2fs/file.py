"""File handle for the F2FS-like filesystem.

Provides the pread/pwrite interface CacheLib's file-backed engine uses
on a single large pre-allocated file (§3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.f2fs.fs import F2fs


class F2fsFile:
    """Handle to one file; all I/O is delegated to the owning filesystem."""

    def __init__(self, fs: "F2fs", name: str, file_id: int) -> None:
        self._fs = fs
        self.name = name
        self.file_id = file_id

    @property
    def size(self) -> int:
        """Current file size in bytes (high-water mark of writes)."""
        return self._fs.nat.size_of(self.file_id)

    def pwrite(self, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset`` (block-aligned); returns latency (ns)."""
        return self._fs.pwrite(self.file_id, offset, data)

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``; holes read as zeros."""
        return self._fs.pread(self.file_id, offset, length)

    def __repr__(self) -> str:
        return f"F2fsFile({self.name!r}, size={self.size})"
