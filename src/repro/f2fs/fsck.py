"""Filesystem consistency checker (fsck) for the F2FS-like filesystem.

Cross-checks the NAT (file block maps), SIT (block validity + owners),
node map, and log heads.  Used by tests as a whole-filesystem invariant
and available to users debugging a substrate issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.f2fs.fs import F2fs


@dataclass
class FsckReport:
    """Outcome of a consistency check."""

    errors: List[str] = field(default_factory=list)
    checked_blocks: int = 0
    checked_files: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors

    def add(self, message: str) -> None:
        self.errors.append(message)

    def __repr__(self) -> str:
        status = "clean" if self.clean else f"{len(self.errors)} errors"
        return f"FsckReport({status}, blocks={self.checked_blocks})"


def fsck(fs: F2fs) -> FsckReport:
    """Run all consistency checks; returns a report (never raises)."""
    report = FsckReport()
    _check_nat_vs_sit(fs, report)
    _check_node_map(fs, report)
    _check_no_shared_blocks(fs, report)
    _check_sit_owners_resolve(fs, report)
    _check_log_heads(fs, report)
    return report


def _check_nat_vs_sit(fs: F2fs, report: FsckReport) -> None:
    """Every NAT-mapped data block must be SIT-valid with the right owner."""
    for name in list(fs.nat.file_names()):
        file_id = fs.nat.lookup_file(name)
        report.checked_files += 1
        for file_block in range(fs.nat.size_of(file_id) // fs.layout.block_size + 1):
            addr = fs.nat.get_block(file_id, file_block)
            if addr is None:
                continue
            report.checked_blocks += 1
            if not fs.sit.is_valid(addr):
                report.add(
                    f"file {name!r} block {file_block} maps to {addr}, "
                    "which SIT marks invalid"
                )
                continue
            owner = fs.sit.owner_of(addr)
            if owner != (file_id, file_block):
                report.add(
                    f"block {addr} owner mismatch: SIT says {owner}, "
                    f"NAT says ({file_id}, {file_block})"
                )


def _check_node_map(fs: F2fs, report: FsckReport) -> None:
    """Every node block must be SIT-valid with a node owner."""
    for (file_id, group), addr in fs._node_addr.items():
        report.checked_blocks += 1
        if not fs.sit.is_valid(addr):
            report.add(f"node block {addr} (file {file_id}, group {group}) invalid in SIT")
            continue
        owner = fs.sit.owner_of(addr)
        if owner != (-file_id, group):
            report.add(
                f"node block {addr} owner mismatch: {owner} != ({-file_id}, {group})"
            )


def _check_no_shared_blocks(fs: F2fs, report: FsckReport) -> None:
    """No two file blocks may share a main-area address."""
    seen = {}
    for name in list(fs.nat.file_names()):
        file_id = fs.nat.lookup_file(name)
        for file_block in range(fs.nat.size_of(file_id) // fs.layout.block_size + 1):
            addr = fs.nat.get_block(file_id, file_block)
            if addr is None:
                continue
            if addr in seen:
                report.add(
                    f"block {addr} shared by {seen[addr]} and "
                    f"({file_id}, {file_block})"
                )
            seen[addr] = (file_id, file_block)


def _check_sit_owners_resolve(fs: F2fs, report: FsckReport) -> None:
    """Every SIT-valid block's owner must resolve back through NAT/nodes."""
    for section in range(fs.layout.num_sections):
        for addr in fs.sit.valid_blocks(section):
            owner = fs.sit.owner_of(addr)
            if owner is None:
                report.add(f"valid block {addr} has no owner")
                continue
            file_id, index = owner
            if file_id < 0:
                if fs._node_addr.get((-file_id, index)) != addr:
                    report.add(
                        f"node block {addr} not referenced by the node map"
                    )
            else:
                try:
                    mapped = fs.nat.get_block(file_id, index)
                except KeyError:
                    report.add(f"valid block {addr} owned by unknown file {file_id}")
                    continue
                if mapped != addr:
                    report.add(
                        f"valid block {addr} not referenced by NAT "
                        f"(file {file_id} block {index} -> {mapped})"
                    )


def _check_log_heads(fs: F2fs, report: FsckReport) -> None:
    """Log heads must sit on in-use sections within bounds."""
    for stream, head in fs.logs._heads.items():
        if head.section is None:
            continue
        if not 0 <= head.section < fs.layout.num_sections:
            report.add(f"log head {stream.value} on invalid section {head.section}")
        elif fs.logs.is_free(head.section):
            report.add(f"log head {stream.value} points at a free section")
        if head.next_offset > fs.layout.blocks_per_section:
            report.add(f"log head {stream.value} cursor out of bounds")
