"""Multi-head log allocation over zoned sections.

F2FS appends data through several *log heads* so that blocks with
different lifetimes land in different sections: hot data (fresh user
writes), cold data (blocks relocated by the cleaner), and node/metadata
blocks.  The separation is why the filesystem's WA can stay moderate
(Table 1 shows F2FS slightly *below* the middle layer) — cleaning never
mixes long-lived relocated blocks into short-lived write streams.

Each log head owns one section at a time and hands out block addresses
sequentially, which on a zoned device means every write lands exactly on
the zone's write pointer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import NoSpaceError
from repro.f2fs.layout import F2fsLayout


class LogStream(enum.Enum):
    """Log heads (a subset of F2FS's six, enough for the cache workload)."""

    HOT_DATA = "hot_data"
    COLD_DATA = "cold_data"
    NODE = "node"


@dataclass
class _LogHead:
    stream: LogStream
    section: Optional[int] = None
    next_offset: int = 0


class LogManager:
    """Allocates main-area blocks for each log head; manages free sections."""

    def __init__(self, layout: F2fsLayout) -> None:
        self.layout = layout
        self._free: List[int] = list(range(layout.num_sections))
        self._heads: Dict[LogStream, _LogHead] = {
            stream: _LogHead(stream) for stream in LogStream
        }
        # Sections whose zone the device declared dead: out of every pool
        # forever (the filesystem shrinks instead of crashing).
        self._retired: Set[int] = set()
        self.sections_opened = 0

    # --- pool state -----------------------------------------------------------------

    @property
    def free_section_count(self) -> int:
        return len(self._free)

    def open_sections(self) -> List[int]:
        """Sections currently owned by a log head (never GC victims)."""
        return [
            head.section for head in self._heads.values() if head.section is not None
        ]

    def head_of(self, stream: LogStream) -> _LogHead:
        return self._heads[stream]

    def is_free(self, section: int) -> bool:
        return section in self._free

    def is_retired(self, section: int) -> bool:
        return section in self._retired

    @property
    def retired_count(self) -> int:
        return len(self._retired)

    def retire_section(self, section: int) -> None:
        """Permanently remove a dead section from circulation.

        Any log head currently parked on it is forced to roll to a fresh
        section at its next allocation.
        """
        self._retired.add(section)
        if section in self._free:
            self._free.remove(section)
        for head in self._heads.values():
            if head.section == section:
                head.section = None
                head.next_offset = 0

    def release_section(self, section: int) -> None:
        """Return a cleaned section to the free pool."""
        if section in self._retired:
            return  # dead sections never come back
        if section in self._free:
            raise ValueError(f"section {section} is already free")
        self._free.append(section)

    # --- allocation ---------------------------------------------------------------------

    def allocate_blocks(self, stream: LogStream, count: int) -> List[int]:
        """Allocate ``count`` sequential block addresses from a log head.

        The returned addresses are contiguous *runs* — a run never crosses
        a section boundary, but the list may span sections if the head
        rolled over.  Raises :class:`NoSpaceError` when no free section is
        available for a rollover (caller should clean and retry).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        head = self._heads[stream]
        addresses: List[int] = []
        remaining = count
        while remaining > 0:
            if head.section is None or head.next_offset >= self.layout.blocks_per_section:
                self._roll_head(head)
            take = min(remaining, self.layout.blocks_per_section - head.next_offset)
            base = self.layout.block_addr(head.section, head.next_offset)
            addresses.extend(range(base, base + take))
            head.next_offset += take
            remaining -= take
        return addresses

    def _roll_head(self, head: _LogHead) -> None:
        if not self._free:
            raise NoSpaceError(
                f"no free section for log head {head.stream.value}; cleaning needed"
            )
        head.section = self._free.pop(0)
        head.next_offset = 0
        self.sections_opened += 1

    # --- persistence ----------------------------------------------------------------------

    def to_state(self) -> dict:
        return {
            "free": list(self._free),
            "retired": sorted(self._retired),
            "heads": {
                stream.value: {"section": head.section, "next_offset": head.next_offset}
                for stream, head in self._heads.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict, layout: F2fsLayout) -> "LogManager":
        manager = cls(layout)
        manager._free = list(state["free"])
        manager._retired = set(state.get("retired", []))
        for stream_value, head_state in state["heads"].items():
            head = manager._heads[LogStream(stream_value)]
            head.section = head_state["section"]
            head.next_offset = head_state["next_offset"]
        return manager
