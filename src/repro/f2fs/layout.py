"""On-device layout math for the F2FS-like filesystem.

F2FS divides its main area into *segments* (the allocation unit) grouped
into *sections* (the cleaning unit).  On a zoned device the section size
must equal the zone size so that cleaning a section corresponds exactly
to resetting a zone — this is how mainline F2FS supports ZNS, and it is
the configuration the paper benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KIB


@dataclass(frozen=True)
class F2fsConfig:
    """Filesystem tuning knobs.

    ``provision_ratio`` reserves a fraction of sections for cleaning
    headroom (the paper cites ~20% for F2FS on ZNS).  ``meta_batch_blocks``
    models NAT/SIT journaling: one 4 KiB metadata write to the
    conventional device per that many mapping updates.
    ``cpu_ns_per_block`` charges the per-block indexing overhead that
    makes a filesystem heavier than the region middle layer.
    """

    block_size: int = 4 * KIB
    segments_per_section: int = 4
    provision_ratio: float = 0.20
    meta_batch_blocks: int = 64
    # Per-block indexing CPU (node tree walk, NAT lookup, SIT update).
    # Deliberately heavy relative to the middle layer's single map probe:
    # this is the "internal indexing ... not designed and optimized for
    # cache" overhead of §1/§3.1.
    cpu_ns_per_block: int = 20_000
    # One node block is written to the NODE log per this many mapped data
    # blocks (direct-node granularity).  Node writes are the filesystem's
    # own WA contribution on top of cleaning.
    blocks_per_node: int = 512
    checkpoint_interval_blocks: int = 4096

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.segments_per_section < 1:
            raise ValueError("segments_per_section must be >= 1")
        if not 0.0 <= self.provision_ratio < 0.9:
            raise ValueError("provision_ratio must be in [0, 0.9)")
        if self.meta_batch_blocks < 1:
            raise ValueError("meta_batch_blocks must be >= 1")
        if self.cpu_ns_per_block < 0:
            raise ValueError("cpu_ns_per_block must be >= 0")
        if self.blocks_per_node < 1:
            raise ValueError("blocks_per_node must be >= 1")
        if self.checkpoint_interval_blocks < 1:
            raise ValueError("checkpoint_interval_blocks must be >= 1")


@dataclass(frozen=True)
class F2fsLayout:
    """Derived geometry binding the filesystem to a zoned device."""

    zone_size: int
    num_sections: int
    block_size: int
    segments_per_section: int
    reserved_sections: int

    @classmethod
    def for_device(
        cls, zone_size: int, num_zones: int, config: F2fsConfig
    ) -> "F2fsLayout":
        if zone_size % (config.block_size * config.segments_per_section) != 0:
            raise ValueError(
                f"zone size {zone_size} must be a multiple of "
                f"{config.segments_per_section} segments of blocks"
            )
        reserved = max(2, int(num_zones * config.provision_ratio))
        if reserved >= num_zones:
            raise ValueError(
                f"provisioning reserves {reserved} of {num_zones} sections; "
                "nothing left for data"
            )
        return cls(
            zone_size=zone_size,
            num_sections=num_zones,
            block_size=config.block_size,
            segments_per_section=config.segments_per_section,
            reserved_sections=reserved,
        )

    @property
    def blocks_per_section(self) -> int:
        return self.zone_size // self.block_size

    @property
    def blocks_per_segment(self) -> int:
        return self.blocks_per_section // self.segments_per_section

    @property
    def usable_sections(self) -> int:
        """Sections available for live data (total minus provisioning)."""
        return self.num_sections - self.reserved_sections

    @property
    def usable_blocks(self) -> int:
        return self.usable_sections * self.blocks_per_section

    @property
    def usable_bytes(self) -> int:
        return self.usable_blocks * self.block_size

    def section_of_block(self, block_addr: int) -> int:
        return block_addr // self.blocks_per_section

    def block_offset_in_section(self, block_addr: int) -> int:
        return block_addr % self.blocks_per_section

    def device_offset(self, block_addr: int) -> int:
        """Byte offset on the zoned device for a main-area block address."""
        section = self.section_of_block(block_addr)
        offset = self.block_offset_in_section(block_addr)
        return section * self.zone_size + offset * self.block_size

    def block_addr(self, section: int, offset: int) -> int:
        return section * self.blocks_per_section + offset
