"""Node Address Table: file-id + file-block-index → main-area block address.

Real F2FS resolves file offsets through inode/node blocks indexed by the
NAT.  We collapse that indirection into a per-file block map while
keeping the property the paper cares about: every remap is a metadata
update that must eventually reach the conventional metadata device.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class NodeAddressTable:
    """Per-file block maps plus file metadata (name → file id, sizes)."""

    def __init__(self) -> None:
        self._next_file_id = 1
        self._names: Dict[str, int] = {}
        self._sizes: Dict[int, int] = {}
        # (file_id, file_block_index) -> main-area block address
        self._maps: Dict[int, Dict[int, int]] = {}

    # --- file namespace --------------------------------------------------------

    def create_file(self, name: str) -> int:
        if name in self._names:
            from repro.errors import FileExistsInFsError

            raise FileExistsInFsError(f"file {name!r} already exists")
        file_id = self._next_file_id
        self._next_file_id += 1
        self._names[name] = file_id
        self._sizes[file_id] = 0
        self._maps[file_id] = {}
        return file_id

    def lookup_file(self, name: str) -> int:
        try:
            return self._names[name]
        except KeyError:
            from repro.errors import FileNotFoundInFsError

            raise FileNotFoundInFsError(f"no such file: {name!r}") from None

    def has_file(self, name: str) -> bool:
        return name in self._names

    def remove_file(self, name: str) -> Dict[int, int]:
        """Delete a file; returns its block map so callers can invalidate."""
        file_id = self.lookup_file(name)
        del self._names[name]
        del self._sizes[file_id]
        return self._maps.pop(file_id)

    def file_names(self) -> Iterator[str]:
        return iter(self._names)

    # --- sizes -------------------------------------------------------------------

    def size_of(self, file_id: int) -> int:
        return self._sizes[file_id]

    def update_size(self, file_id: int, size: int) -> None:
        if size > self._sizes[file_id]:
            self._sizes[file_id] = size

    # --- block mapping --------------------------------------------------------------

    def get_block(self, file_id: int, file_block: int) -> Optional[int]:
        return self._maps[file_id].get(file_block)

    def set_block(self, file_id: int, file_block: int, block_addr: int) -> Optional[int]:
        """Map a file block; returns the previous address (now stale)."""
        old = self._maps[file_id].get(file_block)
        self._maps[file_id][file_block] = block_addr
        return old

    def clear_block(self, file_id: int, file_block: int) -> Optional[int]:
        """Unmap one file block (§3.4 GC drop); returns the old address."""
        return self._maps[file_id].pop(file_block, None)

    def mapped_blocks(self, file_id: int) -> int:
        return len(self._maps[file_id])

    # --- persistence ------------------------------------------------------------------

    def to_state(self) -> dict:
        return {
            "next_file_id": self._next_file_id,
            "names": dict(self._names),
            "sizes": {str(k): v for k, v in self._sizes.items()},
            "maps": {
                str(fid): {str(b): addr for b, addr in fmap.items()}
                for fid, fmap in self._maps.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "NodeAddressTable":
        table = cls()
        table._next_file_id = state["next_file_id"]
        table._names = dict(state["names"])
        table._sizes = {int(k): v for k, v in state["sizes"].items()}
        table._maps = {
            int(fid): {int(b): addr for b, addr in fmap.items()}
            for fid, fmap in state["maps"].items()
        }
        return table
