"""Consistent hashing for key→shard routing.

The cluster shards keys across cache instances with a classic
consistent-hash ring: every shard owns many virtual nodes on a 32-bit
ring and a key belongs to the first virtual node clockwise from its
hash.  Adding or removing one shard therefore moves only ~1/N of the
keyspace — the property that lets a serving fleet grow without
invalidating most of its cached bytes.

Hashing is CRC32 with an avalanche finalizer (never the builtin
``hash``, whose per-process salting would make routing — and every
golden serving row — unrepeatable across runs).
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, List, Sequence

from repro.errors import ConfigError


def hash32(data: bytes, salt: int = 0) -> int:
    """Deterministic 32-bit hash with decent avalanche behaviour.

    CRC32 alone clusters nearby inputs (it is linear); the two
    multiply-xor-shift rounds below are the standard finalizer used by
    murmur3 to spread ring positions uniformly.
    """
    h = zlib.crc32(data, salt & 0xFFFFFFFF)
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class ConsistentHashRing:
    """Maps keys to named shards with bounded movement on resize."""

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted ring positions
        self._owners: Dict[int, str] = {}  # ring position -> node name
        self._nodes: List[str] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ConfigError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.vnodes):
            point = hash32(f"{node}#{replica}".encode())
            # A full-ring collision between two virtual nodes would make
            # ownership depend on insertion order; nudge deterministically.
            while point in self._owners:
                point = (point + 1) & 0xFFFFFFFF
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ConfigError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        stale = [p for p, owner in self._owners.items() if owner == node]
        for point in stale:
            del self._owners[point]
        self._points = sorted(self._owners)

    def node_for(self, key: bytes) -> str:
        """Owning node of ``key`` (first virtual node clockwise)."""
        if not self._points:
            raise ConfigError("ring has no nodes")
        point = hash32(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[self._points[index]]

    def nodes_for(self, key: bytes, count: int) -> List[str]:
        """First ``count`` distinct nodes clockwise from the key's hash.

        ``nodes_for(key, 1)[0] == node_for(key)``; the following entries
        are the ring successors, the shards GC-aware routing may divert
        a write to.  Capped at the ring's node count.
        """
        if not self._points:
            raise ConfigError("ring has no nodes")
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._points, hash32(key))
        owners: List[str] = []
        for step in range(len(self._points)):
            node = self._owners[self._points[(start + step) % len(self._points)]]
            if node not in owners:
                owners.append(node)
                if len(owners) == count:
                    break
        return owners

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(nodes={len(self._nodes)}, "
            f"vnodes={self.vnodes})"
        )
