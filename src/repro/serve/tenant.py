"""Tenant model: a named request stream with its own workload and QoS.

Each tenant owns a keyspace (namespaced by a key prefix), an op mix
(reusing :class:`~repro.workloads.cachebench.CacheBenchConfig` so the
serving path and the closed-loop driver stay comparable op-for-op), an
open-loop arrival process, an optional token-bucket rate limit, and an
SLO target the tracker scores completions against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.lifecycle import versioned_prefix
from repro.errors import ConfigError
from repro.serve.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    StormArrivals,
)
from repro.serve.qos import SloTracker, TokenBucket
from repro.workloads.cachebench import CacheBenchConfig, CacheBenchDriver, CacheOp


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's traffic contract.

    ``workload.num_ops`` is the tenant's request budget for the run;
    ``rate_ops_per_sec`` its offered (open-loop) rate.  A
    ``rate_limit_ops_per_sec`` of 0 disables the token bucket (the
    parity configuration against the closed-loop driver).
    """

    name: str
    rate_ops_per_sec: float = 50_000.0
    arrival: str = "poisson"
    diurnal_amplitude: float = 0.5
    diurnal_period_s: float = 0.2
    burst_factor: float = 4.0
    burst_on_s: float = 0.02
    burst_off_s: float = 0.08
    flash_crowd_factor: float = 4.0
    flash_crowd_at_s: float = 0.05
    flash_crowd_decay_s: float = 0.05
    storm_factor: float = 4.0
    storm_at_s: float = 0.05
    storm_duration_s: float = 0.02
    workload: CacheBenchConfig = field(default_factory=CacheBenchConfig)
    # None → derived from the name; pass b"" explicitly to share the
    # closed-loop driver's exact key bytes (single-tenant parity runs).
    key_prefix: Optional[bytes] = None
    # Generation-prefixed keys (``name:gen:key``): lets the server
    # invalidate the whole namespace in O(1) by bumping the generation.
    # Off by default — prefixes change every key byte, so parity runs
    # and existing goldens keep the plain prefix.
    versioned_keys: bool = False
    slo_p99_ms: float = 5.0
    rate_limit_ops_per_sec: float = 0.0
    rate_limit_burst: float = 64.0
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.rate_ops_per_sec <= 0:
            raise ConfigError(
                f"rate_ops_per_sec must be positive, got {self.rate_ops_per_sec}"
            )
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigError(
                f"unknown arrival kind {self.arrival!r}; expected one of "
                f"{ARRIVAL_KINDS}"
            )
        if self.slo_p99_ms <= 0:
            raise ConfigError(f"slo_p99_ms must be positive, got {self.slo_p99_ms}")
        if self.rate_limit_ops_per_sec < 0:
            raise ConfigError("rate_limit_ops_per_sec must be non-negative")
        if self.versioned_keys and self.key_prefix is not None:
            raise ConfigError(
                "versioned_keys derives the prefix from the tenant name; "
                "drop the explicit key_prefix"
            )

    @property
    def effective_key_prefix(self) -> bytes:
        if self.key_prefix is not None:
            return self.key_prefix
        return f"{self.name}:".encode()


class Tenant:
    """Runtime state of one tenant inside a serving run."""

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.generation = 0
        if config.versioned_keys:
            self.key_prefix = versioned_prefix(config.name.encode(), 0)
        else:
            self.key_prefix = config.effective_key_prefix
        self.driver = CacheBenchDriver(config.workload)
        self.arrivals = self._make_arrivals(config)
        self.bucket: Optional[TokenBucket] = None
        if config.rate_limit_ops_per_sec > 0:
            self.bucket = TokenBucket(
                config.rate_limit_ops_per_sec, config.rate_limit_burst
            )
        self.slo = SloTracker(config.name, int(config.slo_p99_ms * 1e6))
        self.issued = 0

    @staticmethod
    def _make_arrivals(config: TenantConfig) -> ArrivalProcess:
        if config.arrival == "poisson":
            return PoissonArrivals(config.rate_ops_per_sec, seed=config.seed)
        if config.arrival == "diurnal":
            return DiurnalArrivals(
                config.rate_ops_per_sec,
                amplitude=config.diurnal_amplitude,
                period_s=config.diurnal_period_s,
                seed=config.seed,
            )
        if config.arrival == "flash_crowd":
            return FlashCrowdArrivals(
                config.rate_ops_per_sec,
                peak_factor=config.flash_crowd_factor,
                at_s=config.flash_crowd_at_s,
                decay_s=config.flash_crowd_decay_s,
                seed=config.seed,
            )
        if config.arrival == "storm":
            return StormArrivals(
                config.rate_ops_per_sec,
                storm_factor=config.storm_factor,
                at_s=config.storm_at_s,
                duration_s=config.storm_duration_s,
                seed=config.seed,
            )
        return BurstArrivals(
            config.rate_ops_per_sec,
            burst_factor=config.burst_factor,
            on_s=config.burst_on_s,
            off_s=config.burst_off_s,
            seed=config.seed,
        )

    @property
    def budget(self) -> int:
        """Total requests this tenant offers over the run."""
        return self.config.workload.num_ops

    def next_op(self) -> CacheOp:
        self.issued += 1
        return self.driver.next_op()

    def key_for(self, op: CacheOp) -> bytes:
        return self.key_prefix + self.driver.key_bytes(op.key_index)

    @property
    def namespace_id(self) -> bytes:
        """Tenant id the cache's namespace-version table keys on."""
        return self.config.name.encode()

    def invalidate(self) -> int:
        """Bump this tenant's generation and return the new value.

        Requires ``versioned_keys``; subsequent requests carry the new
        generation prefix, so every key written under the old one
        becomes unreachable — dead bytes for the storage layers to
        discover.  The server mirrors the bump into each shard's cache
        so old-generation reads are refused even where the index still
        holds them.
        """
        if not self.config.versioned_keys:
            raise ConfigError(
                f"tenant {self.config.name!r} does not use versioned keys"
            )
        self.generation += 1
        self.key_prefix = versioned_prefix(self.namespace_id, self.generation)
        return self.generation

    def __repr__(self) -> str:
        return (
            f"Tenant({self.config.name!r}, rate={self.config.rate_ops_per_sec}/s, "
            f"issued={self.issued}/{self.budget})"
        )
