"""QoS primitives: token-bucket rate limiting and per-tenant SLO tracking.

The serving layer prefers *rejecting* work to collapsing under it: a
token bucket caps each tenant's admitted rate, bounded shard queues shed
what would otherwise grow without bound, and :class:`SloTracker` keeps
the per-tenant evidence (end-to-end latency percentiles, goodput, shed
accounting) the serving sweep reports.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.sim.stats import LatencyRecorder
from repro.units import SEC


class TokenBucket:
    """Deterministic token bucket over virtual time.

    Refills continuously at ``rate_per_sec`` up to ``burst`` tokens;
    ``try_take`` consumes one token or reports the request as over-rate.
    All arithmetic is pure function of virtual timestamps, so the same
    arrival sequence always sheds the same requests.
    """

    __slots__ = ("rate_per_sec", "burst", "_tokens", "_last_ns", "accepted", "rejected")

    def __init__(
        self, rate_per_sec: float, burst: float = 64.0, start_ns: int = 0
    ) -> None:
        if rate_per_sec <= 0:
            raise ConfigError(f"rate_per_sec must be positive, got {rate_per_sec}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        self.rate_per_sec = rate_per_sec
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_ns = start_ns
        self.accepted = 0
        self.rejected = 0

    def try_take(self, now_ns: int) -> bool:
        if now_ns > self._last_ns:
            refill = (now_ns - self._last_ns) / SEC * self.rate_per_sec
            self._tokens = min(self.burst, self._tokens + refill)
            self._last_ns = now_ns
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.accepted += 1
            return True
        self.rejected += 1
        return False

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate_per_sec}/s, "
            f"tokens={self._tokens:.2f}/{self.burst})"
        )


class SloTracker:
    """Per-tenant service-level accounting.

    End-to-end latency here is *arrival to completion* — queueing delay
    at the shard plus the cache operation's full simulated cost — which
    is what a client of the fleet would measure.  ``goodput`` counts
    only completions that met the tenant's latency objective, so a
    saturated shard serving everything late scores near zero even though
    its raw throughput looks healthy.
    """

    def __init__(self, name: str, slo_latency_ns: int) -> None:
        if slo_latency_ns <= 0:
            raise ConfigError(
                f"slo_latency_ns must be positive, got {slo_latency_ns}"
            )
        self.name = name
        self.slo_latency_ns = slo_latency_ns
        self.latency = LatencyRecorder(f"{name}.e2e")
        self.offered = 0
        self.completed = 0
        self.within_slo = 0
        self.shed_rate_limited = 0
        self.shed_queue_full = 0
        self.rerouted = 0
        self.gets = 0
        self.get_hits = 0
        # Requests accepted for service but never completed: routed to a
        # dead shard, lost in a power cut, or left with no live replica.
        # Only the replicated serving loop can produce these; the row()
        # schema is unchanged so pre-replication goldens stay identical
        # (the failover sweep reads this attribute directly).
        self.failed_unavailable = 0

    # --- recording ----------------------------------------------------------

    def record_offered(self) -> None:
        self.offered += 1

    def record_shed(self, reason: str) -> None:
        if reason == "rate_limited":
            self.shed_rate_limited += 1
        elif reason == "queue_full":
            self.shed_queue_full += 1
        else:
            raise ValueError(f"unknown shed reason {reason!r}")

    def record_rerouted(self) -> None:
        """A write steered off its home shard by GC-aware routing."""
        self.rerouted += 1

    def record_failed(self) -> None:
        """A request lost to shard unavailability (see failed_unavailable)."""
        self.failed_unavailable += 1

    def record_completion(self, latency_ns: int, is_get: bool, hit: bool) -> None:
        self.completed += 1
        self.latency.record(latency_ns)
        if latency_ns <= self.slo_latency_ns:
            self.within_slo += 1
        if is_get:
            self.gets += 1
            if hit:
                self.get_hits += 1

    # --- derived quantities -------------------------------------------------

    @property
    def shed(self) -> int:
        return self.shed_rate_limited + self.shed_queue_full

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected before service."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def hit_ratio(self) -> float:
        if self.gets == 0:
            return 0.0
        return self.get_hits / self.gets

    def goodput_ops_per_sec(self, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return self.within_slo / elapsed_seconds

    def row(self, elapsed_seconds: float) -> Dict[str, object]:
        """Rectangular per-tenant summary (one bench row per tenant)."""
        return {
            "tenant": self.name,
            "offered": self.offered,
            "completed": self.completed,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_queue_full": self.shed_queue_full,
            "shed_rate": self.shed_rate,
            "rerouted": self.rerouted,
            "p50_us": self.latency.p50() / 1000,
            "p99_us": self.latency.p99() / 1000,
            "p999_us": self.latency.percentile(99.9) / 1000,
            "goodput_kops": self.goodput_ops_per_sec(elapsed_seconds) / 1000,
            "slo_attainment": (
                self.within_slo / self.completed if self.completed else 0.0
            ),
            "hit_ratio": self.hit_ratio,
        }
