"""Event-driven serving loop: open-loop tenants against a shard fleet.

This is a discrete-event simulation layered on the same virtual clocks
the rest of the reproduction uses.  Tenants emit arrivals on their own
schedule (open loop — nothing waits for completions); each arrival is
rate-limit checked, routed by consistent hash, and either queued at its
shard or shed.  Shards are serial servers whose *service time* is the
full simulated cost of the cache operation — CPU charges, device
queueing, GC interference — so serving-level queueing delay composes
with NAND-level latency instead of replacing it.

Determinism: one binary heap ordered by (virtual time, insertion seq),
all randomness behind seeded RNGs, no wall clock anywhere.  The same
configs produce byte-identical reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.serve.cluster import CacheCluster, Shard
from repro.serve.tenant import Tenant, TenantConfig
from repro.units import SEC

_ARRIVAL = 0
_DONE = 1


@dataclass(frozen=True)
class ServerConfig:
    """Fleet-level serving knobs."""

    # Bounded per-shard service queue: the load-shedding backstop.  An
    # arrival finding the queue full is rejected, so queue delay — and
    # therefore p99 — stays bounded while shed rate absorbs the overload.
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


@dataclass
class ServingReport:
    """Everything one serving run measured."""

    tenant_rows: List[Dict[str, object]]
    shard_rows: List[Dict[str, object]]
    sim_seconds: float
    offered: int
    completed: int
    shed: int

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered


class Server:
    """Runs tenants' open-loop streams to completion over a cluster."""

    def __init__(
        self,
        cluster: CacheCluster,
        tenants: Sequence[TenantConfig],
        config: ServerConfig = ServerConfig(),
    ) -> None:
        if not tenants:
            raise ConfigError("server needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"tenant names must be unique, got {names}")
        self.cluster = cluster
        self.config = config
        self.tenants = [Tenant(t) for t in tenants]
        self._heap: List[Tuple[int, int, int, int]] = []
        self._seq = 0
        self._end_ns = 0
        self._last_arrival_ns = 0

    # --- event plumbing -----------------------------------------------------

    def _push(self, time_ns: int, kind: int, index: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_ns, self._seq, kind, index))

    # --- main loop ----------------------------------------------------------

    def run(self) -> ServingReport:
        for index, tenant in enumerate(self.tenants):
            if tenant.budget > 0:
                self._push(tenant.arrivals.next_arrival_ns(0), _ARRIVAL, index)
        while self._heap:
            time_ns, _seq, kind, index = heapq.heappop(self._heap)
            if kind == _ARRIVAL:
                self._on_arrival(time_ns, index)
            else:
                self._on_done(time_ns, self.cluster.shards[index])
        return self._report()

    def _on_arrival(self, now_ns: int, tenant_index: int) -> None:
        tenant = self.tenants[tenant_index]
        self._last_arrival_ns = now_ns
        op = tenant.next_op()
        if tenant.issued < tenant.budget:
            self._push(
                tenant.arrivals.next_arrival_ns(now_ns), _ARRIVAL, tenant_index
            )
        tenant.slo.record_offered()
        key = tenant.key_for(op)
        shard = self.cluster.shard_for(key)
        tracer = shard.stack.cache.store.tracer
        if tenant.bucket is not None and not tenant.bucket.try_take(now_ns):
            tenant.slo.record_shed("rate_limited")
            tracer.emit_event("serve.qos", "shed_rate_limit", offset=shard.index)
            return
        # Rate-limit-admitted requests may be steered around reclamation
        # pressure (writes only; reads always follow the ring).
        shard, rerouted_from = self.cluster.route_for(key, op.kind != "get")
        if rerouted_from is not None:
            tenant.slo.record_rerouted()
            tracer = shard.stack.cache.store.tracer
            tracer.emit_event(
                "serve.route",
                "reroute",
                offset=shard.index,
                zone=rerouted_from.index,
            )
        if len(shard.queue) >= self.config.max_queue_depth:
            tenant.slo.record_shed("queue_full")
            shard.shed_queue_full += 1
            tracer.emit_event("serve.qos", "shed_queue_full", offset=shard.index)
            return
        shard.queue.append((now_ns, tenant_index, op))
        if not shard.busy:
            self._start_service(now_ns, shard)

    def _start_service(self, now_ns: int, shard: Shard) -> None:
        arrival_ns, tenant_index, op = shard.queue.popleft()
        tenant = self.tenants[tenant_index]
        shard.busy = True
        # The shard's device clock catches up to the fleet's event time
        # (translated onto the shard's own epoch — stack construction cost
        # is not serving time): idle gaps between arrivals really are idle,
        # then the op runs at full simulated cost.
        shard.clock.advance_to(shard.to_local(now_ns))
        start_ns = shard.clock.now
        tracer = shard.stack.cache.store.tracer
        with tracer.span("serve", op.kind, offset=shard.index):
            hit = tenant.driver.apply_op(
                shard.stack.cache, op, key_prefix=tenant.key_prefix
            )
        shard.served += 1
        shard.busy_ns += shard.clock.now - start_ns
        done_ns = shard.to_fleet(shard.clock.now)
        tenant.slo.record_completion(
            done_ns - arrival_ns, is_get=(op.kind == "get"), hit=hit
        )
        self._end_ns = max(self._end_ns, done_ns)
        self._push(done_ns, _DONE, shard.index)

    def _on_done(self, now_ns: int, shard: Shard) -> None:
        shard.busy = False
        if shard.queue:
            self._start_service(now_ns, shard)

    # --- reporting ----------------------------------------------------------

    def _report(self) -> ServingReport:
        # The measurement window must cover the last *arrival* too: a
        # tenant whose tail is entirely shed stops producing completions
        # while offered load keeps flowing, and normalizing goodput by
        # the last completion alone would inflate it.
        elapsed_s = max(self._end_ns, self._last_arrival_ns) / SEC
        tenant_rows = []
        for tenant in self.tenants:
            row = tenant.slo.row(elapsed_s)
            row["arrival"] = tenant.config.arrival
            row["offered_kops"] = tenant.config.rate_ops_per_sec / 1000
            tenant_rows.append(row)
        offered = sum(t.slo.offered for t in self.tenants)
        completed = sum(t.slo.completed for t in self.tenants)
        shed = sum(t.slo.shed for t in self.tenants)
        return ServingReport(
            tenant_rows=tenant_rows,
            shard_rows=self.cluster.rows(),
            sim_seconds=elapsed_s,
            offered=offered,
            completed=completed,
            shed=shed,
        )
