"""Event-driven serving loop: open-loop tenants against a shard fleet.

This is a discrete-event simulation layered on the same virtual clocks
the rest of the reproduction uses.  Tenants emit arrivals on their own
schedule (open loop — nothing waits for completions); each arrival is
rate-limit checked, routed by consistent hash, and either queued at its
shard or shed.  Shards are serial servers whose *service time* is the
full simulated cost of the cache operation — CPU charges, device
queueing, GC interference — so serving-level queueing delay composes
with NAND-level latency instead of replacing it.

Determinism: every event carries a (virtual time, insertion seq) key,
all randomness sits behind seeded RNGs, no wall clock anywhere.  The
same configs produce byte-identical reports.

Two interchangeable executions of the same simulation live here:

* the **fast path** (default) pre-generates each tenant's arrival
  timestamps and operations as arrays, replaces the binary heap with
  the run-list idiom of :class:`~repro.sim.sched.EventScheduler`, and
  inlines the QoS/routing bookkeeping — roughly an order of magnitude
  more simulated ops/sec;
* the **legacy path** (``fast_path=False``, or automatically whenever a
  shard's I/O tracer has subscribers) is the original one-event-per-
  arrival heap loop, kept as the executable reference the fast path is
  regression-tested against.

Both produce bit-identical reports; ``tests/test_engine_speed.py``
holds the equivalence tests.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.serve.cluster import CacheCluster, Shard
from repro.serve.tenant import Tenant, TenantConfig
from repro.sim.sched import EventScheduler
from repro.units import SEC
from repro.workloads.cachebench import KIND_GET

_ARRIVAL = 0
_DONE = 1


@dataclass(frozen=True)
class ServerConfig:
    """Fleet-level serving knobs."""

    # Bounded per-shard service queue: the load-shedding backstop.  An
    # arrival finding the queue full is rejected, so queue delay — and
    # therefore p99 — stays bounded while shed rate absorbs the overload.
    max_queue_depth: int = 64
    # Pre-generated array-driven event loop (see module docstring).
    # Runs only while tracing is off; traced runs take the legacy loop
    # so span/event sequences stay exactly as they always were.
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


@dataclass
class ServingReport:
    """Everything one serving run measured."""

    tenant_rows: List[Dict[str, object]]
    shard_rows: List[Dict[str, object]]
    sim_seconds: float
    offered: int
    completed: int
    shed: int

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered


class Server:
    """Runs tenants' open-loop streams to completion over a cluster."""

    def __init__(
        self,
        cluster: CacheCluster,
        tenants: Sequence[TenantConfig],
        config: ServerConfig = ServerConfig(),
    ) -> None:
        if not tenants:
            raise ConfigError("server needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"tenant names must be unique, got {names}")
        self.cluster = cluster
        self.config = config
        self.tenants = [Tenant(t) for t in tenants]
        self._heap: List[Tuple[int, int, int, int]] = []
        self._seq = 0
        self._end_ns = 0
        self._last_arrival_ns = 0

    # --- event plumbing -----------------------------------------------------

    def _push(self, time_ns: int, kind: int, index: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_ns, self._seq, kind, index))

    # --- main loop ----------------------------------------------------------

    def run(self) -> ServingReport:
        if self.config.fast_path and not any(
            shard.stack.cache.store.tracer.enabled
            for shard in self.cluster.shards
        ):
            return self._run_fast()
        return self._run_legacy()

    def _run_legacy(self) -> ServingReport:
        """Reference loop: one heap event per arrival, ops drawn lazily."""
        for index, tenant in enumerate(self.tenants):
            if tenant.budget > 0:
                self._push(tenant.arrivals.next_arrival_ns(0), _ARRIVAL, index)
        while self._heap:
            time_ns, _seq, kind, index = heapq.heappop(self._heap)
            if kind == _ARRIVAL:
                self._on_arrival(time_ns, index)
            else:
                self._on_done(time_ns, self.cluster.shards[index])
        return self._report()

    def _run_fast(self) -> ServingReport:
        """Array-driven loop; bit-identical to :meth:`_run_legacy`.

        Every RNG draw the legacy loop makes per event is pre-drawn here
        in bulk per stream (streams are independent generators, so
        draining one early cannot perturb another), and the event heap
        becomes a descending run-list: with one pending arrival per
        tenant plus one completion per busy shard in flight, ``insort``
        into a handful of tuples beats heap sifting.  Event ``seq``
        numbers are assigned at the same points in the same order as the
        legacy loop, so ties dequeue identically.
        """
        tenants = self.tenants
        cluster = self.cluster
        shards = cluster.shards
        max_depth = self.config.max_queue_depth
        gc_aware = cluster.routing.policy == "gc_aware"
        route_from_home = cluster.route_from_home
        shard_for = cluster.shard_for

        # Per-tenant pre-generated streams: arrival times, op kinds, op
        # key indices, and fully-prefixed key bytes (memoized — Zipf
        # reuse means most arrivals hit the same few hundred keys).
        arrival_times: List[List[int]] = []
        op_kinds: List[List[int]] = []
        op_key_indices: List[List[int]] = []
        op_keys: List[List[bytes]] = []
        for tenant in tenants:
            budget = tenant.budget
            arrival_times.append(
                tenant.arrivals.pregenerate(budget) if budget > 0 else []
            )
            kinds, key_indices = tenant.driver.next_ops(budget)
            op_kinds.append(kinds)
            op_key_indices.append(key_indices)
            prefix = tenant.key_prefix
            key_bytes = tenant.driver.key_bytes
            key_cache: Dict[int, bytes] = {}
            keys: List[bytes] = []
            for key_index in key_indices:
                key = key_cache.get(key_index)
                if key is None:
                    key = prefix + key_bytes(key_index)
                    key_cache[key_index] = key
                keys.append(key)
            op_keys.append(keys)

        scheduler = EventScheduler()
        events = scheduler.events
        seq = 0
        for index, tenant in enumerate(tenants):
            if tenant.budget > 0:
                seq += 1
                events.append((-arrival_times[index][0], -seq, _ARRIVAL, index))
        events.sort()
        cursors = [0] * len(tenants)
        end_ns = 0
        last_arrival_ns = 0

        while events:
            neg_time, _neg_seq, ev_kind, index = events.pop()
            now_ns = -neg_time
            serve_shard = None
            if ev_kind == _ARRIVAL:
                tenant = tenants[index]
                last_arrival_ns = now_ns
                cursor = cursors[index]
                cursors[index] = cursor + 1
                tenant.issued = cursor + 1
                next_cursor = cursor + 1
                if next_cursor < tenant.budget:
                    seq += 1
                    insort(
                        events,
                        (-arrival_times[index][next_cursor], -seq, _ARRIVAL, index),
                    )
                slo = tenant.slo
                slo.offered += 1
                key = op_keys[index][cursor]
                kind = op_kinds[index][cursor]
                bucket = tenant.bucket
                if bucket is not None:
                    # Inlined TokenBucket.try_take (same float order).
                    if now_ns > bucket._last_ns:
                        refill = (
                            (now_ns - bucket._last_ns) / SEC * bucket.rate_per_sec
                        )
                        tokens = bucket._tokens + refill
                        burst = bucket.burst
                        bucket._tokens = burst if tokens > burst else tokens
                        bucket._last_ns = now_ns
                    if bucket._tokens >= 1.0:
                        bucket._tokens -= 1.0
                        bucket.accepted += 1
                    else:
                        bucket.rejected += 1
                        slo.shed_rate_limited += 1
                        continue
                if gc_aware and kind != KIND_GET:
                    shard, rerouted_from = route_from_home(key, shard_for(key))
                    if rerouted_from is not None:
                        slo.rerouted += 1
                else:
                    shard = shard_for(key)
                queue = shard.queue
                if len(queue) >= max_depth:
                    slo.shed_queue_full += 1
                    shard.shed_queue_full += 1
                    continue
                queue.append((now_ns, index, cursor))
                if not shard.busy:
                    serve_shard = shard
            else:
                shard = shards[index]
                shard.busy = False
                if shard.queue:
                    serve_shard = shard
            if serve_shard is not None:
                shard = serve_shard
                arrival_ns, tenant_index, cursor = shard.queue.popleft()
                tenant = tenants[tenant_index]
                shard.busy = True
                clock = shard.stack.clock
                local_ns = shard.epoch_ns + now_ns
                if local_ns > clock.now:
                    clock.now = local_ns
                start_ns = clock.now
                kind = op_kinds[tenant_index][cursor]
                hit = tenant.driver.apply_kind(
                    shard.stack.cache,
                    kind,
                    op_key_indices[tenant_index][cursor],
                    op_keys[tenant_index][cursor],
                )
                shard.served += 1
                shard.busy_ns += clock.now - start_ns
                done_ns = clock.now - shard.epoch_ns
                slo = tenant.slo
                slo.completed += 1
                latency = done_ns - arrival_ns
                recorder = slo.latency
                recorder._samples.append(latency)
                recorder._sorted = None
                if latency <= slo.slo_latency_ns:
                    slo.within_slo += 1
                if kind == KIND_GET:
                    slo.gets += 1
                    if hit:
                        slo.get_hits += 1
                if done_ns > end_ns:
                    end_ns = done_ns
                seq += 1
                insort(events, (-done_ns, -seq, _DONE, shard.index))

        scheduler.seq = seq
        self._end_ns = end_ns
        self._last_arrival_ns = last_arrival_ns
        return self._report()

    def _on_arrival(self, now_ns: int, tenant_index: int) -> None:
        tenant = self.tenants[tenant_index]
        self._last_arrival_ns = now_ns
        op = tenant.next_op()
        if tenant.issued < tenant.budget:
            self._push(
                tenant.arrivals.next_arrival_ns(now_ns), _ARRIVAL, tenant_index
            )
        tenant.slo.record_offered()
        key = tenant.key_for(op)
        shard = self.cluster.shard_for(key)
        tracer = shard.stack.cache.store.tracer
        if tenant.bucket is not None and not tenant.bucket.try_take(now_ns):
            tenant.slo.record_shed("rate_limited")
            tracer.emit_event("serve.qos", "shed_rate_limit", offset=shard.index)
            return
        # Rate-limit-admitted requests may be steered around reclamation
        # pressure (writes only; reads always follow the ring).
        shard, rerouted_from = self.cluster.route_for(key, op.kind != "get")
        if rerouted_from is not None:
            tenant.slo.record_rerouted()
            tracer = shard.stack.cache.store.tracer
            tracer.emit_event(
                "serve.route",
                "reroute",
                offset=shard.index,
                zone=rerouted_from.index,
            )
        if len(shard.queue) >= self.config.max_queue_depth:
            tenant.slo.record_shed("queue_full")
            shard.shed_queue_full += 1
            tracer.emit_event("serve.qos", "shed_queue_full", offset=shard.index)
            return
        shard.queue.append((now_ns, tenant_index, op))
        if not shard.busy:
            self._start_service(now_ns, shard)

    def _start_service(self, now_ns: int, shard: Shard) -> None:
        arrival_ns, tenant_index, op = shard.queue.popleft()
        tenant = self.tenants[tenant_index]
        shard.busy = True
        # The shard's device clock catches up to the fleet's event time
        # (translated onto the shard's own epoch — stack construction cost
        # is not serving time): idle gaps between arrivals really are idle,
        # then the op runs at full simulated cost.
        shard.clock.advance_to(shard.to_local(now_ns))
        start_ns = shard.clock.now
        tracer = shard.stack.cache.store.tracer
        with tracer.span("serve", op.kind, offset=shard.index):
            hit = tenant.driver.apply_op(
                shard.stack.cache, op, key_prefix=tenant.key_prefix
            )
        shard.served += 1
        shard.busy_ns += shard.clock.now - start_ns
        done_ns = shard.to_fleet(shard.clock.now)
        tenant.slo.record_completion(
            done_ns - arrival_ns, is_get=(op.kind == "get"), hit=hit
        )
        self._end_ns = max(self._end_ns, done_ns)
        self._push(done_ns, _DONE, shard.index)

    def _on_done(self, now_ns: int, shard: Shard) -> None:
        shard.busy = False
        if shard.queue:
            self._start_service(now_ns, shard)

    # --- reporting ----------------------------------------------------------

    def _report(self) -> ServingReport:
        # The measurement window must cover the last *arrival* too: a
        # tenant whose tail is entirely shed stops producing completions
        # while offered load keeps flowing, and normalizing goodput by
        # the last completion alone would inflate it.
        elapsed_s = max(self._end_ns, self._last_arrival_ns) / SEC
        tenant_rows = []
        for tenant in self.tenants:
            row = tenant.slo.row(elapsed_s)
            row["arrival"] = tenant.config.arrival
            row["offered_kops"] = tenant.config.rate_ops_per_sec / 1000
            tenant_rows.append(row)
        offered = sum(t.slo.offered for t in self.tenants)
        completed = sum(t.slo.completed for t in self.tenants)
        shed = sum(t.slo.shed for t in self.tenants)
        return ServingReport(
            tenant_rows=tenant_rows,
            shard_rows=self.cluster.rows(),
            sim_seconds=elapsed_s,
            offered=offered,
            completed=completed,
            shed=shed,
        )
