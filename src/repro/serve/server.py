"""Event-driven serving loop: open-loop tenants against a shard fleet.

This is a discrete-event simulation layered on the same virtual clocks
the rest of the reproduction uses.  Tenants emit arrivals on their own
schedule (open loop — nothing waits for completions); each arrival is
rate-limit checked, routed by consistent hash, and either queued at its
shard or shed.  Shards are serial servers whose *service time* is the
full simulated cost of the cache operation — CPU charges, device
queueing, GC interference — so serving-level queueing delay composes
with NAND-level latency instead of replacing it.

Determinism: every event carries a (virtual time, insertion seq) key,
all randomness sits behind seeded RNGs, no wall clock anywhere.  The
same configs produce byte-identical reports.

Two interchangeable executions of the same simulation live here:

* the **fast path** (default) pre-generates each tenant's arrival
  timestamps and operations as arrays, replaces the binary heap with
  the run-list idiom of :class:`~repro.sim.sched.EventScheduler`, and
  inlines the QoS/routing bookkeeping — roughly an order of magnitude
  more simulated ops/sec;
* the **legacy path** (``fast_path=False``, or automatically whenever a
  shard's I/O tracer has subscribers) is the original one-event-per-
  arrival heap loop, kept as the executable reference the fast path is
  regression-tested against.

Both produce bit-identical reports; ``tests/test_engine_speed.py``
holds the equivalence tests.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.engine import HybridCache
from repro.errors import ConfigError
from repro.serve.cluster import CacheCluster, Shard
from repro.serve.replication import (
    HEALTH_DOWN,
    HEALTH_RESYNCING,
    HEALTH_SUSPECT,
    HEALTH_UP,
    PHASE_RECOVERED,
    PHASE_STEADY,
    PHASE_STORM,
    FailoverPlan,
    FleetStats,
    ShardKill,
)
from repro.serve.invalidation import InvalidationPlan, InvalidationStats
from repro.serve.tenant import Tenant, TenantConfig
from repro.sim.sched import EventScheduler
from repro.units import SEC
from repro.workloads.cachebench import KIND_DELETE, KIND_GET, KIND_NAMES, KIND_SET

_ARRIVAL = 0
_DONE = 1
# Replicated-loop-only event kinds (never pushed by the fast/legacy
# loops, so their event streams are untouched).
_KILL = 2
_RECOVER = 3
_PROBE = 4
# Scheduled namespace bump (legacy + replicated loops; never pushed
# unless an InvalidationPlan is armed).
_INVALIDATE = 5

# Queue item tags for the replicated loop (first tuple element).
_ITEM_FG = 0
_ITEM_REPL = 1
_ITEM_HINT = 2

# Hint-journal entry kind for a namespace bump owed to a DOWN shard
# (key = tenant id bytes, value = ASCII generation).  Outside the
# cachebench KIND_* range on purpose.
_KIND_NSBUMP = 3

_KIND_INT = {"get": KIND_GET, "set": KIND_SET, "delete": KIND_DELETE}


@dataclass(frozen=True)
class ServerConfig:
    """Fleet-level serving knobs."""

    # Bounded per-shard service queue: the load-shedding backstop.  An
    # arrival finding the queue full is rejected, so queue delay — and
    # therefore p99 — stays bounded while shed rate absorbs the overload.
    max_queue_depth: int = 64
    # Pre-generated array-driven event loop (see module docstring).
    # Runs only while tracing is off; traced runs take the legacy loop
    # so span/event sequences stay exactly as they always were.
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


@dataclass
class ServingReport:
    """Everything one serving run measured."""

    tenant_rows: List[Dict[str, object]]
    shard_rows: List[Dict[str, object]]
    sim_seconds: float
    offered: int
    completed: int
    shed: int
    # Fleet-level replication/failover summary; None unless the
    # replicated loop ran (replicas > 1 or a FailoverPlan was armed).
    fleet_row: Optional[Dict[str, object]] = field(default=None)
    # Invalidation-storm summary; None unless an InvalidationPlan ran.
    inval_row: Optional[Dict[str, object]] = field(default=None)

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered


class Server:
    """Runs tenants' open-loop streams to completion over a cluster."""

    def __init__(
        self,
        cluster: CacheCluster,
        tenants: Sequence[TenantConfig],
        config: ServerConfig = ServerConfig(),
        failover: Optional[FailoverPlan] = None,
        invalidations: Optional[InvalidationPlan] = None,
    ) -> None:
        if not tenants:
            raise ConfigError("server needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"tenant names must be unique, got {names}")
        self.cluster = cluster
        self.config = config
        self.failover = failover
        self.invalidations = invalidations
        self.inval_stats: Optional[InvalidationStats] = None
        if invalidations is not None and invalidations:
            by_name = {t.name: t for t in tenants}
            for bump in invalidations.bumps:
                target = by_name.get(bump.tenant)
                if target is None:
                    raise ConfigError(
                        f"invalidation targets unknown tenant {bump.tenant!r}"
                    )
                if not target.versioned_keys:
                    raise ConfigError(
                        f"invalidation targets tenant {bump.tenant!r} "
                        "without versioned_keys"
                    )
            self.inval_stats = InvalidationStats()
        if failover is not None:
            for kill in failover.kills:
                if kill.shard >= cluster.num_shards:
                    raise ConfigError(
                        f"kill targets shard {kill.shard}, "
                        f"cluster has {cluster.num_shards}"
                    )
        if self._replication_armed() and cluster.routing.policy == "gc_aware":
            raise ConfigError(
                "the replicated serving loop requires ring-faithful "
                "(static) routing; gc_aware is not supported with a "
                "failover plan"
            )
        self.tenants = [Tenant(t) for t in tenants]
        # Diversion-journal reads (RoutingConfig.diversion_journal):
        # active only under gc_aware routing, where writes can divert.
        self._diversion_active = (
            cluster.routing.diversion_journal
            and cluster.routing.policy == "gc_aware"
        )
        # Per-shard pacer to feed tenant-observed e2e latency into
        # (AdaptivePacingConfig signal="e2e_p99"); resolved at run()
        # time so enable_adaptive_pacing() after construction counts.
        self._e2e_feed: List[Optional[object]] = []
        self._heap: List[Tuple[int, int, int, int]] = []
        self._seq = 0
        self._end_ns = 0
        self._last_arrival_ns = 0
        self._fleet: Optional[FleetStats] = None
        self._kills_fired = 0
        self._probe_armed = False
        # Oracle for the crash-consistency tests: every acknowledged,
        # replicated write's (time, value) history per key.
        self.write_ledger: Optional[
            Dict[bytes, List[Tuple[int, Optional[bytes]]]]
        ] = ({} if cluster.replication.track_writes else None)

    def _replication_armed(self) -> bool:
        return self.failover is not None or self.cluster.replication.replicas > 1

    # --- event plumbing -----------------------------------------------------

    def _push(self, time_ns: int, kind: int, index: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_ns, self._seq, kind, index))

    # --- main loop ----------------------------------------------------------

    def _resolve_e2e_feed(self) -> None:
        """Pick out, per shard, the reclaim pacer that wants the
        tenant-observed e2e latency signal (``signal="e2e_p99"``).
        Shards with no reclamation layer, no adaptive controller, or the
        device-side stall signal get ``None`` — zero per-completion cost
        for every pre-existing configuration."""
        self._e2e_feed = []
        for shard in self.cluster.shards:
            _, engine = shard.stack.reclaim_engine()
            pacer = engine.pacer if engine is not None else None
            if (
                pacer is not None
                and pacer.adaptive is not None
                and pacer.adaptive.signal == "e2e_p99"
            ):
                self._e2e_feed.append(pacer)
            else:
                self._e2e_feed.append(None)

    def run(self) -> ServingReport:
        self._resolve_e2e_feed()
        if self._replication_armed():
            return self._run_replicated()
        if self.inval_stats is not None:
            # Namespace bumps change a tenant's key prefix mid-run; the
            # fast path pre-generates fully-prefixed key bytes, so an
            # armed plan takes the legacy loop.
            return self._run_legacy()
        if self.config.fast_path and not any(
            shard.stack.cache.store.tracer.enabled
            for shard in self.cluster.shards
        ):
            return self._run_fast()
        return self._run_legacy()

    def _run_legacy(self) -> ServingReport:
        """Reference loop: one heap event per arrival, ops drawn lazily."""
        for index, tenant in enumerate(self.tenants):
            if tenant.budget > 0:
                self._push(tenant.arrivals.next_arrival_ns(0), _ARRIVAL, index)
        if self.inval_stats is not None:
            for bump_index, bump in enumerate(self.invalidations.bumps):
                self._push(bump.at_ns, _INVALIDATE, bump_index)
        while self._heap:
            time_ns, _seq, kind, index = heapq.heappop(self._heap)
            if kind == _ARRIVAL:
                self._on_arrival(time_ns, index)
            elif kind == _INVALIDATE:
                self._on_invalidate(time_ns, index)
            else:
                self._on_done(time_ns, self.cluster.shards[index])
        return self._report()

    def _run_fast(self) -> ServingReport:
        """Array-driven loop; bit-identical to :meth:`_run_legacy`.

        Every RNG draw the legacy loop makes per event is pre-drawn here
        in bulk per stream (streams are independent generators, so
        draining one early cannot perturb another), and the event heap
        becomes a descending run-list: with one pending arrival per
        tenant plus one completion per busy shard in flight, ``insort``
        into a handful of tuples beats heap sifting.  Event ``seq``
        numbers are assigned at the same points in the same order as the
        legacy loop, so ties dequeue identically.
        """
        tenants = self.tenants
        cluster = self.cluster
        shards = cluster.shards
        max_depth = self.config.max_queue_depth
        gc_aware = cluster.routing.policy == "gc_aware"
        diversion_active = self._diversion_active
        e2e_feed = self._e2e_feed
        route_from_home = cluster.route_from_home
        shard_for = cluster.shard_for

        # Per-tenant pre-generated streams: arrival times, op kinds, op
        # key indices, and fully-prefixed key bytes (memoized — Zipf
        # reuse means most arrivals hit the same few hundred keys).
        arrival_times: List[List[int]] = []
        op_kinds: List[List[int]] = []
        op_key_indices: List[List[int]] = []
        op_keys: List[List[bytes]] = []
        for tenant in tenants:
            budget = tenant.budget
            arrival_times.append(
                tenant.arrivals.pregenerate(budget) if budget > 0 else []
            )
            kinds, key_indices = tenant.driver.next_ops(budget)
            op_kinds.append(kinds)
            op_key_indices.append(key_indices)
            prefix = tenant.key_prefix
            key_bytes = tenant.driver.key_bytes
            key_cache: Dict[int, bytes] = {}
            keys: List[bytes] = []
            for key_index in key_indices:
                key = key_cache.get(key_index)
                if key is None:
                    key = prefix + key_bytes(key_index)
                    key_cache[key_index] = key
                keys.append(key)
            op_keys.append(keys)

        scheduler = EventScheduler()
        events = scheduler.events
        seq = 0
        for index, tenant in enumerate(tenants):
            if tenant.budget > 0:
                seq += 1
                events.append((-arrival_times[index][0], -seq, _ARRIVAL, index))
        events.sort()
        cursors = [0] * len(tenants)
        end_ns = 0
        last_arrival_ns = 0

        while events:
            neg_time, _neg_seq, ev_kind, index = events.pop()
            now_ns = -neg_time
            serve_shard = None
            if ev_kind == _ARRIVAL:
                tenant = tenants[index]
                last_arrival_ns = now_ns
                cursor = cursors[index]
                cursors[index] = cursor + 1
                tenant.issued = cursor + 1
                next_cursor = cursor + 1
                if next_cursor < tenant.budget:
                    seq += 1
                    insort(
                        events,
                        (-arrival_times[index][next_cursor], -seq, _ARRIVAL, index),
                    )
                slo = tenant.slo
                slo.offered += 1
                key = op_keys[index][cursor]
                kind = op_kinds[index][cursor]
                bucket = tenant.bucket
                if bucket is not None:
                    # Inlined TokenBucket.try_take (same float order).
                    if now_ns > bucket._last_ns:
                        refill = (
                            (now_ns - bucket._last_ns) / SEC * bucket.rate_per_sec
                        )
                        tokens = bucket._tokens + refill
                        burst = bucket.burst
                        bucket._tokens = burst if tokens > burst else tokens
                        bucket._last_ns = now_ns
                    if bucket._tokens >= 1.0:
                        bucket._tokens -= 1.0
                        bucket.accepted += 1
                    else:
                        bucket.rejected += 1
                        slo.shed_rate_limited += 1
                        continue
                if gc_aware and kind != KIND_GET:
                    shard, rerouted_from = route_from_home(key, shard_for(key))
                    if rerouted_from is not None:
                        slo.rerouted += 1
                else:
                    shard = shard_for(key)
                queue = shard.queue
                if len(queue) >= max_depth:
                    slo.shed_queue_full += 1
                    shard.shed_queue_full += 1
                    continue
                queue.append((now_ns, index, cursor))
                if not shard.busy:
                    serve_shard = shard
            else:
                shard = shards[index]
                shard.busy = False
                if shard.queue:
                    serve_shard = shard
            if serve_shard is not None:
                shard = serve_shard
                arrival_ns, tenant_index, cursor = shard.queue.popleft()
                tenant = tenants[tenant_index]
                shard.busy = True
                clock = shard.stack.clock
                local_ns = shard.epoch_ns + now_ns
                if local_ns > clock.now:
                    clock.now = local_ns
                start_ns = clock.now
                kind = op_kinds[tenant_index][cursor]
                if diversion_active and kind == KIND_GET:
                    hit = self._apply_get_with_diversion(
                        shard,
                        tenant,
                        op_key_indices[tenant_index][cursor],
                        op_keys[tenant_index][cursor],
                    )
                else:
                    hit = tenant.driver.apply_kind(
                        shard.stack.cache,
                        kind,
                        op_key_indices[tenant_index][cursor],
                        op_keys[tenant_index][cursor],
                    )
                shard.served += 1
                shard.busy_ns += clock.now - start_ns
                done_ns = clock.now - shard.epoch_ns
                slo = tenant.slo
                slo.completed += 1
                latency = done_ns - arrival_ns
                recorder = slo.latency
                recorder._samples.append(latency)
                recorder._sorted = None
                pacer = e2e_feed[shard.index]
                if pacer is not None:
                    pacer.external.record(latency)
                if latency <= slo.slo_latency_ns:
                    slo.within_slo += 1
                if kind == KIND_GET:
                    slo.gets += 1
                    if hit:
                        slo.get_hits += 1
                if done_ns > end_ns:
                    end_ns = done_ns
                seq += 1
                insort(events, (-done_ns, -seq, _DONE, shard.index))

        scheduler.seq = seq
        self._end_ns = end_ns
        self._last_arrival_ns = last_arrival_ns
        return self._report()

    def _on_arrival(self, now_ns: int, tenant_index: int) -> None:
        tenant = self.tenants[tenant_index]
        self._last_arrival_ns = now_ns
        op = tenant.next_op()
        if tenant.issued < tenant.budget:
            self._push(
                tenant.arrivals.next_arrival_ns(now_ns), _ARRIVAL, tenant_index
            )
        tenant.slo.record_offered()
        key = tenant.key_for(op)
        shard = self.cluster.shard_for(key)
        tracer = shard.stack.cache.store.tracer
        if tenant.bucket is not None and not tenant.bucket.try_take(now_ns):
            tenant.slo.record_shed("rate_limited")
            tracer.emit_event("serve.qos", "shed_rate_limit", offset=shard.index)
            return
        # Rate-limit-admitted requests may be steered around reclamation
        # pressure (writes only; reads always follow the ring).
        shard, rerouted_from = self.cluster.route_for(key, op.kind != "get")
        if rerouted_from is not None:
            tenant.slo.record_rerouted()
            tracer = shard.stack.cache.store.tracer
            tracer.emit_event(
                "serve.route",
                "reroute",
                offset=shard.index,
                zone=rerouted_from.index,
            )
        if len(shard.queue) >= self.config.max_queue_depth:
            tenant.slo.record_shed("queue_full")
            shard.shed_queue_full += 1
            tracer.emit_event("serve.qos", "shed_queue_full", offset=shard.index)
            return
        shard.queue.append((now_ns, tenant_index, op))
        if not shard.busy:
            self._start_service(now_ns, shard)

    def _start_service(self, now_ns: int, shard: Shard) -> None:
        arrival_ns, tenant_index, op = shard.queue.popleft()
        tenant = self.tenants[tenant_index]
        shard.busy = True
        # The shard's device clock catches up to the fleet's event time
        # (translated onto the shard's own epoch — stack construction cost
        # is not serving time): idle gaps between arrivals really are idle,
        # then the op runs at full simulated cost.
        shard.clock.advance_to(shard.to_local(now_ns))
        start_ns = shard.clock.now
        tracer = shard.stack.cache.store.tracer
        with tracer.span("serve", op.kind, offset=shard.index):
            if self._diversion_active and op.kind == "get":
                hit = self._apply_get_with_diversion(
                    shard,
                    tenant,
                    op.key_index,
                    tenant.key_prefix + tenant.driver.key_bytes(op.key_index),
                )
            else:
                hit = tenant.driver.apply_op(
                    shard.stack.cache, op, key_prefix=tenant.key_prefix
                )
        shard.served += 1
        shard.busy_ns += shard.clock.now - start_ns
        done_ns = shard.to_fleet(shard.clock.now)
        tenant.slo.record_completion(
            done_ns - arrival_ns, is_get=(op.kind == "get"), hit=hit
        )
        pacer = self._e2e_feed[shard.index]
        if pacer is not None:
            pacer.external.record(done_ns - arrival_ns)
        if self.inval_stats is not None and op.kind == "get":
            self.inval_stats.note_lookup(done_ns, hit, done_ns - arrival_ns)
        self._end_ns = max(self._end_ns, done_ns)
        self._push(done_ns, _DONE, shard.index)

    def _on_done(self, now_ns: int, shard: Shard) -> None:
        shard.busy = False
        if shard.queue:
            self._start_service(now_ns, shard)

    # --- diversion journal ---------------------------------------------------

    def _apply_get_with_diversion(
        self, home: Shard, tenant: Tenant, key_index: int, key: bytes
    ) -> bool:
        """A get that consults the diversion journal before declaring a
        miss: a home miss falls through to the journaled diverted shard,
        and a recovered value is read-repaired into the home shard (the
        entry expires either way).  Draw-for-draw identical to
        ``apply_kind`` when the journal has no entry for the key."""
        cache = home.stack.cache
        value = cache.get(key)
        if value is not None:
            return True
        repaired = self._consult_diversion(home, key)
        if repaired is not None:
            cache.set(key, repaired)  # read-repair into the home shard
            cache.store.tracer.emit_event(
                "serve.divert", "recover", offset=home.index
            )
            return True
        tenant.driver.fill_on_miss(cache, key_index, key)
        return False

    def _consult_diversion(self, home: Shard, key: bytes) -> Optional[bytes]:
        """Fetch a home-missed key from its journaled diverted shard.

        The entry is consumed: on a hit the caller read-repairs the
        value home (so the journal is no longer needed), on a miss the
        diverted copy was evicted and the entry is stale.
        """
        cluster = self.cluster
        diverted = cluster.diversions.pop(key, None)
        if diverted is None or diverted is home:
            return None
        value = diverted.stack.cache.get(key)
        if value is None:
            cluster.diversions_stale += 1
            return None
        cluster.diversions_recovered += 1
        return value

    # --- invalidation -------------------------------------------------------

    def _on_invalidate(self, now_ns: int, bump_index: int) -> None:
        """Fire one scheduled namespace bump across the fleet.

        The tenant's generation advances (subsequent requests carry the
        new prefix) and every shard's cache learns the new generation so
        old-generation reads are refused wherever the index still holds
        them.  A bump is control-plane metadata, not a data write: for
        shards that cannot take it now (declared DOWN, or dead with the
        failure not yet declared) it is journaled as a hint and replayed
        on recovery, so no shard ever resurrects a pre-bump generation.
        """
        bump = self.invalidations.bumps[bump_index]
        tenant = next(
            t for t in self.tenants if t.config.name == bump.tenant
        )
        generation = tenant.invalidate()
        self.inval_stats.note_bump(now_ns)
        replicated = self._fleet is not None
        for shard in self.cluster.shards:
            if replicated and (shard.health == HEALTH_DOWN or not shard.alive):
                shard.hint_journal.append(
                    _KIND_NSBUMP, tenant.namespace_id, b"%d" % generation
                )
                continue
            cache = shard.stack.cache
            cache.invalidate_namespace(tenant.namespace_id, generation)
            cache.store.tracer.emit_event(
                "serve.invalidate", "bump", offset=shard.index, zone=generation
            )

    # --- replicated loop ----------------------------------------------------

    def _run_replicated(self) -> ServingReport:
        """Failover-aware loop: R-way writes, fallback reads, hinted handoff.

        Derived from :meth:`_run_legacy` (one heap event per arrival, ops
        drawn lazily) plus three new event kinds: scripted shard kills,
        power-restore recoveries, and fixed-interval health probes.  The
        fast/legacy loops never enter here, so every pre-existing golden
        stays bit-identical; with R=1 and an empty plan this loop itself
        reproduces the legacy report (see tests/test_replication.py).
        """
        cluster = self.cluster
        plan = self.failover if self.failover is not None else FailoverPlan()
        for shard in cluster.shards:
            shard.replication_active = True
        first_kill = plan.first_kill_ns()
        # Steady-phase hit accounting skips the first half of the lead-in
        # so cold-start misses don't flatter the recovery comparison.
        self._fleet = FleetStats(warmup_ns=(first_kill // 2) if first_kill else 0)
        for index, tenant in enumerate(self.tenants):
            if tenant.budget > 0:
                self._push(tenant.arrivals.next_arrival_ns(0), _ARRIVAL, index)
        for kill_index, kill in enumerate(plan.kills):
            self._push(kill.at_ns, _KILL, kill_index)
        if self.inval_stats is not None:
            for bump_index, bump in enumerate(self.invalidations.bumps):
                self._push(bump.at_ns, _INVALIDATE, bump_index)
        shards = cluster.shards
        while self._heap:
            time_ns, _seq, kind, index = heapq.heappop(self._heap)
            if kind == _ARRIVAL:
                self._on_arrival_repl(time_ns, index)
            elif kind == _DONE:
                self._on_done_repl(time_ns, shards[index])
            elif kind == _KILL:
                self._on_kill(time_ns, plan.kills[index])
            elif kind == _RECOVER:
                self._on_recover(time_ns, shards[index])
            elif kind == _INVALIDATE:
                self._on_invalidate(time_ns, index)
            else:
                self._on_probe(time_ns)
        return self._report()

    def _phase(self) -> str:
        fleet = self._fleet
        if fleet.first_kill_ns is None:
            return PHASE_STEADY
        for shard in self.cluster.shards:
            if not shard.alive or shard.health != HEALTH_UP:
                return PHASE_STORM
        return PHASE_RECOVERED

    def _set_health(self, shard: Shard, state: str, now_ns: int) -> None:
        if shard.health == state:
            return
        shard.health = state
        shard.health_log.append((now_ns, state))
        shard.stack.cache.store.tracer.emit_event(
            "serve.health", state, offset=shard.index
        )
        if state == HEALTH_UP and self._fleet.first_kill_ns is not None:
            if all(
                s.alive and s.health == HEALTH_UP for s in self.cluster.shards
            ):
                self._fleet.note_all_up(now_ns)

    def _register_failure(self, shard: Shard, now_ns: int) -> None:
        repl = self.cluster.replication
        shard.failures += 1
        if (
            shard.health in (HEALTH_UP, HEALTH_RESYNCING)
            and shard.failures >= repl.suspect_after_failures
        ):
            self._set_health(shard, HEALTH_SUSPECT, now_ns)
        if (
            shard.health == HEALTH_SUSPECT
            and shard.failures >= repl.down_after_failures
        ):
            self._set_health(shard, HEALTH_DOWN, now_ns)

    def _fail_request(self, tenant: Tenant, shard: Shard, reason: str) -> None:
        tenant.slo.record_failed()
        self._fleet.note_failed(self._phase())
        shard.stack.cache.store.tracer.emit_event(
            "serve.qos", "failed_" + reason, offset=shard.index
        )

    def _pick_target(
        self, replicas: Tuple[Shard, ...], is_get: bool
    ) -> Optional[Shard]:
        """Declared-serviceable shard for a request, by *health* not truth.

        Reads stay on the primary while it is not declared DOWN, then
        fall back along the successor list; a RESYNCING shard is a last
        resort for reads (its hint replay may not have caught up).
        Writes prefer the primary (RESYNCING included — replayed hints
        queue FIFO ahead of new writes, so ordering holds) and fall back
        to the first successor not declared DOWN.
        """
        primary = replicas[0]
        if not is_get:
            if primary.health != HEALTH_DOWN:
                return primary
            for shard in replicas[1:]:
                if shard.health in (HEALTH_UP, HEALTH_SUSPECT):
                    return shard
            return None
        for shard in replicas:
            if shard.health in (HEALTH_UP, HEALTH_SUSPECT):
                return shard
        for shard in replicas:
            if shard.health == HEALTH_RESYNCING:
                return shard
        return None

    def _on_arrival_repl(self, now_ns: int, tenant_index: int) -> None:
        tenant = self.tenants[tenant_index]
        self._last_arrival_ns = now_ns
        op = tenant.next_op()
        if tenant.issued < tenant.budget:
            self._push(
                tenant.arrivals.next_arrival_ns(now_ns), _ARRIVAL, tenant_index
            )
        slo = tenant.slo
        slo.record_offered()
        key = tenant.key_for(op)
        replicas = self.cluster.replica_set(key)
        primary = replicas[0]
        tracer = primary.stack.cache.store.tracer
        if tenant.bucket is not None and not tenant.bucket.try_take(now_ns):
            slo.record_shed("rate_limited")
            tracer.emit_event("serve.qos", "shed_rate_limit", offset=primary.index)
            return
        kind_int = _KIND_INT[op.kind]
        target = self._pick_target(replicas, kind_int == KIND_GET)
        if target is None:
            self._fail_request(tenant, primary, "no_replica")
            return
        if not target.alive:
            # Routed to a shard whose death is not yet declared: the
            # request times out.  This window *is* detection latency.
            self._register_failure(target, now_ns)
            self._fail_request(tenant, target, "timeout")
            return
        if len(target.queue) >= self.config.max_queue_depth:
            slo.record_shed("queue_full")
            target.shed_queue_full += 1
            target.stack.cache.store.tracer.emit_event(
                "serve.qos", "shed_queue_full", offset=target.index
            )
            return
        target.queue.append(
            (_ITEM_FG, now_ns, tenant_index, kind_int, op.key_index, key)
        )
        if not target.busy:
            self._serve_next(now_ns, target)

    def _serve_next(self, now_ns: int, shard: Shard) -> None:
        """Put the shard's next queued item (foreground request, replica
        write, or hint replay) into service at full simulated cost."""
        item = shard.queue.popleft()
        shard.busy = True
        clock = shard.clock
        clock.advance_to(shard.to_local(now_ns))
        start_ns = clock.now
        cache = shard.stack.cache
        tracer = cache.store.tracer
        item_kind = item[0]
        if item_kind == _ITEM_FG:
            _, arrival_ns, tenant_index, kind_int, key_index, key = item
            tenant = self.tenants[tenant_index]
            with tracer.span("serve", KIND_NAMES[kind_int], offset=shard.index):
                hit, value = tenant.driver.apply_kind_value(
                    cache, kind_int, key_index, key
                )
            shard.served += 1
            done_ns = shard.to_fleet(clock.now)
            is_get = kind_int == KIND_GET
            tenant.slo.record_completion(
                done_ns - arrival_ns, is_get=is_get, hit=hit
            )
            pacer = self._e2e_feed[shard.index]
            if pacer is not None:
                pacer.external.record(done_ns - arrival_ns)
            self._fleet.note_completion(
                self._phase(), done_ns - arrival_ns, is_get, hit, done_ns
            )
            if self.inval_stats is not None and is_get:
                self.inval_stats.note_lookup(done_ns, hit, done_ns - arrival_ns)
            if is_get and shard is not self.cluster.replica_set(key)[0]:
                shard.fallback_served += 1
                self._fleet.fallback_reads += 1
            # Replication fan-out happens when the completion event
            # fires (at done_ns), so it cannot jump ahead of arrivals
            # landing between now and then.
            shard._done_action = ("fg", kind_int, key, hit, value)
        else:
            _, _arrival_ns, kind_int, key, value = item
            nbytes = len(value) if value is not None else 0
            op_name = "replicate" if item_kind == _ITEM_REPL else "handoff"
            with tracer.span("serve", op_name, offset=shard.index, length=nbytes):
                if kind_int == _KIND_NSBUMP:
                    # Replayed namespace bump: key is the tenant id,
                    # value the ASCII generation journaled at bump time.
                    cache.invalidate_namespace(key, int(value))
                    tracer.emit_event(
                        "serve.invalidate", "bump", offset=shard.index,
                        zone=int(value),
                    )
                elif kind_int == KIND_DELETE:
                    cache.delete(key)
                else:
                    cache.set(key, value)
            if item_kind == _ITEM_REPL:
                shard.repl_served += 1
                shard.repl_bytes += nbytes
                shard._done_action = None
            else:
                shard.handoff_served += 1
                shard.handoff_bytes += nbytes
                shard._done_action = ("hint",)
            done_ns = shard.to_fleet(clock.now)
        shard.busy_ns += clock.now - start_ns
        if done_ns > self._end_ns:
            self._end_ns = done_ns
        self._push(done_ns, _DONE, shard.index)

    def _on_done_repl(self, now_ns: int, shard: Shard) -> None:
        action = shard._done_action
        shard._done_action = None
        shard.busy = False
        if action is not None:
            if action[0] == "fg":
                if shard.alive:
                    self._fan_out(now_ns, shard, action[1], action[2], action[3], action[4])
            else:  # hint replay completed
                shard.hints_outstanding -= 1
                if (
                    shard.hints_outstanding <= 0
                    and shard.health == HEALTH_RESYNCING
                ):
                    self._set_health(shard, HEALTH_UP, now_ns)
        if not shard.alive:
            return
        if shard.queue and not shard.busy:
            self._serve_next(now_ns, shard)

    def _fan_out(
        self,
        now_ns: int,
        shard: Shard,
        kind_int: int,
        key: bytes,
        hit: bool,
        value: Optional[bytes],
    ) -> None:
        """Propagate a completed foreground op to the other replicas.

        Writes (sets, deletes, and set-on-miss fills — fills keep
        replicas warm, since healthy reads never leave the primary) fan
        out to every other replica-set member: queued as ``replicate``
        work on live ones, journaled as hints for DOWN ones.  A read
        served off a fallback replica repairs the DOWN primary via a
        (weaker) repair hint.
        """
        cluster = self.cluster
        repl = cluster.replication
        replicas = cluster.replica_set(key)
        primary = replicas[0]
        fleet = self._fleet
        if kind_int == KIND_GET:
            if hit:
                if (
                    shard is not primary
                    and repl.read_repair
                    and primary.health == HEALTH_DOWN
                ):
                    if primary.hint_journal.append_repair(KIND_SET, key, value):
                        fleet.read_repairs += 1
                return
            if value is None:
                return  # bare miss: nothing written anywhere
            write_kind = KIND_SET  # set-on-miss fill
        elif kind_int == KIND_SET:
            write_kind = KIND_SET
        else:
            write_kind = KIND_DELETE
            value = None
        if self.write_ledger is not None:
            self.write_ledger.setdefault(key, []).append((now_ns, value))
        max_depth = self.config.max_queue_depth
        for member in replicas:
            if member is shard:
                continue
            if member.health == HEALTH_DOWN:
                member.hint_journal.append(write_kind, key, value)
                continue
            if not member.alive:
                member.repl_dropped += 1
                self._register_failure(member, now_ns)
                continue
            if len(member.queue) >= max_depth:
                member.repl_dropped += 1
                continue
            member.queue.append((_ITEM_REPL, now_ns, write_kind, key, value))
            if not member.busy:
                self._serve_next(now_ns, member)

    def _on_kill(self, now_ns: int, kill: ShardKill) -> None:
        shard = self.cluster.shards[kill.shard]
        if not shard.alive:
            return  # overlapping kill on an already-dead shard
        self._kills_fired += 1
        self._fleet.note_kill(now_ns)
        shard.stack.cache.store.tracer.emit_event(
            "serve.fault", "power_cut", offset=shard.index
        )
        shard.alive = False
        # Queued work dies with the DRAM: foreground requests fail,
        # replica writes are lost (counted), buffered hint replays go
        # back to the journal for the next recovery.
        requeue = []
        for item in shard.queue:
            if item[0] == _ITEM_FG:
                self._fail_request(self.tenants[item[2]], shard, "power_cut")
            elif item[0] == _ITEM_REPL:
                shard.repl_dropped += 1
            else:
                requeue.append(item)
        shard.queue.clear()
        shard.hints_outstanding = 0
        shard._done_action = None  # in-flight op's fan-out dies too
        for item in requeue:
            shard.hint_journal.append(item[2], item[3], item[4])
        self._push(now_ns + kill.outage_ns, _RECOVER, shard.index)
        repl = self.cluster.replication
        if not self._probe_armed and repl.probe_interval_ns > 0:
            self._probe_armed = True
            self._push(now_ns + repl.probe_interval_ns, _PROBE, 0)

    def _on_recover(self, now_ns: int, shard: Shard) -> None:
        """Power back: run crash recovery (charged in simulated time),
        then replay hinted writes through the normal write path."""
        if shard.alive:
            return
        shard.alive = True
        shard.failures = 0
        clock = shard.clock
        clock.advance_to(shard.to_local(now_ns))
        cache = shard.stack.cache
        tracer = cache.store.tracer
        start_ns = clock.now
        with tracer.span("serve", "recover", offset=shard.index):
            recovered = HybridCache.crash_recover(
                clock,
                cache.store,
                cache.config,
                list(cache.seal_journal),
                admission=cache.admission,
            )
        shard.stack.cache = recovered
        shard.resync_ns += clock.now - start_ns
        recover_done = shard.to_fleet(clock.now)
        if recover_done > self._end_ns:
            self._end_ns = recover_done
        self._set_health(shard, HEALTH_RESYNCING, now_ns)
        hints = shard.hint_journal.drain()
        shard.hints_outstanding = len(hints)
        for kind_int, key, value in hints:
            shard.queue.append((_ITEM_HINT, now_ns, kind_int, key, value))
        if shard.hints_outstanding == 0:
            self._set_health(shard, HEALTH_UP, now_ns)
        elif not shard.busy:
            self._serve_next(now_ns, shard)

    def _on_probe(self, now_ns: int) -> None:
        """Fixed-interval health probe: notices dead shards that tenant
        traffic alone would leave undetected."""
        repl = self.cluster.replication
        for shard in self.cluster.shards:
            if not shard.alive and shard.health != HEALTH_DOWN:
                self._register_failure(shard, now_ns)
        if self._probes_needed():
            self._push(now_ns + repl.probe_interval_ns, _PROBE, 0)
        else:
            self._probe_armed = False

    def _probes_needed(self) -> bool:
        for tenant in self.tenants:
            if tenant.issued < tenant.budget:
                return True
        for shard in self.cluster.shards:
            if not shard.alive or shard.health != HEALTH_UP:
                return True
        return False

    def _fleet_row(self) -> Dict[str, object]:
        """Fleet-level failover summary (the ``fleet_*`` bench columns)."""
        fleet = self._fleet
        shards = self.cluster.shards
        offered = sum(t.slo.offered for t in self.tenants)
        rate_shed = sum(t.slo.shed_rate_limited for t in self.tenants)
        completed = sum(t.slo.completed for t in self.tenants)
        failed = sum(t.slo.failed_unavailable for t in self.tenants)
        # Availability over requests the fleet owed an answer: everything
        # offered minus rate-limit sheds (the client exceeded its
        # contract).  Queue-full sheds and failures count against it.
        eligible = offered - rate_shed
        availability = completed / eligible if eligible > 0 else 1.0
        journals = [s.hint_journal for s in shards if s.hint_journal is not None]
        return {
            "replicas": self.cluster.replication.replicas,
            "availability": availability,
            "failed": failed,
            "kills": self._kills_fired,
            "storm_p99_us": fleet.storm_latency.p99() / 1000,
            "hit_steady": fleet.hit_ratio(PHASE_STEADY),
            "hit_storm": fleet.hit_ratio(PHASE_STORM),
            "hit_recovered": fleet.hit_ratio(PHASE_RECOVERED),
            "recovery_ms": fleet.recovery_ms(),
            "repl_writes": sum(s.repl_served for s in shards),
            "repl_bytes": sum(s.repl_bytes for s in shards),
            "repl_dropped": sum(s.repl_dropped for s in shards),
            "handoff_writes": sum(s.handoff_served for s in shards),
            "handoff_bytes": sum(s.handoff_bytes for s in shards),
            "hints_buffered": sum(j.appended for j in journals),
            "hint_drops": sum(j.dropped for j in journals),
            "fallback_reads": fleet.fallback_reads,
            "read_repairs": fleet.read_repairs,
        }

    def _inval_row(self) -> Dict[str, object]:
        """Invalidation-storm summary (the ``inval_*``/``tenant_*`` bench
        columns).  The dead-byte counters read straight from each
        shard's liveness ledger, so they reconcile exactly with the
        ``serve.invalidate`` events and the reclaim tracer spans."""
        row: Dict[str, object] = dict(self.inval_stats.row())
        ledgers = [s.stack.cache.regions.ledger for s in self.cluster.shards]
        row["inval_dead_bytes"] = sum(
            ledger.dead_bytes.get("invalidated", 0) for ledger in ledgers
        )
        row["inval_dead_items"] = sum(
            ledger.dead_items.get("invalidated", 0) for ledger in ledgers
        )
        row["inval_dropped_regions"] = sum(
            ledger.dead_generation_regions for ledger in ledgers
        )
        row["inval_dead_first_evictions"] = sum(
            ledger.dead_first_evictions for ledger in ledgers
        )
        row["tenant_generations"] = sum(t.generation for t in self.tenants)
        row["tenant_versioned"] = sum(
            1 for t in self.tenants if t.config.versioned_keys
        )
        return row

    # --- reporting ----------------------------------------------------------

    def _report(self) -> ServingReport:
        # The measurement window must cover the last *arrival* too: a
        # tenant whose tail is entirely shed stops producing completions
        # while offered load keeps flowing, and normalizing goodput by
        # the last completion alone would inflate it.
        elapsed_s = max(self._end_ns, self._last_arrival_ns) / SEC
        tenant_rows = []
        for tenant in self.tenants:
            row = tenant.slo.row(elapsed_s)
            row["arrival"] = tenant.config.arrival
            row["offered_kops"] = tenant.config.rate_ops_per_sec / 1000
            tenant_rows.append(row)
        offered = sum(t.slo.offered for t in self.tenants)
        completed = sum(t.slo.completed for t in self.tenants)
        shed = sum(t.slo.shed for t in self.tenants)
        return ServingReport(
            tenant_rows=tenant_rows,
            shard_rows=self.cluster.rows(),
            sim_seconds=elapsed_s,
            offered=offered,
            completed=completed,
            shed=shed,
            fleet_row=self._fleet_row() if self._fleet is not None else None,
            inval_row=self._inval_row() if self.inval_stats is not None else None,
        )
