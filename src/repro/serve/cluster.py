"""Sharded cache cluster: N independent scheme stacks behind one ring.

Each shard is a complete :class:`~repro.bench.schemes.SchemeStack` — its
own device, translation stack, and :class:`HybridCache` — on its own
virtual clock, exactly as fleet machines own their SSDs.  Mixed fleets
are first-class: every shard names its scheme, so a cluster can run
Zone-Cache next to Block-Cache on matched NAND and the serving sweep can
compare them under identical tenant traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.bench.schemes import (
    ALL_SCHEME_NAMES,
    SchemeScale,
    SchemeStack,
    build_scheme,
    build_scheme_cached,
)
from repro.errors import ConfigError
from repro.serve.hashing import ConsistentHashRing
from repro.serve.replication import (
    HEALTH_UP,
    HintJournal,
    ReplicationConfig,
)
from repro.sim.clock import SimClock
from repro.units import MIB, MSEC


# Pressure bands in escalation order; the routing policy compares ranks.
PRESSURE_RANK: Dict[str, int] = {
    "idle": 0,
    "background": 1,
    "urgent": 2,
    "emergency": 3,
}

ROUTING_POLICIES = ("static", "gc_aware")


@dataclass(frozen=True)
class RoutingConfig:
    """How the cluster steers traffic around reclamation pressure.

    ``static`` is the PR 3 behavior: every request follows the
    consistent-hash ring, period.  ``gc_aware`` keeps reads on the ring
    (a diverted read would just miss) but re-routes a *write* whose home
    shard is at or above ``reroute_level`` to the ring successor with
    the *best pressure score* among those with strictly lower pressure,
    looking at most ``max_reroute_distance`` successors ahead — the
    bound that keeps key affinity: a bounded walk means a later read's
    home shard and the write's landing shard stay within a known ring
    neighborhood.

    The score orders candidates first by pressure rank, then by
    ``stall_weight * gc_stall_us_p99 - headroom_weight * free_units``
    (lower is better): between two equally-pressured successors the
    write prefers the one that has stalled foreground traffic least and
    has the most reclamation headroom left.  Exact ties resolve to the
    nearest successor on the ring.

    ``diversion_journal`` closes the read-side hole of gc_aware
    routing: a rerouted write is recorded (key → diverted shard) so a
    later read that misses at its home shard consults the journal
    before declaring a miss, fetches from the diverted shard, and
    read-repairs the value home.  Entries expire on read-repair, on a
    stale consult, or when a later write lands at the home shard.
    """

    policy: str = "static"
    max_reroute_distance: int = 2
    reroute_level: str = "urgent"
    stall_weight: float = 1.0
    headroom_weight: float = 1.0
    diversion_journal: bool = False

    def __post_init__(self) -> None:
        if self.stall_weight < 0 or self.headroom_weight < 0:
            raise ConfigError(
                "stall_weight and headroom_weight must be non-negative"
            )
        if self.diversion_journal and self.policy != "gc_aware":
            raise ConfigError(
                "diversion_journal requires the gc_aware routing policy "
                "(static routing never diverts a write)"
            )
        if self.policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.policy!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        if self.max_reroute_distance < 1:
            raise ConfigError(
                f"max_reroute_distance must be >= 1, "
                f"got {self.max_reroute_distance}"
            )
        if self.reroute_level not in PRESSURE_RANK:
            raise ConfigError(
                f"unknown reroute_level {self.reroute_level!r}; "
                f"expected one of {tuple(PRESSURE_RANK)}"
            )


@dataclass(frozen=True)
class ShardSpec:
    """Hardware + scheme shape of one shard."""

    scheme: str
    media_bytes: int
    cache_bytes: Optional[int] = None  # None → Zone-Cache caches it all
    file_media_bytes: Optional[int] = None
    cache_overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.scheme not in ALL_SCHEME_NAMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; expected one of {ALL_SCHEME_NAMES}"
            )
        if self.media_bytes <= 0:
            raise ConfigError("media_bytes must be positive")


class Shard:
    """One serving shard: a scheme stack plus its service-queue state.

    The shard is a serial server (one request in service at a time, as
    navy's per-region-buffer write path is): ``queue`` holds admitted
    requests waiting for service, ``busy`` marks an in-flight one.  The
    event loop in :mod:`repro.serve.server` owns the transitions.
    """

    def __init__(self, index: int, name: str, stack: SchemeStack) -> None:
        self.index = index
        self.name = name
        self.stack = stack
        # Building the stack costs simulated time (zone resets, formatting)
        # that varies per scheme; serving starts *after* that, so fleet
        # time 0 maps to this local clock value, not to local 0.
        self.epoch_ns = stack.clock.now
        # Item shape is loop-private: the legacy/fast loops queue
        # (arrival_ns, tenant_index, op-or-cursor); the replicated loop
        # queues its own foreground/replica/hint tuples.
        self.queue: Deque[tuple] = deque()
        self.busy = False
        self.served = 0
        self.shed_queue_full = 0
        self.busy_ns = 0
        # GC-aware routing accounting: writes this shard handed off
        # while under reclamation pressure / absorbed for a neighbor.
        self.rerouted_out = 0
        self.rerouted_in = 0
        # --- replication & failover state (repro.serve.replication) ---
        # `alive` is ground truth (the fault injector's view: power on or
        # off); `health` is the *declared* state routing acts on.  The
        # gap between them is detection latency, which the replicated
        # loop simulates instead of assuming away.
        self.alive = True
        self.health = HEALTH_UP
        self.health_log: List[Tuple[int, str]] = []
        self.failures = 0
        self.hint_journal: Optional[HintJournal] = None
        self.hints_outstanding = 0
        self.replication_active = False
        self.repl_served = 0
        self.repl_bytes = 0
        self.repl_dropped = 0
        self.handoff_served = 0
        self.handoff_bytes = 0
        self.fallback_served = 0
        self.resync_ns = 0
        # Deferred post-completion work (replication fan-out / hint
        # bookkeeping) the serving loop runs when the _DONE event fires.
        self._done_action: Optional[tuple] = None

    @property
    def clock(self) -> SimClock:
        return self.stack.clock

    def pressure(self) -> Dict[str, object]:
        """Live reclamation pressure (see SchemeStack.reclaim_pressure)."""
        return self.stack.reclaim_pressure()

    def pressure_rank(self) -> int:
        return PRESSURE_RANK[self.pressure()["level"]]

    def to_local(self, fleet_ns: int) -> int:
        return self.epoch_ns + fleet_ns

    def to_fleet(self, local_ns: int) -> int:
        return local_ns - self.epoch_ns

    def utilization(self) -> float:
        elapsed = self.clock.now - self.epoch_ns
        if elapsed <= 0:
            return 0.0
        return self.busy_ns / elapsed

    def row(self) -> Dict[str, object]:
        """Rectangular per-shard summary row."""
        cache = self.stack.cache
        waf = cache.waf()
        pressure = self.pressure()
        row: Dict[str, object] = {
            "shard": self.name,
            "scheme": self.stack.name,
            "served": self.served,
            "shed_queue_full": self.shed_queue_full,
            "queue_depth_end": len(self.queue),
            "util": self.utilization(),
            "hit_ratio": cache.stats.hit_ratio,
            "waf_app": waf.app,
            "waf_device": waf.device,
            "cache_mib": cache.config.flash_bytes / MIB,
            "rerouted_out": self.rerouted_out,
            "rerouted_in": self.rerouted_in,
            "gc_level_end": pressure["level"],
            "gc_free_units_end": pressure["free_units"],
        }
        if self.replication_active:
            # Extra columns only when the replicated loop ran, so the
            # PR 3–7 golden row shapes stay bit-identical at R=1.
            journal = self.hint_journal
            row.update(
                {
                    "health": self.health,
                    "failures": self.failures,
                    "repl_served": self.repl_served,
                    "repl_bytes": self.repl_bytes,
                    "repl_dropped": self.repl_dropped,
                    "handoff_served": self.handoff_served,
                    "handoff_bytes": self.handoff_bytes,
                    "hints_dropped": journal.dropped if journal else 0,
                    "fallback_served": self.fallback_served,
                    "resync_ms": self.resync_ns / MSEC,
                }
            )
        return row


class CacheCluster:
    """Shards + the consistent-hash ring that routes keys to them."""

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        scale: Optional[SchemeScale] = None,
        vnodes: int = 128,
        routing: Optional[RoutingConfig] = None,
        cache_stacks: bool = False,
        replication: Optional[ReplicationConfig] = None,
    ) -> None:
        if not specs:
            raise ConfigError("cluster needs at least one shard")
        self.scale = scale if scale is not None else SchemeScale()
        self.routing = routing if routing is not None else RoutingConfig()
        self.replication = (
            replication if replication is not None else ReplicationConfig()
        )
        if self.replication.replicas > len(specs):
            raise ConfigError(
                f"replicas ({self.replication.replicas}) cannot exceed the "
                f"number of shards ({len(specs)})"
            )
        if self.replication.replicas > 1 and self.routing.policy == "gc_aware":
            raise ConfigError(
                "replication (replicas > 1) cannot be combined with gc_aware "
                "routing: replica placement must stay ring-faithful so read "
                "fallback finds the copies"
            )
        self.shards: List[Shard] = []
        for index, spec in enumerate(specs):
            name = f"shard{index}"
            if cache_stacks:
                # Sweep loops rebuild identical clusters per cell; the
                # cached builder clones a pristine template instead of
                # re-simulating construction (notably File-Cache mkfs).
                stack = build_scheme_cached(
                    spec.scheme,
                    self.scale,
                    spec.media_bytes,
                    spec.cache_bytes,
                    file_media_bytes=spec.file_media_bytes,
                    **dict(spec.cache_overrides),
                )
            else:
                stack = build_scheme(
                    spec.scheme,
                    SimClock(),
                    self.scale,
                    spec.media_bytes,
                    spec.cache_bytes,
                    file_media_bytes=spec.file_media_bytes,
                    **dict(spec.cache_overrides),
                )
            self.shards.append(Shard(index, name, stack))
        self._by_name = {shard.name: shard for shard in self.shards}
        self.ring = ConsistentHashRing([s.name for s in self.shards], vnodes=vnodes)
        # Ring lookups are pure functions of the (immutable) ring, so
        # the serving loop memoizes them per key: the hot keyspace is
        # small and every arrival would otherwise re-hash.
        self._home_cache: Dict[bytes, Shard] = {}
        self._successor_cache: Dict[bytes, Tuple[Shard, ...]] = {}
        self._replica_cache: Dict[bytes, Tuple[Shard, ...]] = {}
        # Diversion journal (RoutingConfig.diversion_journal): last
        # shard a gc_aware write for a key was rerouted to, so reads can
        # recover it; empty and untouched when the feature is off.
        self.diversions: Dict[bytes, Shard] = {}
        self.diversions_recorded = 0
        self.diversions_recovered = 0
        self.diversions_stale = 0
        for shard in self.shards:
            shard.hint_journal = HintJournal(self.replication.hint_limit)
            if self.replication.replicas > 1:
                shard.replication_active = True

    @classmethod
    def homogeneous(
        cls,
        scheme: str,
        num_shards: int,
        media_bytes: int,
        cache_bytes: Optional[int] = None,
        file_media_bytes: Optional[int] = None,
        scale: Optional[SchemeScale] = None,
        cache_overrides: Tuple[Tuple[str, object], ...] = (),
        vnodes: int = 128,
        routing: Optional[RoutingConfig] = None,
        cache_stacks: bool = False,
        replication: Optional[ReplicationConfig] = None,
    ) -> "CacheCluster":
        """The common case: N identical shards of one scheme."""
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        spec = ShardSpec(
            scheme=scheme,
            media_bytes=media_bytes,
            cache_bytes=cache_bytes,
            file_media_bytes=file_media_bytes,
            cache_overrides=cache_overrides,
        )
        return cls(
            [spec] * num_shards,
            scale=scale,
            vnodes=vnodes,
            routing=routing,
            cache_stacks=cache_stacks,
            replication=replication,
        )

    def shard_for(self, key: bytes) -> Shard:
        shard = self._home_cache.get(key)
        if shard is None:
            shard = self._by_name[self.ring.node_for(key)]
            self._home_cache[key] = shard
        return shard

    def replica_set(self, key: bytes) -> Tuple[Shard, ...]:
        """The R distinct shards owning ``key``: primary first, then the
        R−1 ring successors replica writes fan out to (memoized; the
        ring is immutable)."""
        cached = self._replica_cache.get(key)
        if cached is None:
            names = self.ring.nodes_for(key, self.replication.replicas)
            cached = tuple(self._by_name[name] for name in names)
            self._replica_cache[key] = cached
        return cached

    def successors_for(self, key: bytes) -> Tuple[Shard, ...]:
        """The (memoized) reroute candidates after ``key``'s home shard."""
        cached = self._successor_cache.get(key)
        if cached is None:
            names = self.ring.nodes_for(key, 1 + self.routing.max_reroute_distance)
            cached = tuple(self._by_name[name] for name in names[1:])
            self._successor_cache[key] = cached
        return cached

    def route_for(self, key: bytes, is_write: bool) -> Tuple[Shard, Optional[Shard]]:
        """Serving shard for ``key``, plus the home shard when diverted.

        Returns ``(shard, None)`` for ring-faithful routing (always for
        reads and under the static policy).  Under ``gc_aware``, a write
        whose home shard is at/above ``reroute_level`` lands on the
        best-scoring ring successor (within ``max_reroute_distance``)
        with strictly lower pressure, returned as ``(successor, home)``;
        if every nearby successor is just as pressured the write stays
        home.
        """
        home = self.shard_for(key)
        if not is_write or self.routing.policy != "gc_aware":
            return home, None
        return self.route_from_home(key, home)

    def route_from_home(
        self, key: bytes, home: Shard
    ) -> Tuple[Shard, Optional[Shard]]:
        """gc_aware write routing with the home shard already resolved."""
        home_rank = home.pressure_rank()
        routing = self.routing
        if home_rank < PRESSURE_RANK[routing.reroute_level]:
            if routing.diversion_journal:
                # Home-shard rewrite: any journaled diversion is stale.
                self.diversions.pop(key, None)
            return home, None
        best: Optional[Shard] = None
        best_score: Optional[Tuple[int, float]] = None
        for shard in self.successors_for(key):
            rank = shard.pressure_rank()
            if rank >= home_rank:
                continue
            pressure = shard.pressure()
            score = (
                rank,
                routing.stall_weight * pressure["gc_stall_us_p99"]
                - routing.headroom_weight * max(0, pressure["free_units"]),
            )
            # Strict < keeps ties on the nearest successor: candidates
            # iterate in ring order, so an equal score never displaces
            # an earlier (closer) winner.
            if best_score is None or score < best_score:
                best = shard
                best_score = score
        if best is None:
            if routing.diversion_journal:
                self.diversions.pop(key, None)
            return home, None
        home.rerouted_out += 1
        best.rerouted_in += 1
        if routing.diversion_journal:
            self.diversions[key] = best
            self.diversions_recorded += 1
        return best, home

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def max_clock_ns(self) -> int:
        """Latest shard time in fleet terms (construction cost excluded)."""
        return max(shard.to_fleet(shard.clock.now) for shard in self.shards)

    def rows(self) -> List[Dict[str, object]]:
        return [shard.row() for shard in self.shards]

    def __repr__(self) -> str:
        schemes = {shard.stack.name for shard in self.shards}
        return f"CacheCluster(shards={len(self.shards)}, schemes={sorted(schemes)})"
