"""Open-loop arrival processes for the serving layer.

The closed-loop CacheBench driver issues the next request only after the
previous one completes, so it can never overload anything.  Production
traffic does not wait: requests arrive on their own schedule, queues
grow when the device falls behind, and tail latency explodes past the
saturation knee.  These processes model that schedule.

All of them draw inter-arrival gaps from one seeded
:class:`~repro.workloads.distributions.ExponentialSampler`, so the
diurnal and bursty variants are Poisson streams with a deterministic
time-varying rate — the standard thinning-free construction for a
simulation that only ever asks "when is the *next* arrival?".
"""

from __future__ import annotations

import abc
import math
from itertools import accumulate
from typing import List

from repro.errors import ConfigError
from repro.workloads.distributions import ExponentialSampler


class ArrivalProcess(abc.ABC):
    """Produces the next arrival timestamp given the current one."""

    @abc.abstractmethod
    def next_arrival_ns(self, now_ns: int) -> int:
        """Virtual time of the next arrival strictly after ``now_ns``."""

    def pregenerate(self, n: int) -> List[int]:
        """First ``n`` arrival timestamps of the chained stream.

        Bit-identical to ``t = next_arrival_ns(0)`` followed by
        ``t = next_arrival_ns(t)`` ``n - 1`` times — the recurrence the
        serving loop runs — but drawn in bulk.  The modulated processes
        override :meth:`rate_at`; the inverse transform here mirrors
        ``ExponentialSampler.sample_at`` exactly.
        """
        us = self._gaps.draw_uniforms(n)
        if not isinstance(us, list):
            us = us.tolist()  # C-speed unboxing; values are identical
        log = math.log
        if type(self).rate_at is ArrivalProcess.rate_at:
            # Constant rate: gaps are independent of elapsed time, so
            # they fall out of a listcomp (same per-element float op
            # order as the chained loop) and accumulate() chains them.
            rate = self.rate_ops_per_sec
            gaps = [max(1, int((-log(1.0 - u) / rate) * 1e9)) for u in us]
            return list(accumulate(gaps))
        rate_at = self.rate_at
        times: List[int] = []
        t = 0
        for u in us:
            t += max(1, int((-log(1.0 - u) / rate_at(t)) * 1e9))
            times.append(t)
        return times

    def rate_at(self, now_ns: int) -> float:
        """Instantaneous rate; constant for plain Poisson arrivals."""
        return self.rate_ops_per_sec


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate."""

    def __init__(self, rate_ops_per_sec: float, seed: int = 1) -> None:
        if rate_ops_per_sec <= 0:
            raise ConfigError(
                f"rate_ops_per_sec must be positive, got {rate_ops_per_sec}"
            )
        self.rate_ops_per_sec = rate_ops_per_sec
        self._gaps = ExponentialSampler(rate_ops_per_sec, seed)

    def next_arrival_ns(self, now_ns: int) -> int:
        return now_ns + self._gaps.sample()


class DiurnalArrivals(ArrivalProcess):
    """Poisson arrivals whose rate swings sinusoidally around a mean.

    ``amplitude`` in [0, 1) scales the swing: the instantaneous rate is
    ``base * (1 + amplitude * sin(2*pi*t/period))``, the compressed
    day/night cycle of a user-facing cache fleet.
    """

    def __init__(
        self,
        rate_ops_per_sec: float,
        amplitude: float = 0.5,
        period_s: float = 1.0,
        seed: int = 1,
    ) -> None:
        if rate_ops_per_sec <= 0:
            raise ConfigError(
                f"rate_ops_per_sec must be positive, got {rate_ops_per_sec}"
            )
        if not 0.0 <= amplitude < 1.0:
            raise ConfigError(f"amplitude must be in [0, 1), got {amplitude}")
        if period_s <= 0:
            raise ConfigError(f"period_s must be positive, got {period_s}")
        self.rate_ops_per_sec = rate_ops_per_sec
        self.amplitude = amplitude
        self.period_ns = int(period_s * 1e9)
        self._gaps = ExponentialSampler(rate_ops_per_sec, seed)

    def rate_at(self, now_ns: int) -> float:
        phase = 2.0 * math.pi * (now_ns % self.period_ns) / self.period_ns
        return self.rate_ops_per_sec * (1.0 + self.amplitude * math.sin(phase))

    def next_arrival_ns(self, now_ns: int) -> int:
        return now_ns + self._gaps.sample_at(self.rate_at(now_ns))


class BurstArrivals(ArrivalProcess):
    """On/off (interrupted Poisson) arrivals: bursts at a multiplied rate.

    During the on-phase the rate is ``base * burst_factor``; during the
    off-phase it drops so the *mean* over a full cycle equals ``base``
    (offered load comparisons against a plain Poisson tenant stay fair).
    The off-rate floor keeps the stream from stalling entirely.
    """

    def __init__(
        self,
        rate_ops_per_sec: float,
        burst_factor: float = 4.0,
        on_s: float = 0.02,
        off_s: float = 0.08,
        seed: int = 1,
    ) -> None:
        if rate_ops_per_sec <= 0:
            raise ConfigError(
                f"rate_ops_per_sec must be positive, got {rate_ops_per_sec}"
            )
        if burst_factor < 1.0:
            raise ConfigError(f"burst_factor must be >= 1, got {burst_factor}")
        if on_s <= 0 or off_s < 0:
            raise ConfigError("on_s must be positive and off_s non-negative")
        self.rate_ops_per_sec = rate_ops_per_sec
        self.burst_factor = burst_factor
        self.on_ns = int(on_s * 1e9)
        self.off_ns = int(off_s * 1e9)
        cycle = on_s + off_s
        # Solve on_rate*on + off_rate*off = base*cycle with the burst
        # multiplier applied to the on-phase.
        self.on_rate = rate_ops_per_sec * burst_factor
        if off_s > 0:
            off_rate = (rate_ops_per_sec * cycle - self.on_rate * on_s) / off_s
            self.off_rate = max(off_rate, rate_ops_per_sec * 0.01)
        else:
            self.off_rate = self.on_rate
        self._gaps = ExponentialSampler(rate_ops_per_sec, seed)

    def rate_at(self, now_ns: int) -> float:
        cycle_ns = self.on_ns + self.off_ns
        return self.on_rate if (now_ns % cycle_ns) < self.on_ns else self.off_rate

    def next_arrival_ns(self, now_ns: int) -> int:
        return now_ns + self._gaps.sample_at(self.rate_at(now_ns))


class FlashCrowdArrivals(ArrivalProcess):
    """A one-off flash crowd: the rate jumps and decays exponentially.

    Until ``at_s`` the stream is plain Poisson at the base rate; at
    ``at_s`` the rate jumps to ``base * peak_factor`` and relaxes back
    toward the base with time constant ``decay_s``.  This is the
    post-invalidation recovery shape: a namespace bump empties the
    working set, every reader misses at once, and the refill traffic
    decays as the cache rewarms.
    """

    def __init__(
        self,
        rate_ops_per_sec: float,
        peak_factor: float = 4.0,
        at_s: float = 0.05,
        decay_s: float = 0.05,
        seed: int = 1,
    ) -> None:
        if rate_ops_per_sec <= 0:
            raise ConfigError(
                f"rate_ops_per_sec must be positive, got {rate_ops_per_sec}"
            )
        if peak_factor < 1.0:
            raise ConfigError(f"peak_factor must be >= 1, got {peak_factor}")
        if at_s < 0 or decay_s <= 0:
            raise ConfigError("at_s must be non-negative and decay_s positive")
        self.rate_ops_per_sec = rate_ops_per_sec
        self.peak_factor = peak_factor
        self.at_ns = int(at_s * 1e9)
        self.decay_ns = int(decay_s * 1e9)
        self._gaps = ExponentialSampler(rate_ops_per_sec, seed)

    def rate_at(self, now_ns: int) -> float:
        if now_ns < self.at_ns:
            return self.rate_ops_per_sec
        boost = (self.peak_factor - 1.0) * math.exp(
            -(now_ns - self.at_ns) / self.decay_ns
        )
        return self.rate_ops_per_sec * (1.0 + boost)

    def next_arrival_ns(self, now_ns: int) -> int:
        return now_ns + self._gaps.sample_at(self.rate_at(now_ns))


class StormArrivals(ArrivalProcess):
    """A bounded storm window: the rate is multiplied during one interval.

    During ``[at_s, at_s + duration_s)`` the rate is ``base *
    storm_factor``; outside it the stream is plain Poisson at the base
    rate.  Pair with a delete-heavy op mix to model a delete storm — a
    tenant tearing down its keyspace in a burst.
    """

    def __init__(
        self,
        rate_ops_per_sec: float,
        storm_factor: float = 4.0,
        at_s: float = 0.05,
        duration_s: float = 0.02,
        seed: int = 1,
    ) -> None:
        if rate_ops_per_sec <= 0:
            raise ConfigError(
                f"rate_ops_per_sec must be positive, got {rate_ops_per_sec}"
            )
        if storm_factor < 1.0:
            raise ConfigError(f"storm_factor must be >= 1, got {storm_factor}")
        if at_s < 0 or duration_s <= 0:
            raise ConfigError("at_s must be non-negative and duration_s positive")
        self.rate_ops_per_sec = rate_ops_per_sec
        self.storm_factor = storm_factor
        self.at_ns = int(at_s * 1e9)
        self.end_ns = self.at_ns + int(duration_s * 1e9)
        self._gaps = ExponentialSampler(rate_ops_per_sec, seed)

    def rate_at(self, now_ns: int) -> float:
        if self.at_ns <= now_ns < self.end_ns:
            return self.rate_ops_per_sec * self.storm_factor
        return self.rate_ops_per_sec

    def next_arrival_ns(self, now_ns: int) -> int:
        return now_ns + self._gaps.sample_at(self.rate_at(now_ns))


ARRIVAL_KINDS = ("poisson", "diurnal", "burst", "flash_crowd", "storm")
