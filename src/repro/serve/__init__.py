"""`repro.serve` — sharded, multi-tenant cache serving with QoS.

The paper (and the seed reproduction) evaluates each scheme as a single
cache instance under a closed-loop driver.  This package adds the layer
a production fleet needs on top: a :class:`CacheCluster` sharding keys
across N scheme stacks via consistent hashing, open-loop tenants with
Poisson/diurnal/burst arrival processes, and a QoS layer — token-bucket
rate limits, bounded shard queues, and load shedding — so overload
produces rejected requests with bounded p99 instead of unbounded queue
growth.  Everything is discrete-event over the existing virtual clocks:
service times come from the full simulated device stack, so serving
queueing composes with NAND latency, GC interference, and faults.

Determinism contract: seeded RNGs only, CRC-based hashing only, one
event heap with a stable tiebreak — the same configs yield
byte-identical reports (locked by the serving golden test).
"""

from repro.serve.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    StormArrivals,
)
from repro.serve.cluster import (
    PRESSURE_RANK,
    ROUTING_POLICIES,
    CacheCluster,
    RoutingConfig,
    Shard,
    ShardSpec,
)
from repro.serve.hashing import ConsistentHashRing, hash32
from repro.serve.invalidation import (
    InvalidationPlan,
    InvalidationStats,
    TenantInvalidate,
)
from repro.serve.qos import SloTracker, TokenBucket
from repro.serve.replication import (
    HEALTH_DOWN,
    HEALTH_RESYNCING,
    HEALTH_STATES,
    HEALTH_SUSPECT,
    HEALTH_UP,
    FailoverPlan,
    FleetStats,
    HintJournal,
    ReplicationConfig,
    ShardKill,
)
from repro.serve.server import Server, ServerConfig, ServingReport
from repro.serve.tenant import Tenant, TenantConfig

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstArrivals",
    "CacheCluster",
    "ConsistentHashRing",
    "DiurnalArrivals",
    "FailoverPlan",
    "FleetStats",
    "HEALTH_DOWN",
    "HEALTH_RESYNCING",
    "HEALTH_STATES",
    "HEALTH_SUSPECT",
    "HEALTH_UP",
    "FlashCrowdArrivals",
    "HintJournal",
    "InvalidationPlan",
    "InvalidationStats",
    "PRESSURE_RANK",
    "PoissonArrivals",
    "ROUTING_POLICIES",
    "ReplicationConfig",
    "RoutingConfig",
    "Server",
    "ServerConfig",
    "ServingReport",
    "Shard",
    "ShardKill",
    "ShardSpec",
    "SloTracker",
    "StormArrivals",
    "Tenant",
    "TenantConfig",
    "TenantInvalidate",
    "TokenBucket",
    "hash32",
]
