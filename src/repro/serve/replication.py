"""Fleet replication & failover: survive shard loss while serving.

The fault injector (PR 2) can power-cut a whole shard; the ring (PR 3)
already computes R-way successor lists (`ConsistentHashRing.nodes_for`)
that nothing consumed.  This module closes that gap with the primitives
a replicated fleet needs:

* :class:`ReplicationConfig` — R-way successor replication on writes
  (primary + R−1 replicas in ring order), read fallback, read-repair,
  hinted handoff, and the failure-detection thresholds.
* Shard **health states** (``UP → SUSPECT → DOWN → RESYNCING → UP``):
  failed requests and probe timeouts move a shard from UP through
  SUSPECT to DOWN; power restoration runs ``crash_recover`` and enters
  RESYNCING while hinted writes replay; draining the hint queue returns
  it to UP.  The machine deliberately only *declares* state — routing
  reads it, the fault injector drives it — so detection latency (the
  window where a dead shard is still being sent requests) is simulated,
  not assumed away.
* :class:`HintJournal` — the bounded per-shard buffer of writes owed to
  a DOWN shard.  Hints replay through the normal write path at recovery
  so GC and zone-management costs are charged, exactly as a production
  handoff queue drains through the storage engine.
* :class:`ShardKill` / :class:`FailoverPlan` — the scripted fault
  schedule a serving run executes (kill shard *i* at *t*, restore power
  after the outage), mirroring the PR 2 ``FaultInjector`` power-cut
  shape at fleet scope.
* :class:`FleetStats` — phase-aware accounting (steady / storm /
  recovered) for availability, p99 during the storm, and the hit-ratio
  recovery slope the failover sweep reports as ``fleet_*`` columns.

Everything is deterministic: the kill schedule is explicit virtual
time, probes are fixed-interval events on the serving heap, and the
journals are FIFO — the same configs produce byte-identical reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.sim.stats import LatencyRecorder
from repro.units import MSEC

# Shard health states, in the order the state machine visits them.
HEALTH_UP = "up"
HEALTH_SUSPECT = "suspect"
HEALTH_DOWN = "down"
HEALTH_RESYNCING = "resyncing"

HEALTH_STATES = (HEALTH_UP, HEALTH_SUSPECT, HEALTH_DOWN, HEALTH_RESYNCING)

# Serving phases FleetStats buckets completions into.
PHASE_STEADY = "steady"
PHASE_STORM = "storm"
PHASE_RECOVERED = "recovered"


@dataclass(frozen=True)
class ReplicationConfig:
    """Fleet replication + failure-detection knobs.

    ``replicas`` counts the primary: 1 (the default) is the PR 3
    behavior — no replica writes, no fallback, every existing golden
    bit-identical.  With R > 1 each write lands on the primary and fans
    out to the next R−1 *distinct* ring successors; reads stay on the
    primary while it is healthy and fall back along the same successor
    list when it is not.

    Failure detection is counted in failures, not wall time, so it
    composes with virtual time: a shard is SUSPECT after
    ``suspect_after_failures`` consecutive failures and DOWN after
    ``down_after_failures``.  Probes (every ``probe_interval_ms``) poke
    dead shards so detection happens even when no tenant traffic is
    homed there.
    """

    replicas: int = 1
    read_repair: bool = True
    # Bounded hint journal per shard (entries).  Overflow drops the
    # oldest hint (counted) — a production handoff queue is finite too.
    hint_limit: int = 4096
    probe_interval_ms: float = 0.5
    suspect_after_failures: int = 1
    down_after_failures: int = 3
    # Record every acknowledged write (key -> value history) so tests
    # can assert no torn/stale reads after hint replay.  Off by default:
    # it is an oracle, not a serving feature.
    track_writes: bool = False

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if self.hint_limit < 1:
            raise ConfigError(f"hint_limit must be >= 1, got {self.hint_limit}")
        if self.probe_interval_ms <= 0:
            raise ConfigError(
                f"probe_interval_ms must be positive, got {self.probe_interval_ms}"
            )
        if self.suspect_after_failures < 1:
            raise ConfigError(
                "suspect_after_failures must be >= 1, "
                f"got {self.suspect_after_failures}"
            )
        if self.down_after_failures < self.suspect_after_failures:
            raise ConfigError(
                "down_after_failures must be >= suspect_after_failures, "
                f"got {self.down_after_failures} < {self.suspect_after_failures}"
            )

    @property
    def probe_interval_ns(self) -> int:
        return int(self.probe_interval_ms * MSEC)


@dataclass(frozen=True)
class ShardKill:
    """One scripted shard power cut: lights out at ``at_ns``, power back
    after ``outage_ns``.  DRAM and queued requests are lost; flash
    survives and ``crash_recover`` rebuilds from it."""

    at_ns: int
    shard: int
    outage_ns: int

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ConfigError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.shard < 0:
            raise ConfigError(f"shard must be >= 0, got {self.shard}")
        if self.outage_ns <= 0:
            raise ConfigError(f"outage_ns must be positive, got {self.outage_ns}")


@dataclass(frozen=True)
class FailoverPlan:
    """The fault schedule one serving run executes.

    An empty plan still arms the replicated serving loop (useful for
    equivalence tests); a ``None`` plan with R=1 keeps the fast/legacy
    loops untouched.
    """

    kills: Tuple[ShardKill, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(self.kills))

    def first_kill_ns(self) -> Optional[int]:
        if not self.kills:
            return None
        return min(kill.at_ns for kill in self.kills)

    @classmethod
    def random(
        cls,
        num_shards: int,
        duration_ns: int,
        kills: int = 1,
        seed: int = 0,
        window: Tuple[float, float] = (0.2, 0.6),
        outage_fraction: float = 0.15,
    ) -> "FailoverPlan":
        """Draw a kill schedule from the fault injector's RNG family.

        ``kills`` distinct shards are power-cut at times drawn uniformly
        from ``window`` (as fractions of ``duration_ns``), each staying
        dark for ``outage_fraction`` of the run.  Deterministic under
        ``seed``: the RNG stream is decorrelated the same way the fault
        injector's per-fault streams are, so plans never perturb — and
        are never perturbed by — workload or device draws.
        """
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if duration_ns <= 0:
            raise ConfigError(f"duration_ns must be positive, got {duration_ns}")
        if not 0 < kills <= num_shards:
            raise ConfigError(
                f"kills must be in [1, {num_shards}], got {kills}"
            )
        lo, hi = window
        if not 0.0 <= lo < hi <= 1.0:
            raise ConfigError(f"window must satisfy 0 <= lo < hi <= 1, got {window}")
        if not 0.0 < outage_fraction < 1.0:
            raise ConfigError(
                f"outage_fraction must be in (0, 1), got {outage_fraction}"
            )
        rng = make_rng(seed, "fault.failover.plan")
        pool = list(range(num_shards))
        outage_ns = max(1, int(duration_ns * outage_fraction))
        drawn = []
        for _ in range(kills):
            shard = pool.pop(rng.randrange(len(pool)))
            at_ns = int(duration_ns * (lo + (hi - lo) * rng.random()))
            drawn.append(ShardKill(at_ns=at_ns, shard=shard, outage_ns=outage_ns))
        drawn.sort(key=lambda kill: (kill.at_ns, kill.shard))
        return cls(kills=tuple(drawn))


class HintJournal:
    """Bounded FIFO of writes owed to a DOWN shard.

    Each entry is ``(kind, key, value)`` with ``kind`` a cachebench
    ``KIND_*`` int (value ``None`` for deletes).  The bound models a
    finite handoff queue: overflow drops the *oldest* hint (the one a
    later hint for the same key most likely supersedes) and counts the
    drop, so the sweep can report hint-journal pressure honestly.

    Read-repair hints are weaker than write hints — they carry a value
    observed on a fallback replica, not a new client write — so
    :meth:`append_repair` refuses keys that already hold a write hint:
    replaying an old repaired value *after* a newer hinted write would
    resurrect stale data.
    """

    __slots__ = ("limit", "appended", "dropped", "bytes", "_entries", "_written_keys")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigError(f"hint journal limit must be >= 1, got {limit}")
        self.limit = limit
        self.appended = 0
        self.dropped = 0
        self.bytes = 0
        self._entries: Deque[Tuple[int, bytes, Optional[bytes]]] = deque()
        self._written_keys: Set[bytes] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, kind: int, key: bytes, value: Optional[bytes]) -> bool:
        """Journal a write hint; returns False when the bound forced a drop."""
        self.appended += 1
        self.bytes += len(value) if value is not None else 0
        self._entries.append((kind, key, value))
        self._written_keys.add(key)
        if len(self._entries) > self.limit:
            self._entries.popleft()
            self.dropped += 1
            return False
        return True

    def append_repair(self, kind: int, key: bytes, value: Optional[bytes]) -> bool:
        """Journal a read-repair hint unless a write hint supersedes it."""
        if key in self._written_keys:
            return False
        return self.append(kind, key, value)

    def drain(self) -> List[Tuple[int, bytes, Optional[bytes]]]:
        """Hand the buffered hints (FIFO order) to the replay path."""
        entries = list(self._entries)
        self._entries.clear()
        self._written_keys.clear()
        return entries


class FleetStats:
    """Phase-aware fleet accounting for one failover run.

    Completions are bucketed by the fleet's health *at completion time*:
    ``steady`` before the first kill, ``storm`` while any shard is dead
    or not yet back to UP, ``recovered`` once every shard is UP again.
    The steady-phase hit ratio ignores completions before ``warmup_ns``
    (half the lead-in to the first kill) so cold-start misses don't
    flatter the recovery comparison.
    """

    def __init__(self, warmup_ns: int = 0) -> None:
        self.warmup_ns = warmup_ns
        self.storm_latency = LatencyRecorder("fleet.storm")
        self.failed: Dict[str, int] = {
            PHASE_STEADY: 0,
            PHASE_STORM: 0,
            PHASE_RECOVERED: 0,
        }
        self._gets: Dict[str, int] = {
            PHASE_STEADY: 0,
            PHASE_STORM: 0,
            PHASE_RECOVERED: 0,
        }
        self._hits: Dict[str, int] = {
            PHASE_STEADY: 0,
            PHASE_STORM: 0,
            PHASE_RECOVERED: 0,
        }
        self.fallback_reads = 0
        self.read_repairs = 0
        self.first_kill_ns: Optional[int] = None
        self.recovered_at_ns: Optional[int] = None

    def note_completion(
        self, phase: str, latency_ns: int, is_get: bool, hit: bool, now_ns: int
    ) -> None:
        if phase == PHASE_STORM:
            self.storm_latency.record(latency_ns)
        if is_get and (phase != PHASE_STEADY or now_ns >= self.warmup_ns):
            self._gets[phase] += 1
            if hit:
                self._hits[phase] += 1

    def note_failed(self, phase: str) -> None:
        self.failed[phase] += 1

    def note_kill(self, now_ns: int) -> None:
        if self.first_kill_ns is None:
            self.first_kill_ns = now_ns

    def note_all_up(self, now_ns: int) -> None:
        # Overwrite on every return-to-all-UP so sequential storms leave
        # the *last* recovery timestamp.
        self.recovered_at_ns = now_ns

    def hit_ratio(self, phase: str) -> float:
        gets = self._gets[phase]
        if gets == 0:
            return 0.0
        return self._hits[phase] / gets

    def total_failed(self) -> int:
        return sum(self.failed.values())

    def recovery_ms(self) -> float:
        if self.first_kill_ns is None or self.recovered_at_ns is None:
            return 0.0
        return (self.recovered_at_ns - self.first_kill_ns) / MSEC
