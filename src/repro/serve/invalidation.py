"""Invalidation storms: scheduled namespace bumps and their aftermath.

A tenant invalidating its namespace is the cache-fleet event the
lifecycle layer exists for: one O(1) generation bump makes every key the
tenant ever wrote unreachable, and the bytes behind them become *dead
liveness* the storage layers must discover — either lazily at eviction
or eagerly through dead-first victim selection and §3.4 GC drop hints.

This module holds the serving-side pieces: :class:`TenantInvalidate`
(one scheduled bump), :class:`InvalidationPlan` (the run's bump
schedule), and :class:`InvalidationStats` (pre/post hit-ratio windows,
post-bump tail latency, and the hit-ratio recovery slope the sweep
reports per scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.stats import LatencyRecorder


@dataclass(frozen=True)
class TenantInvalidate:
    """One scheduled namespace bump: ``tenant`` invalidates at ``at_ns``."""

    at_ns: int
    tenant: str

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ConfigError(f"at_ns must be non-negative, got {self.at_ns}")
        if not self.tenant:
            raise ConfigError("tenant must be non-empty")


@dataclass(frozen=True)
class InvalidationPlan:
    """The run's bump schedule, sorted by time."""

    bumps: Tuple[TenantInvalidate, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.bumps, key=lambda b: b.at_ns))
        object.__setattr__(self, "bumps", ordered)

    def __bool__(self) -> bool:
        return bool(self.bumps)

    def first_at_ns(self) -> int:
        """Time of the first bump (callers check the plan is non-empty)."""
        return self.bumps[0].at_ns


class InvalidationStats:
    """Hit-ratio and latency accounting around the first bump.

    ``note_lookup`` feeds every foreground GET; before the first bump
    fires the samples land in the *pre* window, after it in the *post*
    window plus a time-bucketed series the recovery slope is fit on.
    The slope (hit-ratio points per second, via least squares over the
    bucket midpoints) is the headline recovery metric: how fast the
    cache rewarms after the storm.
    """

    def __init__(self, bucket_ns: int = 10_000_000) -> None:
        if bucket_ns <= 0:
            raise ConfigError(f"bucket_ns must be positive, got {bucket_ns}")
        self.bucket_ns = bucket_ns
        self.bumps_applied = 0
        self.first_bump_ns: int = -1
        self.pre_hits = 0
        self.pre_lookups = 0
        self.post_hits = 0
        self.post_lookups = 0
        self.post_latency = LatencyRecorder("post_invalidate")
        # bucket index -> (hits, lookups) since the first bump.
        self._buckets: Dict[int, List[int]] = {}

    def note_bump(self, now_ns: int) -> None:
        self.bumps_applied += 1
        if self.first_bump_ns < 0:
            self.first_bump_ns = now_ns

    def note_lookup(self, now_ns: int, hit: bool, latency_ns: int) -> None:
        if self.first_bump_ns < 0 or now_ns < self.first_bump_ns:
            self.pre_lookups += 1
            if hit:
                self.pre_hits += 1
            return
        self.post_lookups += 1
        if hit:
            self.post_hits += 1
        self.post_latency._samples.append(latency_ns)
        self.post_latency._sorted = None
        index = (now_ns - self.first_bump_ns) // self.bucket_ns
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = [0, 0]
            self._buckets[index] = bucket
        bucket[1] += 1
        if hit:
            bucket[0] += 1

    @property
    def pre_hit_ratio(self) -> float:
        return self.pre_hits / self.pre_lookups if self.pre_lookups else 0.0

    @property
    def post_hit_ratio(self) -> float:
        return self.post_hits / self.post_lookups if self.post_lookups else 0.0

    def recovery_slope_per_s(self, end_ns: Optional[int] = None) -> float:
        """Least-squares slope of post-bump hit ratio, in ratio points/s.

        Buckets with no lookups are skipped (an idle bucket says nothing
        about warmth).  Fewer than two populated buckets → 0.0.

        ``end_ns`` is the run's last observation time: a trailing bucket
        the run ended inside only covers ``[start, end_ns)``, so placing
        its point at the full-bucket midpoint would attribute its hit
        ratio to a later time than the samples span, dragging the fit.
        When given, the trailing bucket's x is the midpoint of the span
        actually covered; omitted, the full-bucket midpoints are used.
        """
        points = [
            ((index + 0.5) * self.bucket_ns / 1e9, bucket[0] / bucket[1])
            for index, bucket in sorted(self._buckets.items())
            if bucket[1] > 0
        ]
        if points and end_ns is not None and self.first_bump_ns >= 0:
            last_index = max(i for i, b in self._buckets.items() if b[1] > 0)
            start_ns = last_index * self.bucket_ns
            covered_ns = end_ns - self.first_bump_ns - start_ns
            if 0 < covered_ns < self.bucket_ns:
                points[-1] = (
                    (start_ns + covered_ns / 2) / 1e9,
                    points[-1][1],
                )
        if len(points) < 2:
            return 0.0
        n = len(points)
        mean_x = sum(x for x, _ in points) / n
        mean_y = sum(y for _, y in points) / n
        var_x = sum((x - mean_x) ** 2 for x, _ in points)
        if var_x == 0.0:
            return 0.0
        cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
        return cov / var_x

    def row(self) -> Dict[str, float]:
        """Bench columns (the ``inval_*`` family the sweep reports)."""
        return {
            "inval_bumps": self.bumps_applied,
            "inval_pre_hit_ratio": round(self.pre_hit_ratio, 6),
            "inval_post_hit_ratio": round(self.post_hit_ratio, 6),
            "inval_post_p99_us": round(self.post_latency.p99() / 1000, 3),
            "inval_recovery_slope_per_s": round(self.recovery_slope_per_s(), 6),
        }
