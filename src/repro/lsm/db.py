"""The database facade (RocksDB stand-in).

``Db`` wires WAL + memtable + levels + compaction over the HDD, with the
DRAM block cache and optional CacheLib secondary cache on the read path.
All I/O flows through the simulated devices, so ``get`` latencies
reflect where each block was found: memtable (ns), DRAM (ns), secondary
flash cache (µs), or HDD (ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import DbClosedError
from repro.flash.device import BlockDevice
from repro.lsm.block import DataBlock
from repro.lsm.block_cache import BlockCache, SecondaryCache
from repro.lsm.compaction import TOMBSTONE, CompactionConfig, Compactor
from repro.lsm.iterator import scan_range
from repro.lsm.manifest import Manifest
from repro.lsm.memtable import Memtable
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.table_space import TableSpace
from repro.lsm.version import Version
from repro.lsm.wal import WalFullError, WriteAheadLog
from repro.sim.clock import SimClock
from repro.sim.stats import LatencyRecorder, RatioStat
from repro.units import KIB, MIB


@dataclass(frozen=True)
class DbConfig:
    """RocksDB-ish tuning, scaled to the simulation (see DESIGN.md)."""

    memtable_bytes: int = 1 * MIB
    block_cache_bytes: int = 128 * KIB
    wal_bytes: int = 2 * MIB
    manifest_bytes: int = 256 * KIB
    num_levels: int = 4
    compaction: CompactionConfig = field(default_factory=CompactionConfig)
    cpu_get_ns: int = 2_000
    cpu_put_ns: int = 1_500


@dataclass
class DbStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    memtable_flushes: int = 0
    get_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("db.get")
    )
    found: RatioStat = field(default_factory=lambda: RatioStat("db.found"))


class Db:
    """LSM key-value store on one block device."""

    def __init__(
        self,
        clock: SimClock,
        device: BlockDevice,
        config: DbConfig = DbConfig(),
        secondary_cache: Optional[SecondaryCache] = None,
    ) -> None:
        self._clock = clock
        self.device = device
        self.config = config
        self.space = TableSpace(device)
        wal_offset = self.space.allocate(config.wal_bytes)
        self.wal = WriteAheadLog(device, wal_offset, config.wal_bytes)
        manifest_offset = self.space.allocate(config.manifest_bytes)
        self.manifest = Manifest(device, manifest_offset, config.manifest_bytes)
        self.memtable = Memtable(config.memtable_bytes)
        self.version = Version(config.num_levels)
        self.compactor = Compactor(self.version, self.space, config.compaction)
        self.block_cache = BlockCache(config.block_cache_bytes, secondary_cache)
        self.stats = DbStats()
        self._open = True

    # --- write path -----------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._clock.advance(self.config.cpu_put_ns)
        record = b"\x01" + len(key).to_bytes(2, "little") + key + value
        self._wal_append(record)
        self.memtable.put(key, b"\x01" + value)
        self.stats.puts += 1
        if self.memtable.is_full:
            self.flush_memtable()

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._clock.advance(self.config.cpu_put_ns)
        self._wal_append(b"\x00" + len(key).to_bytes(2, "little") + key)
        self.memtable.put(key, TOMBSTONE)
        self.stats.deletes += 1
        if self.memtable.is_full:
            self.flush_memtable()

    def _wal_append(self, record: bytes) -> None:
        try:
            self.wal.append(record)
        except WalFullError:
            # The log extent filled before the memtable did: flush (which
            # starts a new WAL epoch) and retry once.
            self.flush_memtable()
            self.wal.append(record)

    def flush_memtable(self) -> None:
        """Memtable → L0 table; triggers compaction as needed."""
        if len(self.memtable) == 0:
            return
        self.wal.sync()
        builder = SSTableBuilder(
            self.compactor.next_table_id(),
            self.space,
            self.config.compaction.block_size,
            self.config.compaction.bits_per_key,
        )
        for key, value in self.memtable.sorted_entries():
            builder.add(key, value)
        table = builder.finish()
        if table is not None:
            self.version.add_l0(table)
        self.memtable.clear()
        self.wal.reset()
        self.stats.memtable_flushes += 1
        self.compactor.maybe_compact()
        self._persist_manifest()

    # --- read path --------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        start_ns = self._clock.now
        self._clock.advance(self.config.cpu_get_ns)
        self.stats.gets += 1
        encoded = self.memtable.get(key)
        if encoded is None:
            encoded = self._search_tables(key)
        self.stats.get_latency.record(self._clock.now - start_ns)
        if encoded is None or encoded == TOMBSTONE:
            self.stats.found.record(False)
            return None
        self.stats.found.record(True)
        return encoded[1:]

    def _search_tables(self, key: bytes) -> Optional[bytes]:
        for table in self.version.candidates_for(key):
            if not table.may_contain(key):
                continue
            handle = table.block_for(key)
            if handle is None:
                continue
            cache_key = (table.table_id, handle.offset)
            blob = self.block_cache.get(cache_key)
            if blob is None:
                blob = table.read_block(handle)
                self.block_cache.put(cache_key, blob)
            value = DataBlock(blob).get(key)
            if value is not None:
                return value
        return None

    # --- iteration --------------------------------------------------------------------

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> "Iterator[Tuple[bytes, bytes]]":
        """Ordered (key, value) pairs in ``[start, end)`` across all levels."""
        self._check_open()
        sources = [iter(self.memtable.sorted_entries())]
        for table in self.version.levels[0]:
            sources.append(table.iter_entries())
        for level in range(1, self.version.num_levels):
            for table in self.version.levels[level]:
                sources.append(table.iter_entries())
        return scan_range(sources, start, end)

    def items(self) -> "Iterator[Tuple[bytes, bytes]]":
        """Full ordered scan."""
        return self.scan()

    # --- durability --------------------------------------------------------------------

    def _persist_manifest(self) -> None:
        levels = [
            [(t.table_id, t.extent_offset, t.extent_size) for t in level]
            for level in self.version.levels
        ]
        self.manifest.store(
            levels, self.compactor._next_table_id, self.wal.epoch
        )

    def sync_wal(self) -> None:
        """Force buffered WAL records to the device (fsync semantics).

        Without this, records still in the WAL's write buffer are lost on
        a crash — exactly like RocksDB without per-write WAL fsync.
        """
        self._check_open()
        self.wal.sync()

    def simulate_crash(self) -> None:
        """Power loss: all volatile state is gone, nothing is flushed.

        The device keeps the tables, manifest and WAL; use
        :meth:`reopen` on the same device to recover.
        """
        self.memtable.clear()
        self._open = False

    @classmethod
    def reopen(
        cls,
        clock: SimClock,
        device: BlockDevice,
        config: DbConfig = DbConfig(),
        secondary_cache: Optional[SecondaryCache] = None,
    ) -> "Db":
        """Recover a database from its manifest, table footers, and WAL."""
        db = cls(clock, device, config, secondary_cache)
        state = db.manifest.load()
        if state is None:
            # Crash before the first flush: no tables yet, recover the
            # initial WAL epoch alone.
            state = {
                "levels": [[] for _ in range(config.num_levels)],
                "next_table_id": db.compactor._next_table_id,
                "wal_epoch": 1,
            }
        for level_index, records in enumerate(state["levels"]):
            tables = []
            for _table_id, extent_offset, extent_size in records:
                db.space.reserve(extent_offset, extent_size)
                tables.append(SSTable.open(db.space, extent_offset, extent_size))
            if level_index == 0:
                db.version.levels[0] = tables  # stored newest-first
            else:
                db.version.install_level(level_index, tables)
        db.compactor._next_table_id = state["next_table_id"]
        # Replay the live WAL epoch into the memtable, then flush so the
        # recovered state is durable again.
        db.wal.epoch = state["wal_epoch"]
        replayed = 0
        for record in db.wal.replay(db.wal.epoch):
            kind = record[0]
            key_len = int.from_bytes(record[1:3], "little")
            key = record[3 : 3 + key_len]
            if kind == 1:
                db.memtable.put(key, b"\x01" + record[3 + key_len :])
            else:
                db.memtable.put(key, TOMBSTONE)
            replayed += 1
        if replayed:
            db.flush_memtable()
        else:
            db.wal.reset()
        return db

    # --- lifecycle -----------------------------------------------------------------------

    def close(self) -> None:
        """Flush outstanding state and refuse further operations."""
        if self._open:
            self.flush_memtable()
            self._open = False

    def level_stats(self) -> Dict[str, int]:
        return self.version.stats()

    def _check_open(self) -> None:
        if not self._open:
            raise DbClosedError("database is closed")

    def __repr__(self) -> str:
        return (
            f"Db(tables={self.version.table_count()}, "
            f"memtable={self.memtable.size_bytes}B, "
            f"gets={self.stats.gets}, puts={self.stats.puts})"
        )
