"""DRAM block cache with a secondary-cache spill/fill path.

This is the integration point the paper builds (§4.2): RocksDB's block
cache backed by CacheLib as a *secondary cache* [8, 10].  Blocks evicted
from DRAM are inserted into the secondary cache; DRAM misses consult the
secondary cache before paying for an HDD read.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Optional, Tuple

from repro.sim.stats import RatioStat

BlockKey = Tuple[int, int]  # (table_id, block offset within table)


class SecondaryCache(abc.ABC):
    """What the block cache needs from a secondary tier."""

    @abc.abstractmethod
    def lookup(self, key: BlockKey) -> Optional[bytes]: ...

    @abc.abstractmethod
    def insert(self, key: BlockKey, block: bytes) -> None: ...


class BlockCache:
    """Byte-budgeted LRU of decoded-block bytes with secondary spill."""

    def __init__(
        self,
        capacity_bytes: int,
        secondary: Optional[SecondaryCache] = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.secondary = secondary
        self._items: "OrderedDict[BlockKey, bytes]" = OrderedDict()
        self._used = 0
        self.dram_lookups = RatioStat("blockcache.dram")
        self.secondary_lookups = RatioStat("blockcache.secondary")

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: BlockKey) -> Optional[bytes]:
        """DRAM first, then the secondary cache (with DRAM re-population)."""
        block = self._items.get(key)
        self.dram_lookups.record(block is not None)
        if block is not None:
            self._items.move_to_end(key)
            return block
        if self.secondary is None:
            return None
        block = self.secondary.lookup(key)
        self.secondary_lookups.record(block is not None)
        if block is not None:
            self._insert_dram(key, block)
        return block

    def put(self, key: BlockKey, block: bytes) -> None:
        """Insert a block read from storage."""
        self._insert_dram(key, block)

    def _insert_dram(self, key: BlockKey, block: bytes) -> None:
        if len(block) > self.capacity_bytes:
            # Too big for DRAM entirely: spill straight to the secondary.
            if self.secondary is not None:
                self.secondary.insert(key, block)
            return
        old = self._items.pop(key, None)
        if old is not None:
            self._used -= len(old)
        self._items[key] = block
        self._used += len(block)
        while self._used > self.capacity_bytes:
            evicted_key, evicted_block = self._items.popitem(last=False)
            self._used -= len(evicted_block)
            # Spill on eviction — the CacheLib secondary-cache contract.
            if self.secondary is not None:
                self.secondary.insert(evicted_key, evicted_block)
