"""Extent allocator over a block device (the LSM's "filesystem").

RocksDB stores SSTables as files; this reproduction stores each table in
one contiguous extent on the simulated HDD, which keeps table reads and
compaction writes as sequential as a real filesystem would.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import NoSpaceError
from repro.flash.device import BlockDevice
from repro.units import align_up


class TableSpace:
    """First-fit contiguous extent allocator with free-list coalescing."""

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._free: List[Tuple[int, int]] = [(0, device.capacity_bytes)]
        self._allocated: Dict[int, int] = {}  # offset -> size

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def allocated_extents(self) -> int:
        return len(self._allocated)

    def allocate(self, size: int) -> int:
        """Reserve a contiguous extent; returns its device offset."""
        size = align_up(size, self.device.block_size)
        for i, (offset, extent_size) in enumerate(self._free):
            if extent_size >= size:
                remainder = extent_size - size
                if remainder:
                    self._free[i] = (offset + size, remainder)
                else:
                    del self._free[i]
                self._allocated[offset] = size
                return offset
        raise NoSpaceError(
            f"no contiguous extent of {size}B (free={self.free_bytes}B, "
            f"fragmented into {len(self._free)} pieces)"
        )

    def reserve(self, offset: int, size: int) -> None:
        """Mark a specific extent as allocated (used by crash recovery to
        rebuild the allocator from the manifest)."""
        size = align_up(size, self.device.block_size)
        for i, (free_offset, free_size) in enumerate(self._free):
            if free_offset <= offset and offset + size <= free_offset + free_size:
                pieces: List[Tuple[int, int]] = []
                if offset > free_offset:
                    pieces.append((free_offset, offset - free_offset))
                tail = (free_offset + free_size) - (offset + size)
                if tail:
                    pieces.append((offset + size, tail))
                self._free[i : i + 1] = pieces
                self._allocated[offset] = size
                return
        raise NoSpaceError(
            f"extent (offset={offset}, size={size}) is not entirely free"
        )

    def release(self, offset: int) -> None:
        """Free an extent, coalescing neighbours."""
        size = self._allocated.pop(offset, None)
        if size is None:
            raise KeyError(f"no allocated extent at offset {offset}")
        self._free.append((offset, size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for start, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((start, length))
        self._free = merged
