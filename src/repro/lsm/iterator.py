"""Merged range iteration over the LSM tree.

Provides RocksDB-style ordered scans: a k-way merge across the memtable
and every level, newest source winning on duplicate keys, tombstones
suppressing older values.  Used by ``Db.scan`` / ``Db.items``.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from repro.lsm.compaction import TOMBSTONE

# A source yields (key, encoded_value) in ascending key order.
Source = Iterator[Tuple[bytes, bytes]]


def merge_sources(sources: List[Source]) -> Iterator[Tuple[bytes, bytes]]:
    """K-way merge; ``sources[0]`` has the highest precedence.

    Yields *encoded* values (tombstones included) — the caller decides
    whether to surface or suppress deletions.
    """
    heap: List[Tuple[bytes, int, bytes, Source]] = []
    for priority, source in enumerate(sources):
        entry = next(source, None)
        if entry is not None:
            heapq.heappush(heap, (entry[0], priority, entry[1], source))
    previous_key: Optional[bytes] = None
    while heap:
        key, priority, value, source = heapq.heappop(heap)
        entry = next(source, None)
        if entry is not None:
            heapq.heappush(heap, (entry[0], priority, entry[1], source))
        if key == previous_key:
            continue  # an older duplicate; the newer copy already won
        previous_key = key
        yield key, value


def scan_range(
    sources: List[Source],
    start: Optional[bytes] = None,
    end: Optional[bytes] = None,
    include_tombstones: bool = False,
) -> Iterator[Tuple[bytes, bytes]]:
    """Ordered (key, value) pairs in ``[start, end)``, deletions elided."""
    for key, encoded in merge_sources(sources):
        if start is not None and key < start:
            continue
        if end is not None and key >= end:
            return
        if encoded == TOMBSTONE:
            if include_tombstones:
                yield key, b""
            continue
        yield key, encoded[1:]
