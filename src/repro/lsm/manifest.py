"""Persistent manifest: the LSM's durable version state.

RocksDB's MANIFEST records which tables live at which level; ours stores
the same in a fixed device extent, rewritten atomically (single extent
write) after every memtable flush and compaction.  Together with SSTable
footers and the epoch-tagged WAL, this makes :meth:`repro.lsm.Db.reopen`
a full crash-recovery path.
"""

from __future__ import annotations

import pickle
import struct
from typing import List, Optional, Tuple

from repro.errors import LsmError
from repro.flash.device import BlockDevice
from repro.units import align_up

MANIFEST_MAGIC = b"REPRO-MANIFEST1"
_HEADER = struct.Struct("<15sQ")  # magic, blob length

# (table_id, extent_offset, extent_size) per table, per level.
TableRecord = Tuple[int, int, int]


class Manifest:
    """Fixed-extent manifest writer/reader."""

    def __init__(self, device: BlockDevice, offset: int, size: int) -> None:
        if size <= 0 or size % device.block_size != 0:
            raise ValueError("manifest size must be a positive multiple of blocks")
        self.device = device
        self.offset = offset
        self.size = size
        self.writes = 0

    def store(
        self,
        levels: List[List[TableRecord]],
        next_table_id: int,
        wal_epoch: int,
    ) -> None:
        """Atomically persist the current version state."""
        blob = pickle.dumps(
            {
                "levels": levels,
                "next_table_id": next_table_id,
                "wal_epoch": wal_epoch,
            }
        )
        payload = _HEADER.pack(MANIFEST_MAGIC, len(blob)) + blob
        padded = payload.ljust(
            align_up(len(payload), self.device.block_size), b"\x00"
        )
        if len(padded) > self.size:
            raise LsmError(
                f"manifest of {len(padded)}B exceeds its extent of {self.size}B"
            )
        self.device.write(self.offset, padded)
        self.writes += 1

    def load(self) -> Optional[dict]:
        """Read the manifest; None if the extent holds no valid manifest."""
        header = self.device.read(self.offset, self.device.block_size).data
        magic, blob_len = _HEADER.unpack_from(header)
        if magic != MANIFEST_MAGIC:
            return None
        total = _HEADER.size + blob_len
        padded = align_up(total, self.device.block_size)
        if padded > self.size:
            raise LsmError("manifest header claims an impossible length")
        raw = self.device.read(self.offset, padded).data
        return pickle.loads(raw[_HEADER.size : _HEADER.size + blob_len])
