"""SSTable data blocks: sorted key/value runs with binary search.

Entries are length-prefixed and sorted; a block targets ~4 KiB (the
device page size) so a point read is one aligned device I/O — and one
secondary-cache object, matching how RocksDB's block cache interacts
with CacheLib in the paper's setup.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

_LEN = struct.Struct("<HI")  # key length (u16), value length (u32)


@dataclass(frozen=True)
class BlockHandle:
    """Location of a block within its table's extent."""

    offset: int
    size: int

    def to_bytes(self) -> bytes:
        return struct.pack("<QI", self.offset, self.size)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BlockHandle":
        offset, size = struct.unpack_from("<QI", blob)
        return cls(offset, size)


class DataBlockBuilder:
    """Accumulates sorted entries until the target block size."""

    def __init__(self, target_size: int = 4096) -> None:
        if target_size < 64:
            raise ValueError("target_size must be >= 64")
        self.target_size = target_size
        self._entries: List[Tuple[bytes, bytes]] = []
        self._size = 0

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def estimated_size(self) -> int:
        return self._size

    def would_overflow(self, key: bytes, value: bytes) -> bool:
        return (
            self._size + _LEN.size + len(key) + len(value) > self.target_size
            and self._entries
        )

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry; keys must arrive in strictly ascending order."""
        if self._entries and key <= self._entries[-1][0]:
            raise ValueError("keys must be added in strictly ascending order")
        self._entries.append((key, value))
        self._size += _LEN.size + len(key) + len(value)

    def first_key(self) -> Optional[bytes]:
        return self._entries[0][0] if self._entries else None

    def finish(self) -> bytes:
        """Serialize; the builder resets for the next block."""
        parts = []
        for key, value in self._entries:
            parts.append(_LEN.pack(len(key), len(value)))
            parts.append(key)
            parts.append(value)
        blob = b"".join(parts)
        self._entries = []
        self._size = 0
        return blob


class DataBlock:
    """Parsed data block supporting binary-search point lookups."""

    def __init__(self, blob: bytes) -> None:
        self._keys: List[bytes] = []
        self._values: List[bytes] = []
        pos = 0
        while pos + _LEN.size <= len(blob):
            key_len, value_len = _LEN.unpack_from(blob, pos)
            pos += _LEN.size
            if key_len == 0 and value_len == 0:
                break  # zero padding reached
            key = blob[pos : pos + key_len]
            pos += key_len
            value = blob[pos : pos + value_len]
            pos += value_len
            self._keys.append(key)
            self._values.append(value)

    def __len__(self) -> int:
        return len(self._keys)

    def get(self, key: bytes) -> Optional[bytes]:
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._values[idx]
        return None

    def entries(self) -> List[Tuple[bytes, bytes]]:
        return list(zip(self._keys, self._values))
