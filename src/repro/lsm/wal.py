"""Write-ahead log with epoch-tagged blocks and crash recovery.

Records are buffered and written in device-block units; every block
carries the WAL *epoch* (bumped on each memtable flush), so replay after
a crash reads exactly the records of the live epoch and ignores stale
blocks from earlier epochs that were never overwritten.

Block layout: ``[epoch u32][payload ...]``; records inside the payload
stream are ``[length u32][bytes]``, and a length of 0 means the rest of
the block is sync padding.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import LsmError
from repro.flash.device import BlockDevice

_EPOCH = struct.Struct("<I")
_LEN = struct.Struct("<I")


class WalFullError(LsmError):
    """The WAL extent cannot hold more records this epoch; flush first."""


class WriteAheadLog:
    """Append log over a fixed extent of a block device."""

    def __init__(self, device: BlockDevice, offset: int, size: int) -> None:
        if size <= 0 or size % device.block_size != 0:
            raise ValueError("WAL size must be a positive multiple of block size")
        if device.block_size <= _EPOCH.size + _LEN.size:
            raise ValueError("device blocks too small for WAL framing")
        self.device = device
        self.offset = offset
        self.size = size
        self.epoch = 1
        self._cursor = 0  # byte offset of the next block to write
        self._pending = bytearray()
        self.records_appended = 0
        self.bytes_flushed = 0

    @property
    def payload_per_block(self) -> int:
        return self.device.block_size - _EPOCH.size

    def append(self, record: bytes) -> None:
        """Buffer one record; full blocks are written immediately.

        Raises :class:`WalFullError` when the extent cannot absorb the
        record this epoch — the caller must flush the memtable (which
        resets the log) and retry.
        """
        framed = _LEN.pack(len(record)) + record
        needed_blocks = -(
            -(len(self._pending) + len(framed)) // self.payload_per_block
        )
        if self._cursor + needed_blocks * self.device.block_size > self.size:
            raise WalFullError(
                f"WAL extent of {self.size}B exhausted at epoch {self.epoch}"
            )
        self._pending.extend(framed)
        self.records_appended += 1
        while len(self._pending) >= self.payload_per_block:
            chunk = bytes(self._pending[: self.payload_per_block])
            del self._pending[: self.payload_per_block]
            self._write_block(chunk)

    def sync(self) -> None:
        """Flush any buffered tail (zero-padded to a whole block)."""
        if self._pending:
            chunk = bytes(self._pending).ljust(self.payload_per_block, b"\x00")
            self._pending.clear()
            self._write_block(chunk)

    def reset(self) -> None:
        """Log truncation after a successful memtable flush: new epoch."""
        self.epoch += 1
        self._cursor = 0
        self._pending.clear()

    def replay(self, epoch: int) -> Iterator[bytes]:
        """Yield the records of ``epoch`` from the device (crash recovery)."""
        payload = bytearray()
        position = 0
        while position + self.device.block_size <= self.size:
            block = self.device.read(
                self.offset + position, self.device.block_size
            ).data
            position += self.device.block_size
            (block_epoch,) = _EPOCH.unpack_from(block)
            if block_epoch != epoch:
                break
            payload.extend(block[_EPOCH.size :])
        cursor = 0
        while cursor + _LEN.size <= len(payload):
            (length,) = _LEN.unpack_from(payload, cursor)
            if length == 0:
                # Sync padding: skip to the next block boundary.
                block_pos = (cursor // self.payload_per_block + 1) * self.payload_per_block
                if block_pos <= cursor:
                    break
                cursor = block_pos
                continue
            cursor += _LEN.size
            if cursor + length > len(payload):
                break  # torn tail record: discarded, as a real WAL would
            yield bytes(payload[cursor : cursor + length])
            cursor += length

    def _write_block(self, payload: bytes) -> None:
        block = _EPOCH.pack(self.epoch) + payload
        self.device.write(self.offset + self._cursor, block)
        self._cursor += self.device.block_size
        self.bytes_flushed += self.device.block_size
