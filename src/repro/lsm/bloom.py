"""Bloom filter for SSTables (RocksDB's full-filter equivalent).

Without filters every point lookup would probe a data block in each
overlapping table; with ~10 bits/key the false-positive rate is <1%, so
a get usually touches exactly one data block — which is what makes the
secondary cache's hit ratio, not probe count, dominate read latency.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


class BloomFilter:
    """Double-hashing bloom filter over byte keys."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits < 8:
            raise ValueError("num_bits must be >= 8")
        if not 1 <= num_hashes <= 16:
            raise ValueError("num_hashes must be in [1, 16]")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray(-(-num_bits // 8))

    @classmethod
    def for_keys(cls, keys: Iterable[bytes], bits_per_key: int = 10) -> "BloomFilter":
        keys = list(keys)
        num_bits = max(64, len(keys) * bits_per_key)
        num_hashes = max(1, min(12, int(bits_per_key * 0.69)))
        bloom = cls(num_bits, num_hashes)
        for key in keys:
            bloom.add(key)
        return bloom

    def _base_hashes(self, key: bytes) -> tuple:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return h1, h2

    def add(self, key: bytes) -> None:
        h1, h2 = self._base_hashes(key)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def may_contain(self, key: bytes) -> bool:
        h1, h2 = self._base_hashes(key)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            if not self._bits[bit >> 3] >> (bit & 7) & 1:
                return False
        return True

    def to_bytes(self) -> bytes:
        header = self.num_bits.to_bytes(4, "little") + bytes([self.num_hashes])
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        num_bits = int.from_bytes(blob[:4], "little")
        num_hashes = blob[4]
        bloom = cls(num_bits, num_hashes)
        bloom._bits = bytearray(blob[5 : 5 + len(bloom._bits)])
        return bloom
