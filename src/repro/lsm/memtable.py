"""Memtable: the in-memory sorted write buffer."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class Memtable:
    """Hash-backed write buffer, sorted lazily at flush time.

    Point lookups are O(1); iteration (flush) sorts once.  Tombstones are
    stored like values, the flush keeps them so deletes shadow older
    levels.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1024:
            raise ValueError("capacity_bytes must be >= 1024")
        self.capacity_bytes = capacity_bytes
        self._items: Dict[bytes, bytes] = {}
        self._size = 0

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity_bytes

    def __len__(self) -> int:
        return len(self._items)

    def put(self, key: bytes, value: bytes) -> None:
        old = self._items.get(key)
        if old is not None:
            self._size -= len(key) + len(old)
        self._items[key] = value
        self._size += len(key) + len(value)

    def get(self, key: bytes) -> Optional[bytes]:
        return self._items.get(key)

    def sorted_entries(self) -> Iterator[Tuple[bytes, bytes]]:
        for key in sorted(self._items):
            yield key, self._items[key]

    def clear(self) -> None:
        self._items.clear()
        self._size = 0
