"""Level manifest: which tables live at which level.

L0 tables may overlap (newest first wins); L1+ levels hold sorted,
non-overlapping runs searched by binary search on the smallest keys.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.lsm.sstable import SSTable


class Version:
    """Mutable level state (single-writer, as in our single-threaded sim)."""

    def __init__(self, num_levels: int = 4) -> None:
        if num_levels < 2:
            raise ValueError("need at least 2 levels")
        self.levels: List[List[SSTable]] = [[] for _ in range(num_levels)]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def add_l0(self, table: SSTable) -> None:
        """Newest L0 table goes to the front (searched first)."""
        self.levels[0].insert(0, table)

    def install_level(self, level: int, tables: List[SSTable]) -> None:
        """Replace a level with a sorted, non-overlapping run."""
        ordered = sorted(tables, key=lambda t: t.smallest)
        for a, b in zip(ordered, ordered[1:]):
            if b.smallest <= a.largest:
                raise ValueError(
                    f"level {level} tables overlap: {a.table_id} and {b.table_id}"
                )
        self.levels[level] = ordered

    def candidates_for(self, key: bytes) -> List[SSTable]:
        """Tables that could hold ``key``, in search priority order."""
        result: List[SSTable] = []
        for table in self.levels[0]:
            if table.smallest <= key <= table.largest:
                result.append(table)
        for level in range(1, len(self.levels)):
            table = self._find_in_level(level, key)
            if table is not None:
                result.append(table)
        return result

    def _find_in_level(self, level: int, key: bytes) -> Optional[SSTable]:
        tables = self.levels[level]
        if not tables:
            return None
        idx = bisect.bisect_right([t.smallest for t in tables], key) - 1
        if idx < 0:
            return None
        table = tables[idx]
        return table if key <= table.largest else None

    def level_bytes(self, level: int) -> int:
        return sum(t.extent_size for t in self.levels[level])

    def table_count(self) -> int:
        return sum(len(level) for level in self.levels)

    def stats(self) -> Dict[str, int]:
        return {
            f"L{i}_tables": len(level) for i, level in enumerate(self.levels)
        }
