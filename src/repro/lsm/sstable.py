"""SSTables: immutable sorted tables stored in one device extent.

Layout inside the extent::

    [data blocks (padded)][meta blob (padded)][footer block]

The meta blob serializes the block index, bloom filter and key range;
the footer carries a magic, the meta blob's location, and the table id —
so a table can be fully re-opened from the device after a crash
(:meth:`SSTable.open`).  At runtime the index/bloom stay pinned in
memory, the equivalent of RocksDB's "index block caching enabled"
(§4.2).
"""

from __future__ import annotations

import bisect
import pickle
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import LsmError
from repro.lsm.block import BlockHandle, DataBlock, DataBlockBuilder
from repro.lsm.bloom import BloomFilter
from repro.lsm.table_space import TableSpace
from repro.units import align_up

FOOTER_MAGIC = b"REPRO-SST1"
_FOOTER = struct.Struct("<10sQQQI")  # magic, table_id, meta_offset, meta_len, data_size


@dataclass
class SSTable:
    """Reader handle for one immutable table."""

    table_id: int
    extent_offset: int
    extent_size: int
    index_keys: List[bytes]          # first key of each block
    index_handles: List[BlockHandle]  # offsets relative to extent start
    bloom: BloomFilter
    smallest: bytes
    largest: bytes
    num_entries: int
    space: TableSpace = field(repr=False)

    def may_contain(self, key: bytes) -> bool:
        if not self.smallest <= key <= self.largest:
            return False
        return self.bloom.may_contain(key)

    def block_for(self, key: bytes) -> Optional[BlockHandle]:
        """Handle of the single block that could hold ``key``."""
        idx = bisect.bisect_right(self.index_keys, key) - 1
        if idx < 0:
            return None
        return self.index_handles[idx]

    def read_block(self, handle: BlockHandle) -> bytes:
        """Read a data block from the device (aligned to device blocks)."""
        device = self.space.device
        start = self.extent_offset + handle.offset
        aligned_start = (start // device.block_size) * device.block_size
        end = align_up(start + handle.size, device.block_size)
        data = device.read(aligned_start, end - aligned_start).data
        skip = start - aligned_start
        return data[skip : skip + handle.size]

    def iter_entries(self) -> Iterator[Tuple[bytes, bytes]]:
        """Full scan in key order (used by compaction)."""
        for handle in self.index_handles:
            block = DataBlock(self.read_block(handle))
            yield from block.entries()

    def release(self) -> None:
        """Free the table's extent (after compaction supersedes it)."""
        self.space.release(self.extent_offset)

    @classmethod
    def open(cls, space: TableSpace, extent_offset: int, extent_size: int) -> "SSTable":
        """Re-open a table from its on-device footer (crash recovery)."""
        device = space.device
        footer_offset = extent_offset + extent_size - device.block_size
        footer_block = device.read(footer_offset, device.block_size).data
        magic, table_id, meta_offset, meta_len, _data_size = _FOOTER.unpack_from(
            footer_block
        )
        if magic != FOOTER_MAGIC:
            raise LsmError(
                f"no SSTable footer at extent offset {extent_offset} "
                f"(+{extent_size})"
            )
        meta_start = extent_offset + meta_offset
        aligned_start = (meta_start // device.block_size) * device.block_size
        aligned_end = align_up(meta_start + meta_len, device.block_size)
        raw = device.read(aligned_start, aligned_end - aligned_start).data
        skip = meta_start - aligned_start
        meta = pickle.loads(raw[skip : skip + meta_len])
        return cls(
            table_id=table_id,
            extent_offset=extent_offset,
            extent_size=extent_size,
            index_keys=meta["index_keys"],
            index_handles=[BlockHandle(*h) for h in meta["handles"]],
            bloom=BloomFilter.from_bytes(meta["bloom"]),
            smallest=meta["smallest"],
            largest=meta["largest"],
            num_entries=meta["num_entries"],
            space=space,
        )


class SSTableBuilder:
    """Builds one table from ascending (key, value) pairs."""

    def __init__(
        self, table_id: int, space: TableSpace, block_size: int = 4096,
        bits_per_key: int = 10,
    ) -> None:
        self.table_id = table_id
        self.space = space
        self.block_size = block_size
        self.bits_per_key = bits_per_key
        self._builder = DataBlockBuilder(block_size)
        self._blocks: List[bytes] = []
        self._index_keys: List[bytes] = []
        self._keys: List[bytes] = []
        self._smallest: Optional[bytes] = None
        self._largest: Optional[bytes] = None

    @property
    def num_entries(self) -> int:
        return len(self._keys)

    def add(self, key: bytes, value: bytes) -> None:
        if self._largest is not None and key <= self._largest:
            raise ValueError("keys must be added in strictly ascending order")
        if self._builder.would_overflow(key, value):
            self._seal_block()
        if self._builder.num_entries == 0:
            self._index_keys.append(key)
        self._builder.add(key, value)
        self._keys.append(key)
        if self._smallest is None:
            self._smallest = key
        self._largest = key

    def finish(self) -> Optional[SSTable]:
        """Write the table (data + meta + footer) to the device."""
        if self._builder.num_entries:
            self._seal_block()
        if not self._blocks:
            return None
        device = self.space.device
        handles: List[BlockHandle] = []
        offset = 0
        padded_blocks: List[bytes] = []
        for blob in self._blocks:
            handles.append(BlockHandle(offset, len(blob)))
            padded = blob.ljust(align_up(len(blob), device.block_size), b"\x00")
            padded_blocks.append(padded)
            offset += len(padded)
        data_payload = b"".join(padded_blocks)
        assert self._smallest is not None and self._largest is not None
        bloom = BloomFilter.for_keys(self._keys, self.bits_per_key)
        meta_blob = pickle.dumps(
            {
                "index_keys": self._index_keys,
                "handles": [(h.offset, h.size) for h in handles],
                "bloom": bloom.to_bytes(),
                "smallest": self._smallest,
                "largest": self._largest,
                "num_entries": len(self._keys),
            }
        )
        meta_offset = len(data_payload)
        meta_padded = meta_blob.ljust(
            align_up(len(meta_blob), device.block_size), b"\x00"
        )
        footer = _FOOTER.pack(
            FOOTER_MAGIC, self.table_id, meta_offset, len(meta_blob), len(data_payload)
        ).ljust(device.block_size, b"\x00")
        payload = data_payload + meta_padded + footer
        extent_offset = self.space.allocate(len(payload))
        device.write(extent_offset, payload)
        return SSTable(
            table_id=self.table_id,
            extent_offset=extent_offset,
            extent_size=len(payload),
            index_keys=self._index_keys,
            index_handles=handles,
            bloom=bloom,
            smallest=self._smallest,
            largest=self._largest,
            num_entries=len(self._keys),
            space=self.space,
        )

    def _seal_block(self) -> None:
        self._blocks.append(self._builder.finish())
