"""Leveled compaction.

L0 flushes stack up overlapping tables; when the trigger count is
reached they merge with the overlapping part of L1.  Deeper levels spill
into the next level when they exceed their size target (growing by a
multiplier per level, as in RocksDB's level compaction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.table_space import TableSpace
from repro.lsm.version import Version

TOMBSTONE = b"\x00"  # value-type prefix for deletes; puts use b"\x01"+value


@dataclass(frozen=True)
class CompactionConfig:
    l0_trigger: int = 4
    l1_target_bytes: int = 4 * 1024 * 1024
    level_multiplier: int = 8
    max_table_bytes: int = 512 * 1024
    block_size: int = 4096
    bits_per_key: int = 10


class Compactor:
    """Merges tables level by level; owns table-id allocation."""

    def __init__(
        self, version: Version, space: TableSpace, config: CompactionConfig
    ) -> None:
        self.version = version
        self.space = space
        self.config = config
        self._next_table_id = 1
        self.compactions_run = 0
        self.bytes_compacted = 0

    def next_table_id(self) -> int:
        table_id = self._next_table_id
        self._next_table_id += 1
        return table_id

    def level_target_bytes(self, level: int) -> int:
        if level < 1:
            raise ValueError("targets are defined for L1+")
        return self.config.l1_target_bytes * (
            self.config.level_multiplier ** (level - 1)
        )

    # --- triggers -------------------------------------------------------------------

    def maybe_compact(self) -> int:
        """Run compactions until no trigger fires; returns runs executed."""
        runs = 0
        while True:
            if len(self.version.levels[0]) >= self.config.l0_trigger:
                self._compact_l0()
                runs += 1
                continue
            leveled = self._pick_oversized_level()
            if leveled is not None:
                self._compact_level(leveled)
                runs += 1
                continue
            return runs

    def _pick_oversized_level(self) -> Optional[int]:
        for level in range(1, self.version.num_levels - 1):
            if self.version.level_bytes(level) > self.level_target_bytes(level):
                return level
        return None

    # --- merges -----------------------------------------------------------------------

    def _compact_l0(self) -> None:
        l0 = list(self.version.levels[0])
        l1 = list(self.version.levels[1])
        smallest = min(t.smallest for t in l0)
        largest = max(t.largest for t in l0)
        overlapping = [
            t for t in l1 if not (t.largest < smallest or t.smallest > largest)
        ]
        keep = [t for t in l1 if t not in overlapping]
        # Precedence: L1 (oldest) first, then L0 oldest → newest.
        inputs = overlapping + list(reversed(l0))
        outputs = self._merge(inputs, output_level=1)
        self.version.levels[0] = []
        self.version.install_level(1, keep + outputs)
        self._release(inputs)

    def _compact_level(self, level: int) -> None:
        source = self.version.levels[level]
        table = source[0]  # oldest-first rotation
        next_level = level + 1
        overlapping = [
            t
            for t in self.version.levels[next_level]
            if not (t.largest < table.smallest or t.smallest > table.largest)
        ]
        keep_next = [t for t in self.version.levels[next_level] if t not in overlapping]
        inputs = overlapping + [table]
        outputs = self._merge(inputs, output_level=next_level)
        self.version.levels[level] = [t for t in source if t is not table]
        self.version.install_level(next_level, keep_next + outputs)
        self._release(inputs)

    def _merge(self, inputs: List[SSTable], output_level: int) -> List[SSTable]:
        """Merge inputs (lowest precedence first) into new tables."""
        merged: Dict[bytes, bytes] = {}
        for table in inputs:
            for key, value in table.iter_entries():
                merged[key] = value
            self.bytes_compacted += table.extent_size
        drop_tombstones = output_level == self.version.num_levels - 1
        outputs: List[SSTable] = []
        builder: Optional[SSTableBuilder] = None
        built = 0
        for key in sorted(merged):
            value = merged[key]
            if drop_tombstones and value == TOMBSTONE:
                continue
            if builder is None:
                builder = SSTableBuilder(
                    self.next_table_id(),
                    self.space,
                    self.config.block_size,
                    self.config.bits_per_key,
                )
                built = 0
            builder.add(key, value)
            built += len(key) + len(value)
            if built >= self.config.max_table_bytes:
                table = builder.finish()
                if table is not None:
                    outputs.append(table)
                builder = None
        if builder is not None:
            table = builder.finish()
            if table is not None:
                outputs.append(table)
        self.compactions_run += 1
        return outputs

    def _release(self, tables: List[SSTable]) -> None:
        for table in tables:
            table.release()
