"""LSM-tree key-value store (RocksDB stand-in for the §4.2 experiments).

A leveled LSM with the pieces the end-to-end evaluation needs:

* write path — WAL + memtable, flush to L0 SSTables,
* SSTables — 4 KiB data blocks, block index, per-table bloom filter,
* leveled compaction with a background-style compactor,
* a DRAM block cache with a **secondary cache** hook: evicted blocks
  spill to a :class:`~repro.cache.HybridCache` (any of the four schemes)
  and misses consult it before touching the HDD — exactly how the paper
  couples CacheLib to RocksDB [8, 10],
* the database lives on the simulated HDD, so a cache miss costs
  milliseconds and the secondary cache's hit ratio dominates throughput.
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.block import BlockHandle, DataBlock, DataBlockBuilder
from repro.lsm.table_space import TableSpace
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.memtable import Memtable
from repro.lsm.wal import WalFullError, WriteAheadLog
from repro.lsm.manifest import Manifest
from repro.lsm.iterator import merge_sources, scan_range
from repro.lsm.version import Version
from repro.lsm.block_cache import BlockCache, SecondaryCache
from repro.lsm.secondary import CacheLibSecondaryCache
from repro.lsm.db import Db, DbConfig, DbStats

__all__ = [
    "BloomFilter",
    "BlockHandle",
    "DataBlock",
    "DataBlockBuilder",
    "TableSpace",
    "SSTable",
    "SSTableBuilder",
    "Memtable",
    "WalFullError",
    "WriteAheadLog",
    "Manifest",
    "merge_sources",
    "scan_range",
    "Version",
    "BlockCache",
    "SecondaryCache",
    "CacheLibSecondaryCache",
    "Db",
    "DbConfig",
    "DbStats",
]
