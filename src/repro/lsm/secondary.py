"""CacheLib-backed secondary cache adapter.

Wraps a :class:`~repro.cache.HybridCache` (any of the four schemes) in
the :class:`~repro.lsm.block_cache.SecondaryCache` interface, encoding
block identities as cache keys — the glue the paper adds to evaluate
each scheme under RocksDB.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.cache.engine import HybridCache
from repro.lsm.block_cache import BlockKey, SecondaryCache

_KEY = struct.Struct("<QQ")


class CacheLibSecondaryCache(SecondaryCache):
    """Secondary cache over one scheme's HybridCache."""

    def __init__(self, cache: HybridCache) -> None:
        self.cache = cache
        self.inserts = 0
        self.lookups = 0

    @staticmethod
    def encode_key(key: BlockKey) -> bytes:
        return b"blk" + _KEY.pack(key[0], key[1])

    def lookup(self, key: BlockKey) -> Optional[bytes]:
        self.lookups += 1
        return self.cache.get(self.encode_key(key))

    def insert(self, key: BlockKey, block: bytes) -> None:
        self.inserts += 1
        self.cache.set(self.encode_key(key), block)

    @property
    def hit_ratio(self) -> float:
        """Flash-tier hit ratio over all secondary lookups."""
        return self.cache.stats.hit_ratio
