"""Builders for the four scheme stacks on matched hardware.

The paper compares "hardware-compatible" devices: a WD ZN540 ZNS SSD and
a WD SN540 block SSD built from the same NAND (§4).  These builders keep
that property: every scheme gets the same :class:`NandGeometry` /
:class:`NandTiming`, only the translation stack differs.

Geometry is scaled (DESIGN.md "Scaling rules"): the default
:class:`SchemeScale` uses 4 MiB zones and 64 KiB regions, preserving the
paper's zone:region ratio (1077 MiB : 16 MiB ≈ 67 : 1 → 64 : 1).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.cache.admission import TinyLfuAdmission
from repro.cache.backends import (
    BlockRegionStore,
    FileRegionStore,
    ZCacheRegionStore,
    ZoneRegionStore,
    ZtlRegionStore,
)
from repro.cache.config import CacheConfig
from repro.cache.engine import HybridCache
from repro.f2fs.fs import F2fs
from repro.f2fs.gc import CleanerConfig
from repro.f2fs.layout import F2fsConfig
from repro.flash.blockssd import BlockSsd, BlockSsdConfig
from repro.flash.ftl import FtlConfig
from repro.flash.nand import NandGeometry, NandTiming
from repro.flash.nullblk import NullBlkDevice
from repro.flash.zone import ZoneCostConfig
from repro.flash.znsssd import ZnsConfig, ZnsSsd
from repro.reclaim import GcHints
from repro.sim.clock import SimClock
from repro.sim.faults import FaultInjector
from repro.sim.io import IoTracer, PoolConfig
from repro.units import KIB, MIB
from repro.ztl.gc import GcConfig
from repro.ztl.layer import RegionTranslationLayer, ZtlConfig

# The paper's four schemes: the default sweep grid (and the fixed shape
# several goldens lock in) stays exactly these four.
SCHEME_NAMES = ("Region-Cache", "Zone-Cache", "File-Cache", "Block-Cache")
# Everything build_scheme can construct, including the beyond-paper
# Z-Cache (hot/cold-separated Region-Cache variant).
ALL_SCHEME_NAMES = SCHEME_NAMES + ("Z-Cache",)


@dataclass(frozen=True)
class SchemeScale:
    """Scaled hardware shape shared by every scheme in one experiment."""

    zone_size: int = 4 * MIB
    region_size: int = 64 * KIB
    page_size: int = 4 * KIB
    # 1 MiB NAND erase block: the FTL's GC unit spans 16 regions, so
    # LRU-reordered region overwrites fragment erase blocks — the source
    # of the regular SSD's device-level WA on caching workloads (§2.3).
    pages_per_block: int = 256
    parallelism: int = 8
    ram_bytes: int = 2 * MIB
    timing: NandTiming = field(default_factory=NandTiming)
    # Device I/O pool shape.  The default serial pool reproduces the
    # original single-timeline behaviour exactly; raising ``channels`` or
    # ``queue_depth`` lets batched submissions overlap (EXPERIMENTS.md).
    io: PoolConfig = field(default_factory=PoolConfig)

    def geometry_for(self, media_bytes: int) -> NandGeometry:
        block_size = self.page_size * self.pages_per_block
        num_blocks = max(8, media_bytes // block_size)
        return NandGeometry(
            page_size=self.page_size,
            pages_per_block=self.pages_per_block,
            num_blocks=num_blocks,
            parallelism=self.parallelism,
        )


@dataclass
class SchemeStack:
    """A fully-wired scheme: the cache plus its substrate handles."""

    name: str
    cache: HybridCache
    clock: SimClock
    substrate: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_bytes(self) -> int:
        return self.cache.config.flash_bytes

    def reclaim_engine(self):
        """``(layer_name, engine)`` for this scheme's reclamation engine.

        Zone-Cache returns ``("none", None)``: it has no device-side
        reclamation — the paper's premise — so its gc_* columns are
        zeros and its routing pressure is always idle.
        """
        layer = self.substrate.get("layer")
        if layer is not None:
            return "ztl", layer.gc.engine
        fs = self.substrate.get("fs")
        if fs is not None:
            return "f2fs", fs.cleaner.engine
        ftl = getattr(self.substrate.get("device"), "ftl", None)
        if ftl is not None:
            return "ftl", ftl.reclaim
        return "none", None

    def reclaim_pressure(self) -> Dict[str, object]:
        """Live reclamation pressure, the GC-aware routing signal.

        ``level`` is the pacer's watermark band (idle/background/urgent/
        emergency), ``free_units`` the remaining free-container headroom
        (-1 when the scheme has no reclamation layer), and
        ``gc_stall_us_p99`` the foreground stall the layer has inflicted
        so far.
        """
        name, engine = self.reclaim_engine()
        if engine is None:
            return {
                "layer": "none",
                "level": "idle",
                "free_units": -1,
                "gc_stall_us_p99": 0.0,
            }
        free = engine.source.free_units()
        return {
            "layer": name,
            "level": engine.pacer.level(free),
            "free_units": free,
            "gc_stall_us_p99": engine.stats.stall_us_p99,
        }

    def enable_adaptive_pacing(self, adaptive) -> bool:
        """Attach an AIMD pacing controller to the reclamation layer.

        Returns False when the scheme has none (Zone-Cache).  Built
        clusters use this to close the GC↔QoS loop without rebuilding
        per-layer configs.
        """
        _, engine = self.reclaim_engine()
        if engine is None:
            return False
        engine.pacer.enable_adaptive(adaptive)
        return True


def _cache_config(scale: SchemeScale, region_size: int, num_regions: int,
                  **overrides) -> CacheConfig:
    defaults = dict(
        region_size=region_size,
        num_regions=num_regions,
        ram_bytes=scale.ram_bytes,
    )
    defaults.update(overrides)
    return CacheConfig(**defaults)


def build_block_cache(
    clock: SimClock,
    scale: SchemeScale,
    media_bytes: int,
    cache_bytes: int,
    ftl_op_ratio: float = 0.20,
    ftl: Optional[FtlConfig] = None,
    faults: Optional[FaultInjector] = None,
    zone_costs: Optional[ZoneCostConfig] = None,
    **cache_overrides,
) -> SchemeStack:
    """Block-Cache: regions on a conventional SSD with internal OP + GC.

    ``ftl`` overrides the whole FTL config (GC policy/watermark sweeps);
    when omitted, only ``ftl_op_ratio`` deviates from the defaults.
    ``zone_costs`` is accepted (so mixed fleets can apply one override to
    every shard) but has nothing to charge: a block SSD has no zones.
    """
    del zone_costs
    geometry = scale.geometry_for(media_bytes)
    device = BlockSsd(
        clock,
        BlockSsdConfig(
            geometry=geometry,
            timing=scale.timing,
            ftl=ftl if ftl is not None else FtlConfig(op_ratio=ftl_op_ratio),
        ),
        io=scale.io,
        tracer=IoTracer(),
        faults=faults,
    )
    num_regions = min(cache_bytes, device.capacity_bytes) // scale.region_size
    store = BlockRegionStore(device, scale.region_size, num_regions)
    config = _cache_config(scale, scale.region_size, num_regions, **cache_overrides)
    cache = HybridCache(clock, store, config)
    if config.lifecycle.gc_hints and config.lifecycle.hint_layers == "all":
        # §3.4 full coverage: the FTL asks the cache before copying the
        # pages of a condemned region and discards them ahead instead.
        device.ftl.bind_hints(
            GcHints(cache.migration_worth, cache.on_region_dropped),
            scale.region_size,
            num_regions,
        )
    return SchemeStack(
        name="Block-Cache",
        cache=cache,
        clock=clock,
        substrate={"device": device, "store": store, "faults": faults},
    )


def build_zone_cache(
    clock: SimClock,
    scale: SchemeScale,
    media_bytes: int,
    cache_bytes: Optional[int] = None,
    faults: Optional[FaultInjector] = None,
    zone_costs: Optional[ZoneCostConfig] = None,
    **cache_overrides,
) -> SchemeStack:
    """Zone-Cache: one region per zone, no OP — the whole device caches."""
    geometry = scale.geometry_for(media_bytes)
    device = ZnsSsd(
        clock,
        ZnsConfig(
            geometry=geometry,
            timing=scale.timing,
            zone_size=scale.zone_size,
            zone_costs=zone_costs if zone_costs is not None else ZoneCostConfig(),
        ),
        io=scale.io,
        tracer=IoTracer(),
        faults=faults,
    )
    if cache_bytes is None:
        num_regions = device.num_zones
    else:
        num_regions = min(cache_bytes // scale.zone_size, device.num_zones)
    store = ZoneRegionStore(device, num_regions)
    config = _cache_config(scale, scale.zone_size, num_regions, **cache_overrides)
    return SchemeStack(
        name="Zone-Cache",
        cache=HybridCache(clock, store, config),
        clock=clock,
        substrate={"device": device, "store": store, "faults": faults},
    )


def build_region_cache(
    clock: SimClock,
    scale: SchemeScale,
    media_bytes: int,
    cache_bytes: int,
    host_open_zones: int = 2,
    gc: Optional[GcConfig] = None,
    faults: Optional[FaultInjector] = None,
    zone_costs: Optional[ZoneCostConfig] = None,
    **cache_overrides,
) -> SchemeStack:
    """Region-Cache: flexible regions through the zone translation layer."""
    geometry = scale.geometry_for(media_bytes)
    device = ZnsSsd(
        clock,
        ZnsConfig(
            geometry=geometry,
            timing=scale.timing,
            zone_size=scale.zone_size,
            zone_costs=zone_costs if zone_costs is not None else ZoneCostConfig(),
        ),
        io=scale.io,
        tracer=IoTracer(),
        faults=faults,
    )
    if gc is None:
        # The empty-zone watermark scales with the device: the paper's
        # example is 8 empty zones on a 904-zone device (~1%).
        gc = GcConfig(
            min_empty_zones=max(2, device.num_zones // 12),
            victim_valid_threshold=0.20,
        )
    layer = RegionTranslationLayer(
        device,
        ZtlConfig(
            region_size=scale.region_size,
            host_open_zones=host_open_zones,
            gc=gc,
        ),
    )
    num_regions = min(cache_bytes // scale.region_size, layer.total_slots - 1)
    store = ZtlRegionStore(layer, num_regions)
    config = _cache_config(scale, scale.region_size, num_regions, **cache_overrides)
    cache = HybridCache(clock, store, config)
    if config.lifecycle.gc_hints:
        # §3.4 co-design: the cache answers "is this region worth
        # migrating?" from its liveness ledger and purges dropped
        # regions from the index (the examples/gc_hints_codesign idiom).
        layer.gc.migration_hint = cache.migration_worth
        layer.gc.on_drop = cache.on_region_dropped
    return SchemeStack(
        name="Region-Cache",
        cache=cache,
        clock=clock,
        substrate={"device": device, "layer": layer, "store": store,
                   "faults": faults},
    )


def build_file_cache(
    clock: SimClock,
    scale: SchemeScale,
    media_bytes: int,
    cache_bytes: int,
    provision_ratio: float = 0.20,
    meta_bytes: int = 16 * MIB,
    cleaner: Optional[CleanerConfig] = None,
    faults: Optional[FaultInjector] = None,
    zone_costs: Optional[ZoneCostConfig] = None,
    **cache_overrides,
) -> SchemeStack:
    """File-Cache: regions in one large file on the F2FS-like filesystem.

    ``cleaner`` overrides the section-cleaning config (policy/watermark
    sweeps); the default is F2FS's stock cost-benefit cleaner.
    """
    geometry = scale.geometry_for(media_bytes)
    device = ZnsSsd(
        clock,
        ZnsConfig(
            geometry=geometry,
            timing=scale.timing,
            zone_size=scale.zone_size,
            zone_costs=zone_costs if zone_costs is not None else ZoneCostConfig(),
        ),
        io=scale.io,
        tracer=IoTracer(),
        faults=faults,
    )
    # The metadata device shares the data device's tracer so one trace
    # shows the whole stack (journal writes included).
    meta = NullBlkDevice(
        clock,
        capacity_bytes=meta_bytes,
        block_size=scale.page_size,
        tracer=device.tracer,
        faults=faults,
    )
    fs = F2fs(
        clock,
        device,
        meta,
        F2fsConfig(
            block_size=scale.page_size,
            provision_ratio=provision_ratio,
            checkpoint_interval_blocks=1 << 30,  # explicit checkpoints only
        ),
        cleaner if cleaner is not None else CleanerConfig(),
    )
    fs.mkfs()
    num_regions = min(cache_bytes, fs.usable_bytes) // scale.region_size
    store = FileRegionStore(fs, scale.region_size, num_regions)
    config = _cache_config(scale, scale.region_size, num_regions, **cache_overrides)
    cache = HybridCache(clock, store, config)
    if config.lifecycle.gc_hints and config.lifecycle.hint_layers == "all":
        # §3.4 full coverage: the cleaner resolves a victim block back
        # to its cache region and drops condemned regions' blocks.
        store.bind_gc_hints(GcHints(cache.migration_worth, cache.on_region_dropped))
    return SchemeStack(
        name="File-Cache",
        cache=cache,
        clock=clock,
        substrate={"device": device, "meta": meta, "fs": fs, "store": store,
                   "faults": faults},
    )


def build_z_cache(
    clock: SimClock,
    scale: SchemeScale,
    media_bytes: int,
    cache_bytes: int,
    host_open_zones: int = 1,
    host_groups: int = 2,
    hot_threshold: int = 2,
    admission_threshold: int = 1,
    gc: Optional[GcConfig] = None,
    faults: Optional[FaultInjector] = None,
    zone_costs: Optional[ZoneCostConfig] = None,
    **cache_overrides,
) -> SchemeStack:
    """Z-Cache: Region-Cache plus ZNS-native hot/cold separation.

    The Z-CacheLib scheme (arxiv 2410.11260): one TinyLFU sketch serves
    both the admission filter and the flush-time hot/cold classifier
    (:class:`ZCacheRegionStore`), the ZTL keeps a separate open-zone
    pool per lifetime group (one open zone each, so the open-zone
    footprint matches Region-Cache's), and GC defaults to the lazy
    ``cold_defer`` policy — harvest hot zones once they decay, leave
    cold zones sealed instead of recopying their stable survivors.
    ``admission_threshold=1`` admits everything (hit-ratio parity with
    Region-Cache) while still feeding the sketch; raise it to also
    filter one-hit wonders from flash.
    """
    geometry = scale.geometry_for(media_bytes)
    device = ZnsSsd(
        clock,
        ZnsConfig(
            geometry=geometry,
            timing=scale.timing,
            zone_size=scale.zone_size,
            zone_costs=zone_costs if zone_costs is not None else ZoneCostConfig(),
        ),
        io=scale.io,
        tracer=IoTracer(),
        faults=faults,
    )
    if gc is None:
        gc = GcConfig(
            min_empty_zones=max(2, device.num_zones // 12),
            victim_valid_threshold=0.20,
            policy="cold_defer",
        )
    layer = RegionTranslationLayer(
        device,
        ZtlConfig(
            region_size=scale.region_size,
            host_open_zones=host_open_zones,
            host_groups=host_groups,
            gc=gc,
        ),
    )
    num_regions = min(cache_bytes // scale.region_size, layer.total_slots - 1)
    admission = TinyLfuAdmission(threshold=admission_threshold)
    store = ZCacheRegionStore(
        layer, num_regions, admission.sketch, hot_threshold=hot_threshold
    )
    config = _cache_config(scale, scale.region_size, num_regions, **cache_overrides)
    cache = HybridCache(clock, store, config, admission=admission)
    if config.lifecycle.gc_hints:
        layer.gc.migration_hint = cache.migration_worth
        layer.gc.on_drop = cache.on_region_dropped
    return SchemeStack(
        name="Z-Cache",
        cache=cache,
        clock=clock,
        substrate={"device": device, "layer": layer, "store": store,
                   "faults": faults},
    )


def build_scheme(
    name: str,
    clock: SimClock,
    scale: SchemeScale,
    media_bytes: int,
    cache_bytes: Optional[int] = None,
    file_media_bytes: Optional[int] = None,
    **kwargs,
) -> SchemeStack:
    """Build any scheme by its paper name (see :data:`SCHEME_NAMES`).

    This is the one construction path every experiment shares (the fault
    sweep, the figures, db_bench and the serving cluster all route
    through it) so per-scheme call-shape quirks live here and nowhere
    else: Zone-Cache treats ``cache_bytes=None`` as "cache the whole
    device" (its no-OP premise), the other schemes require an explicit
    budget, and File-Cache may get a larger device via
    ``file_media_bytes`` (F2FS needs room for metadata + provisioning
    around the same cache budget, as §4.1 provisions it).
    """
    builders: Dict[str, Callable[..., SchemeStack]] = {
        "Block-Cache": build_block_cache,
        "Zone-Cache": build_zone_cache,
        "File-Cache": build_file_cache,
        "Region-Cache": build_region_cache,
        "Z-Cache": build_z_cache,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {ALL_SCHEME_NAMES}"
        )
    if name == "Zone-Cache":
        return builder(clock, scale, media_bytes, cache_bytes=cache_bytes, **kwargs)
    if cache_bytes is None:
        raise ValueError(f"{name} requires an explicit cache_bytes budget")
    if name == "File-Cache" and file_media_bytes is not None:
        media_bytes = file_media_bytes
    return builder(clock, scale, media_bytes, cache_bytes, **kwargs)


# Pristine (never-run) stacks keyed by their full construction shape.
_STACK_TEMPLATES: Dict[Tuple, SchemeStack] = {}


def clear_stack_cache() -> None:
    """Drop all cached stack templates (tests, memory-sensitive sweeps)."""
    _STACK_TEMPLATES.clear()


def build_scheme_cached(
    name: str,
    scale: SchemeScale,
    media_bytes: int,
    cache_bytes: Optional[int] = None,
    file_media_bytes: Optional[int] = None,
    **kwargs,
) -> SchemeStack:
    """:func:`build_scheme`, amortizing construction across sweep cells.

    A pristine template per distinct construction shape is built once
    and deep-copied per request, so a sweep that rebuilds the same
    cluster for every cell pays construction-time simulation once.  The
    win is concentrated where construction itself simulates I/O —
    File-Cache's ``mkfs`` journal writes; for the other schemes cloning
    is roughly break-even with a fresh build, so callers with one-off
    stacks should keep calling :func:`build_scheme`.

    Clones are fully independent — each carries its own clock, device,
    and state, positioned exactly where a fresh build would leave them —
    and never alias the template, which is built once and never run.
    Unhashable overrides (config objects, fault injectors) fall back to
    an uncached fresh build.
    """
    try:
        key = (
            name,
            scale,
            media_bytes,
            cache_bytes,
            file_media_bytes,
            tuple(sorted(kwargs.items())),
        )
        template = _STACK_TEMPLATES.get(key)
    except TypeError:
        return build_scheme(
            name,
            SimClock(),
            scale,
            media_bytes,
            cache_bytes,
            file_media_bytes=file_media_bytes,
            **kwargs,
        )
    if template is None:
        template = build_scheme(
            name,
            SimClock(),
            scale,
            media_bytes,
            cache_bytes,
            file_media_bytes=file_media_bytes,
            **kwargs,
        )
        _STACK_TEMPLATES[key] = template
    return copy.deepcopy(template)
