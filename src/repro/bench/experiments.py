"""One function per table/figure in the paper's evaluation (§4).

Each function builds the relevant scheme stacks on matched hardware,
drives the paper's workload, and returns structured rows.  Absolute
numbers differ from the paper's testbed (this is a simulator — see
DESIGN.md); the *shape* of each result is the reproduction target and is
asserted by ``tests/test_bench_experiments.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.schemes import (
    ALL_SCHEME_NAMES,
    SCHEME_NAMES,
    SchemeScale,
    SchemeStack,
    build_file_cache,
    build_region_cache,
    build_scheme,
    build_zone_cache,
)
from repro.sim.clock import SimClock
from repro.units import MIB
from repro.workloads.cachebench import CacheBenchConfig, CacheBenchDriver


def _populate(driver: CacheBenchDriver, stack: SchemeStack) -> None:
    """CacheBench-style population phase: one set per key (not measured)."""
    for key_index in range(driver.config.num_keys):
        key = driver.key_bytes(key_index)
        value = driver.value_bytes(key_index, driver._sizes.sample())
        stack.cache.set(key, value)


def _run_mix(
    driver: CacheBenchDriver, stack: SchemeStack, populate: bool = True
) -> Dict[str, object]:
    if populate:
        _populate(driver, stack)
    result = driver.run(stack.cache)
    row = {
        "scheme": stack.name,
        "throughput_mops_per_min": result.ops_per_minute_m,
        "hit_ratio": result.hit_ratio,
        "waf_app": result.waf_app,
        "waf_device": result.waf_device,
        "waf_total": result.waf_total,
        "get_p99_us": result.get_p99_ns / 1000,
        "set_p99_us": result.set_p99_ns / 1000,
        "cache_mib": stack.cache_bytes / MIB,
    }
    row.update(_device_columns(stack))
    row.update(_fault_columns(stack))
    row.update(_gc_columns(stack))
    return row


def _fault_columns(stack: SchemeStack) -> Dict[str, object]:
    """Fault-injection / recovery columns (EXPERIMENTS.md).

    Always present so rows stay rectangular: with no injector armed they
    report zeros, and the pre-existing golden columns are untouched.
    """
    faults = stack.substrate.get("faults")
    stats = stack.cache.stats
    return {
        "faults_injected": faults.stats.total_injected if faults is not None else 0,
        "retries": stats.retries,
        "quarantined_regions": stats.quarantined_regions,
        "recovery_ms": stats.recovery_ns / 1e6,
    }


def _device_columns(stack: SchemeStack) -> Dict[str, object]:
    """Per-layer device latency / pool-parallelism columns (EXPERIMENTS.md).

    Read straight off the scheme's primary device pipeline: device-level
    P99s separate queueing seen at the cache API from queueing inside the
    device, and the pool counters show how busy/contended the media was.
    """
    device = stack.substrate.get("device")
    if device is None:
        return {}
    stats = device.stats
    pool = device.pipeline.pool
    cols = {
        "dev_read_p99_us": stats.read_latency.p99() / 1000,
        "dev_write_p99_us": stats.write_latency.p99() / 1000,
        "dev_wait_ms": pool.total_wait_ns / 1e6,
        "dev_busy_ms": pool.total_busy_ns / 1e6,
        "dev_util": pool.utilization(stack.clock.now),
        "io_channels": pool.config.channels,
        "io_queue_depth": pool.config.queue_depth,
    }
    cols.update(_zone_mgmt_columns([device]))
    return cols


def _zone_mgmt_columns(devices) -> Dict[str, object]:
    """Zone-management service-time columns — the ``zns_*`` family.

    Summed over every device that exposes a
    :class:`~repro.flash.zone.ZoneMgmtStats` (conventional SSDs have no
    zones and contribute zeros), so the same helper serves single-stack
    rows and fleet rows.  The ``*_us`` columns are the service time the
    zone commands were charged through the I/O pipeline, which is why
    they reconcile exactly with the tracer's OPEN/CLOSE/FINISH/RESET
    span attribution (asserted in ``tests/test_zone_lifecycle.py``).
    """
    open_ns = close_ns = finish_ns = reset_ns = forced = 0
    for device in devices:
        mgmt = getattr(device, "zone_mgmt", None)
        if mgmt is None:
            continue
        open_ns += mgmt.open_ns
        close_ns += mgmt.close_ns
        finish_ns += mgmt.finish_ns
        reset_ns += mgmt.reset_ns
        forced += mgmt.forced_closes
    return {
        "zns_open_us": open_ns / 1000,
        "zns_close_us": close_ns / 1000,
        "zns_finish_us": finish_ns / 1000,
        "zns_reset_us": reset_ns / 1000,
        "zns_forced_close": forced,
    }


def _reclaim_engine(stack: SchemeStack):
    """``(layer_name, engine)`` for the scheme's reclamation engine.

    Zone-Cache returns ``("none", None)``: it has no device-side
    reclamation — the paper's premise — so its gc_* columns are zeros.
    """
    return stack.reclaim_engine()


def _gc_columns(stack: SchemeStack) -> Dict[str, object]:
    """Uniform reclamation columns — the ``gc_*`` family (EXPERIMENTS.md).

    Read off the scheme's :class:`~repro.reclaim.ReclaimEngine` whichever
    layer owns it, plus the cache's own region-eviction stats.  Always
    present so mixed-scheme tables stay rectangular.
    """
    layer_name, engine = _reclaim_engine(stack)
    stats = engine.stats if engine is not None else None
    pacer = engine.pacer if engine is not None else None
    cache_stats = stack.cache.regions.reclaim_stats
    return {
        "gc_layer": layer_name,
        "gc_policy": engine.policy.name if engine is not None else "none",
        "gc_victims": stats.victims_reclaimed if stats is not None else 0,
        "gc_migrated_units": stats.units_migrated if stats is not None else 0,
        "gc_dropped_units": stats.units_dropped if stats is not None else 0,
        "gc_hint_dropped_units": (
            stats.hint_dropped_units if stats is not None else 0
        ),
        "gc_copied_bytes": stats.copied_bytes if stats is not None else 0,
        "gc_triggers": stats.triggers if stats is not None else 0,
        "gc_stall_us_p99": stats.stall_us_p99 if stats is not None else 0.0,
        "gc_cache_evictions": cache_stats.victims_reclaimed,
        "gc_cache_dropped_keys": cache_stats.units_dropped,
        # Copy-budget and adaptive-pacing telemetry (zeros when static).
        "gc_throttled_steps": pacer.throttled_steps if pacer is not None else 0,
        "gc_copy_throttle_events": (
            pacer.copy_throttle_events if pacer is not None else 0
        ),
        "gc_pace_adjustments": pacer.pace_adjustments if pacer is not None else 0,
        "gc_pace_clamps": pacer.pace_clamps if pacer is not None else 0,
        "gc_pace_units_end": pacer.pace_units if pacer is not None else 0,
    }


# --------------------------------------------------------------------------
# Figure 2 — overall throughput + hit ratio of the four schemes
# --------------------------------------------------------------------------

def run_fig2_overall(
    scale: Optional[SchemeScale] = None,
    zones: int = 25,
    cache_zones: int = 20,
    file_zones: int = 38,
    num_keys: Optional[int] = None,
    num_ops: int = 60_000,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure 2: 25 zones; Zone-Cache caches all of them (no OP), the
    other schemes cache 20 zones' worth (≥20% OP); File-Cache's F2FS
    gets 38 zones, exactly as §4.1 provisions it."""
    scale = scale or SchemeScale()
    media = zones * scale.zone_size
    cache_bytes = cache_zones * scale.zone_size
    file_media = file_zones * scale.zone_size
    if num_keys is None:
        # Working set just above the smaller caches so hit ratio tracks
        # capacity (the paper's 94–95% regime).
        num_keys = int(1.05 * media / 1568)
    workload = CacheBenchConfig(
        num_ops=num_ops,
        num_keys=num_keys,
        zipf_theta=1.0,
        warmup_ops=int(1.2 * num_keys),
        set_on_miss=True,  # look-aside fill: a miss fetches and re-inserts
        seed=seed,
    )
    rows: List[Dict[str, object]] = []
    # Flash regions are reclaimed FIFO, as CacheLib's navy engine does
    # (the paper's "LRU" §4.1 setting is the DRAM tier's item policy,
    # which RamCache implements).  FIFO keeps region death order equal to
    # write order — the property that keeps zone GC cheap (Table 1).
    # reclaim_window models navy's clean-region pool: region reuse
    # deviates slightly from strict FIFO, leaving straggler regions in
    # dying zones — the source of Table 1's low-1.x WAFs.  Zone-Cache
    # reclaims exactly one zone at a time (no pool), matching §3.2.
    navy = {"eviction_policy": "fifo", "reclaim_window": 128}
    for name, kwargs in _fig2_scheme_args(cache_bytes, file_media, navy):
        stack = build_scheme(name, SimClock(), scale, media, **kwargs)
        driver = CacheBenchDriver(workload)
        rows.append(_run_mix(driver, stack))
    return rows


def _fig2_scheme_args(cache_bytes: int, file_media: int, navy: Dict[str, object]):
    """Per-scheme build_scheme kwargs for the Figure 2 provisioning.

    Zone-Cache caches the whole device (no OP, §3.2) and takes only the
    reclaim-policy override; the others get the smaller cache budget and
    the navy clean-region pool.  Shared by the fault sweep so both
    experiments construct identical stacks.
    """
    return [
        ("Region-Cache", dict(cache_bytes=cache_bytes, **navy)),
        ("Zone-Cache", dict(eviction_policy="fifo")),
        (
            "File-Cache",
            dict(cache_bytes=cache_bytes, file_media_bytes=file_media, **navy),
        ),
        ("Block-Cache", dict(cache_bytes=cache_bytes, **navy)),
    ]


# --------------------------------------------------------------------------
# Figure 3 — region in-memory buffer fill time, large vs small regions
# --------------------------------------------------------------------------

def run_fig3_insertion_time(
    scale: Optional[SchemeScale] = None,
    zones: int = 25,
    num_sets: Optional[int] = None,
    seed: int = 7,
) -> Dict[str, List[Dict[str, object]]]:
    """Figure 3: insertion time to fill each successive region buffer.

    (a) large regions (region == zone, Zone-Cache) show a jump when
    region eviction begins; (b) small regions (Region-Cache) stay flat.
    """
    scale = scale or SchemeScale()
    media = zones * scale.zone_size
    series: Dict[str, List[Dict[str, object]]] = {}
    for label, builder in (
        ("large_region", lambda clk: build_zone_cache(clk, scale, media)),
        (
            "small_region",
            lambda clk: build_region_cache(
                clk, scale, media, cache_bytes=(zones - 5) * scale.zone_size
            ),
        ),
    ):
        stack = builder(SimClock())
        driver = CacheBenchDriver(
            CacheBenchConfig(
                num_ops=1,
                num_keys=max(
                    1024, int(2.2 * stack.cache_bytes / 1568)
                ),
                get_ratio=0.0,
                set_ratio=1.0,
                delete_ratio=0.0,
                seed=seed,
            )
        )
        total_sets = num_sets
        if total_sets is None:
            # Enough sets to overwrite the cache ~2.4 times.
            total_sets = int(2.4 * stack.cache_bytes / 1568)
        keys = driver._keys
        sizes = driver._sizes
        for _ in range(total_sets):
            key_index = keys.sample()
            stack.cache.set(
                driver.key_bytes(key_index),
                driver.value_bytes(key_index, sizes.sample()),
            )
        stack.cache.flush()
        series[label] = [
            {"sequence": i, "fill_time_us": duration / 1000}
            for i, duration in enumerate(stack.cache.stats.region_fill_durations_ns)
        ]
    return series


# --------------------------------------------------------------------------
# Figure 4 + Table 1 — OP-ratio sweep (throughput, hit ratio, WAF)
# --------------------------------------------------------------------------

def run_fig4_op_sweep(
    scale: Optional[SchemeScale] = None,
    zones: int = 55,
    op_ratios: tuple = (0.10, 0.15, 0.20),
    num_ops: int = 60_000,
    num_keys: Optional[int] = None,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure 4: same device space for everyone (the paper's 220 zones,
    scaled); File-Cache and Region-Cache sweep OP 10/15/20% while
    Zone-Cache always runs without OP."""
    scale = scale or SchemeScale()
    media = zones * scale.zone_size
    if num_keys is None:
        num_keys = int(1.6 * media / 1568)
    workload = CacheBenchConfig(num_ops=num_ops, num_keys=num_keys, seed=seed)
    rows: List[Dict[str, object]] = []
    lru = {"eviction_policy": "fifo", "reclaim_window": 128}
    for op in op_ratios:
        cache_bytes = int(media * (1.0 - op))
        stack = build_file_cache(
            # F2FS reserves a bit less than the nominal OP so the cache
            # file plus node blocks always fit inside usable space.
            SimClock(), scale, media, cache_bytes, provision_ratio=op * 0.6, **lru
        )
        row = _run_mix(CacheBenchDriver(workload), stack)
        row.update({"op_ratio": op})
        rows.append(row)
    zone_stack = build_zone_cache(SimClock(), scale, media, eviction_policy="fifo")
    zone_row = _run_mix(CacheBenchDriver(workload), zone_stack)
    zone_row.update({"op_ratio": 0.0})
    rows.append(zone_row)
    for op in op_ratios:
        cache_bytes = int(media * (1.0 - op))
        stack = build_region_cache(SimClock(), scale, media, cache_bytes, **lru)
        row = _run_mix(CacheBenchDriver(workload), stack)
        row.update({"op_ratio": op})
        rows.append(row)
    return rows


def run_table1_waf(
    scale: Optional[SchemeScale] = None,
    zones: int = 55,
    op_ratios: tuple = (0.10, 0.15, 0.20),
    num_ops: int = 60_000,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Table 1: WA factor of Region-Cache and File-Cache per OP ratio
    (application-level — the layer above the ZNS device)."""
    rows = run_fig4_op_sweep(
        scale=scale, zones=zones, op_ratios=op_ratios, num_ops=num_ops, seed=seed
    )
    out: List[Dict[str, object]] = []
    for row in rows:
        if row["scheme"] not in ("Region-Cache", "File-Cache"):
            continue
        out.append(
            {
                "scheme": row["scheme"],
                "op_ratio": row["op_ratio"],
                "waf": row["waf_app"],
            }
        )
    return out


# --------------------------------------------------------------------------
# Figure 5 + Table 2 — end-to-end: the schemes as RocksDB's secondary cache
# --------------------------------------------------------------------------

def run_fig5_rocksdb(
    scale: Optional[SchemeScale] = None,
    exp_ranges: tuple = (15.0, 25.0),
    num_keys: int = 80_000,
    num_reads: int = 8_000,
    warmup_reads: int = 16_000,
    cache_zones: float = 4.5,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure 5: fillrandom then readrandom against an LSM on HDD, with
    each scheme serving as the secondary (flash) cache."""
    from repro.workloads.dbbench import DbBenchConfig, DbBenchDriver

    scale = scale or SchemeScale()
    rows: List[Dict[str, object]] = []
    for exp_range in exp_ranges:
        for scheme in ("Block-Cache", "File-Cache", "Zone-Cache", "Region-Cache"):
            config = DbBenchConfig(
                num_keys=num_keys,
                num_reads=num_reads,
                warmup_reads=warmup_reads,
                exp_range=exp_range,
                cache_zones=cache_zones,
                scheme=scheme,
                seed=seed,
            )
            result = DbBenchDriver(config, scale).run()
            rows.append(
                {
                    "scheme": scheme,
                    "exp_range": exp_range,
                    "kops_per_sec": result.ops_per_sec / 1000,
                    "hit_ratio": result.cache_hit_ratio,
                    "p50_ms": result.p50_ns / 1e6,
                    "p99_ms": result.p99_ns / 1e6,
                }
            )
    return rows


# --------------------------------------------------------------------------
# Fault sweep — the Figure 2 mix with a seeded fault plan armed
# --------------------------------------------------------------------------

def run_fault_sweep(
    scale: Optional[SchemeScale] = None,
    zones: int = 25,
    cache_zones: int = 20,
    file_zones: int = 38,
    num_ops: int = 20_000,
    num_keys: Optional[int] = None,
    seed: int = 7,
    fault_seed: int = 11,
    schemes: tuple = ("Region-Cache", "Zone-Cache", "File-Cache", "Block-Cache"),
) -> List[Dict[str, object]]:
    """Availability under injected faults (EXPERIMENTS.md "Fault sweep").

    Each scheme runs the Figure 2 mix with the same seeded fault plan:
    sporadic transient media errors on reads, occasional open-resource
    exhaustion on writes, rare latency spikes, and one zone flipped
    READ-ONLY mid-run (ZNS-backed schemes only — a conventional SSD has
    no zones to kill).  The interesting columns are ``faults_injected``,
    ``retries``, ``degraded`` misses and ``quarantined_regions``: the
    cache must keep serving, not crash.
    """
    from repro.sim.faults import FaultInjector, FaultKind, FaultRule, ZoneFault
    from repro.units import SEC

    scale = scale or SchemeScale()
    media = zones * scale.zone_size
    cache_bytes = cache_zones * scale.zone_size
    file_media = file_zones * scale.zone_size
    if num_keys is None:
        num_keys = int(1.05 * media / 1568)
    workload = CacheBenchConfig(
        num_ops=num_ops,
        num_keys=num_keys,
        zipf_theta=1.0,
        warmup_ops=int(1.2 * num_keys),
        set_on_miss=True,
        seed=seed,
    )
    navy = {"eviction_policy": "fifo", "reclaim_window": 128}

    def make_injector() -> FaultInjector:
        return FaultInjector(
            seed=fault_seed,
            rules=(
                FaultRule(
                    FaultKind.MEDIA_ERROR,
                    probability=0.002,
                    op="read",
                    after_requests=200,
                ),
                FaultRule(FaultKind.ZONE_RESOURCE, probability=0.0005, op="write"),
                FaultRule(
                    FaultKind.LATENCY,
                    probability=0.001,
                    extra_latency_ns=2_000_000,
                ),
            ),
            zone_faults=(
                ZoneFault(
                    at_ns=5 * SEC,
                    zone_index=zones // 2,
                    kind=FaultKind.ZONE_READONLY,
                ),
            ),
        )

    scheme_args = dict(_fig2_scheme_args(cache_bytes, file_media, navy))
    rows: List[Dict[str, object]] = []
    for name in schemes:
        injector = make_injector()
        stack = build_scheme(
            name, SimClock(), scale, media, faults=injector, **scheme_args[name]
        )
        row = _run_mix(CacheBenchDriver(workload), stack)
        stats = stack.cache.stats
        row.update(
            {
                "degraded_misses": stats.degraded_misses,
                "io_errors": stats.io_errors,
                "latency_injected_ms": injector.stats.latency_injected_ns / 1e6,
                "zone_faults": injector.stats.zone_faults_applied,
            }
        )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------
# Serving sweep — open-loop multi-tenant load against a sharded fleet
# --------------------------------------------------------------------------

def _serving_tenants(
    total_rate: float,
    requests_per_tenant: int,
    num_keys: int,
    seed: int,
    rate_limit_batch: bool = True,
    web_arrival: str = "poisson",
) -> "List[object]":
    """The sweep's two-tenant mix: a steady interactive tenant and a
    bursty batch tenant, splitting the offered load 70/30.

    The batch tenant carries a token bucket at 1.5x its mean rate, so
    its 4x bursts are clipped by rate limiting *before* they reach the
    shard queues — per-tenant QoS isolating the interactive tenant.
    ``web_arrival`` switches the interactive tenant's arrival process
    (the failover sweep kills shards mid-*diurnal* load); the default
    keeps every pre-existing sweep byte-identical.
    """
    from repro.serve import TenantConfig

    web_rate = 0.7 * total_rate
    batch_rate = 0.3 * total_rate
    tenants = [
        TenantConfig(
            "web",
            rate_ops_per_sec=web_rate,
            arrival=web_arrival,
            workload=CacheBenchConfig(
                num_ops=requests_per_tenant,
                num_keys=num_keys,
                zipf_theta=1.0,
                set_on_miss=True,
                seed=seed,
            ),
            slo_p99_ms=2.0,
            seed=seed + 100,
        ),
        TenantConfig(
            "batch",
            rate_ops_per_sec=batch_rate,
            arrival="burst",
            burst_factor=4.0,
            workload=CacheBenchConfig(
                num_ops=requests_per_tenant,
                num_keys=max(1, num_keys // 2),
                get_ratio=0.30,
                set_ratio=0.60,
                delete_ratio=0.10,
                seed=seed + 1,
            ),
            slo_p99_ms=10.0,
            rate_limit_ops_per_sec=1.5 * batch_rate if rate_limit_batch else 0.0,
            rate_limit_burst=32.0,
            seed=seed + 200,
        ),
    ]
    return tenants


def _serving_scale() -> SchemeScale:
    """Reduced hardware for serving runs: small zones/regions so a few
    thousand requests reach eviction/GC steady state on every scheme
    (at full scale Zone-Cache's 4 MiB region buffer would absorb the
    whole run in RAM and never touch the device)."""
    from repro.units import KIB

    return SchemeScale(
        zone_size=256 * KIB,
        region_size=16 * KIB,
        pages_per_block=16,
        ram_bytes=32 * KIB,
    )


def run_serving_sweep(
    scale: Optional[SchemeScale] = None,
    zones_per_shard: int = 10,
    cache_zones_per_shard: int = 8,
    file_zones_per_shard: int = 16,
    num_shards: int = 3,
    offered_kops: tuple = (40.0, 120.0, 360.0),
    requests_per_tenant: int = 4_000,
    num_keys: Optional[int] = None,
    max_queue_depth: int = 48,
    admission: str = "admit-all",
    schemes: tuple = SCHEME_NAMES,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Offered load vs p99 / shed rate for each scheme (EXPERIMENTS.md).

    For every scheme and offered load, a homogeneous ``num_shards``
    cluster serves two open-loop tenants (70% steady interactive + 30%
    bursty batch).  Below the saturation knee all schemes complete
    everything; past it the bounded queues shed instead of letting p99
    grow without bound — the shed-rate and p99 columns together locate
    each scheme's knee.  Rows are per (scheme, load, tenant) and are
    byte-identical for the same seed (the serving golden test).
    """
    from repro.cache.admission import AdmissionConfig
    from repro.serve import CacheCluster, Server, ServerConfig

    scale = scale or _serving_scale()
    media = zones_per_shard * scale.zone_size
    cache_bytes = cache_zones_per_shard * scale.zone_size
    file_media = file_zones_per_shard * scale.zone_size
    if num_keys is None:
        # Working set just above one shard fleet's capacity, as Fig 2 does.
        num_keys = int(1.05 * num_shards * media / 1568)
    navy = {"eviction_policy": "fifo", "reclaim_window": 128}
    rows: List[Dict[str, object]] = []
    for name in schemes:
        overrides: Dict[str, object] = (
            {"eviction_policy": "fifo"} if name == "Zone-Cache" else dict(navy)
        )
        if admission != "admit-all":
            overrides["admission"] = AdmissionConfig(policy=admission, seed=seed)
        shard_cache = None if name == "Zone-Cache" else cache_bytes
        shard_file = file_media if name == "File-Cache" else None
        for load_kops in offered_kops:
            cluster = CacheCluster.homogeneous(
                name,
                num_shards,
                media,
                shard_cache,
                file_media_bytes=shard_file,
                scale=scale,
                cache_overrides=tuple(sorted(overrides.items())),
                cache_stacks=True,
            )
            tenants = _serving_tenants(
                load_kops * 1000, requests_per_tenant, num_keys, seed
            )
            report = Server(
                cluster, tenants, ServerConfig(max_queue_depth=max_queue_depth)
            ).run()
            shard_rows = report.shard_rows
            for tenant_row in report.tenant_rows:
                row: Dict[str, object] = {
                    "scheme": name,
                    "offered_total_kops": load_kops,
                    "num_shards": num_shards,
                }
                row.update(tenant_row)
                row.update(
                    {
                        "cluster_shed_rate": report.shed_rate,
                        "cluster_util_max": max(r["util"] for r in shard_rows),
                        "cluster_served": sum(r["served"] for r in shard_rows),
                        "cluster_waf_app_max": max(
                            r["waf_app"] for r in shard_rows
                        ),
                        "cluster_waf_device_max": max(
                            r["waf_device"] for r in shard_rows
                        ),
                        "admission": admission,
                    }
                )
                rows.append(row)
    return rows


def run_serving_smoke(seed: int = 7) -> List[Dict[str, object]]:
    """`repro serve --smoke`: a mixed two-shard cluster (Region-Cache +
    Zone-Cache on matched NAND), two tenants, ~2k requests — small
    enough for a CI step, still exercising routing, QoS and shedding."""
    from repro.serve import CacheCluster, Server, ServerConfig, ShardSpec

    scale = _serving_scale()
    media = 12 * scale.zone_size
    specs = [
        ShardSpec(
            "Region-Cache",
            media_bytes=media,
            cache_bytes=9 * scale.zone_size,
            cache_overrides=(("eviction_policy", "fifo"), ("reclaim_window", 32)),
        ),
        ShardSpec(
            "Zone-Cache",
            media_bytes=media,
            cache_overrides=(("eviction_policy", "fifo"),),
        ),
    ]
    cluster = CacheCluster(specs, scale=scale)
    tenants = _serving_tenants(
        total_rate=120_000.0,
        requests_per_tenant=1_000,
        num_keys=1_500,
        seed=seed,
    )
    report = Server(cluster, tenants, ServerConfig(max_queue_depth=24)).run()
    rows: List[Dict[str, object]] = []
    for tenant_row in report.tenant_rows:
        row = {"cluster": "region+zone", **tenant_row}
        row["cluster_shed_rate"] = report.shed_rate
        rows.append(row)
    for shard_row in report.shard_rows:
        shard_row = dict(shard_row)
        shard_row["cluster"] = "region+zone"
        rows.append(shard_row)
    return rows


def run_table2_cache_sizes(
    scale: Optional[SchemeScale] = None,
    cache_zone_counts: tuple = (4, 5, 6, 7, 8),
    num_keys: int = 80_000,
    num_reads: int = 8_000,
    warmup_reads: int = 16_000,
    exp_range: float = 25.0,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Table 2: Zone-Cache with growing cache size (the paper's 4–8 GiB,
    scaled to zones) — hit ratio and throughput climb together."""
    from repro.workloads.dbbench import DbBenchConfig, DbBenchDriver

    scale = scale or SchemeScale()
    rows: List[Dict[str, object]] = []
    for cache_zones in cache_zone_counts:
        config = DbBenchConfig(
            num_keys=num_keys,
            num_reads=num_reads,
            warmup_reads=warmup_reads,
            exp_range=exp_range,
            cache_zones=cache_zones,
            scheme="Zone-Cache",
            seed=seed,
        )
        result = DbBenchDriver(config, scale).run()
        rows.append(
            {
                "cache_zones": cache_zones,
                "cache_mib": cache_zones * scale.zone_size / MIB,
                "kops_per_sec": result.ops_per_sec / 1000,
                "hit_ratio_pct": result.cache_hit_ratio * 100,
            }
        )
    return rows


# --------------------------------------------------------------------------
# GC ablation — victim policy × watermark × pacing on the reclaim engine
# --------------------------------------------------------------------------

def _gc_reclaim_overrides(
    name: str, policy: str, watermark_scale: int, pace: int, zones_per_shard: int
) -> tuple:
    """``cache_overrides`` entries carrying one sweep combo's reclaim config.

    Maps the abstract (policy, watermark_scale, pace) point onto each
    layer's own config type; ``pace == 0`` means "move the whole victim
    per trigger".  Zone-Cache has no reclamation and gets nothing.
    """
    from repro.f2fs.gc import CleanerConfig
    from repro.f2fs.gc import VictimPolicy as F2fsVictimPolicy
    from repro.flash.ftl import FtlConfig
    from repro.ztl.gc import GcConfig

    if name == "Region-Cache":
        base = max(2, zones_per_shard // 12)
        gc = GcConfig(
            min_empty_zones=base * watermark_scale,
            # High enough that each policy's pick is actually admitted
            # (a tight threshold funnels every policy through the
            # emergency least-valid fallback and erases the axis).
            victim_valid_threshold=0.90,
            policy=policy,
            pace_regions=pace if pace > 0 else 1 << 20,
        )
        return (("gc", gc),)
    if name == "File-Cache":
        cleaner = CleanerConfig(
            low_watermark=3 * watermark_scale,
            pace_blocks=pace if pace > 0 else 1 << 20,
            policy=F2fsVictimPolicy(policy),
            # Ablation policies (random, age_threshold) can nominate
            # near-full sections; defer those and fall back to
            # least-valid under emergency so the log heads never wedge.
            victim_valid_threshold=0.90,
            emergency_sections=2,
        )
        return (("cleaner", cleaner),)
    if name == "Block-Cache":
        ftl = FtlConfig(
            op_ratio=0.20,
            gc_low_watermark=4 * watermark_scale,
            gc_high_watermark=8 * watermark_scale,
            gc_policy=policy,
        )
        return (("ftl", ftl),)
    return ()


def _traced_reclaim(tracer) -> Dict[str, int]:
    """Count reclaim spans and the device bytes they attribute.

    ``reclaim_traced_bytes`` sums device-level transfer records whose
    ancestry passes through a ``reclaim.*`` span — the check that every
    migrated byte is tracer-attributed to the GC engine that moved it.
    """
    by_id = {record.record_id: record for record in tracer.records}
    spans = 0
    traced = 0
    for record in tracer.records:
        if record.layer.startswith("reclaim."):
            spans += 1
            continue
        if record.op not in ("write", "append", "gc"):
            continue
        cursor = record
        while cursor is not None:
            if cursor.layer.startswith("reclaim."):
                traced += record.length
                break
            cursor = (
                by_id.get(cursor.parent_id)
                if cursor.parent_id is not None
                else None
            )
    return {"reclaim_spans": spans, "reclaim_traced_bytes": traced}


def run_gc_ablation(
    scale: Optional[SchemeScale] = None,
    zones_per_shard: int = 10,
    cache_zones_per_shard: int = 8,
    file_zones_per_shard: int = 16,
    num_shards: int = 1,
    policies: tuple = ("greedy", "cost_benefit", "age_threshold", "random"),
    watermark_scales: tuple = (1, 2),
    paces: tuple = (0, 8),
    offered_kops: float = 30.0,
    requests_per_tenant: int = 8_000,
    num_keys: Optional[int] = None,
    max_queue_depth: int = 48,
    schemes: tuple = SCHEME_NAMES,
    seed: int = 7,
    trace: bool = False,
) -> List[Dict[str, object]]:
    """GC ablation (`repro gc-sweep`): victim policy × trigger watermark ×
    copy pacing for every scheme, under the open-loop serving load.

    One row per (scheme, policy, watermark, pace) combo, joining the
    fleet's aggregated ``gc_*`` counters with the interactive tenant's
    p99 — the interference axis the paper argues about: how much
    device-side reclamation each scheme performs and what it costs the
    foreground.  Zone-Cache contributes a single "none" row (it has no
    reclamation to sweep) and Block-Cache skips the pace axis (its FTL
    drains synchronously inside the write path, so background pacing is
    a no-op there).
    """
    from repro.serve import CacheCluster, Server, ServerConfig

    scale = scale or _serving_scale()
    media = zones_per_shard * scale.zone_size
    cache_bytes = cache_zones_per_shard * scale.zone_size
    file_media = file_zones_per_shard * scale.zone_size
    if num_keys is None:
        num_keys = int(1.05 * num_shards * media / 1568)
    navy = {"eviction_policy": "fifo", "reclaim_window": 128}
    rows: List[Dict[str, object]] = []
    for name in schemes:
        if name == "Zone-Cache":
            combos = [("none", 0, 0)]
        elif name == "Block-Cache":
            combos = [(p, w, 0) for p in policies for w in watermark_scales]
        else:
            combos = [
                (p, w, pace)
                for p in policies
                for w in watermark_scales
                for pace in paces
            ]
        base_overrides: Dict[str, object] = (
            {"eviction_policy": "fifo"} if name == "Zone-Cache" else dict(navy)
        )
        shard_cache = None if name == "Zone-Cache" else cache_bytes
        shard_file = file_media if name == "File-Cache" else None
        for policy, watermark_scale, pace in combos:
            cluster = CacheCluster.homogeneous(
                name,
                num_shards,
                media,
                shard_cache,
                file_media_bytes=shard_file,
                scale=scale,
                cache_overrides=tuple(sorted(base_overrides.items()))
                + _gc_reclaim_overrides(
                    name, policy, watermark_scale, pace, zones_per_shard
                ),
                cache_stacks=True,
            )
            if trace:
                for shard in cluster.shards:
                    shard.stack.substrate["device"].tracer.enable()
            tenants = _serving_tenants(
                offered_kops * 1000, requests_per_tenant, num_keys, seed
            )
            report = Server(
                cluster, tenants, ServerConfig(max_queue_depth=max_queue_depth)
            ).run()
            gc_cols = [_gc_columns(shard.stack) for shard in cluster.shards]
            shard_rows = report.shard_rows
            web = next(r for r in report.tenant_rows if r["tenant"] == "web")
            row: Dict[str, object] = {
                "scheme": name,
                "gc_policy": policy,
                "watermark_scale": watermark_scale,
                "pace_units": pace,
                "offered_total_kops": offered_kops,
                "web_p99_us": web["p99_us"],
                "web_goodput_kops": web["goodput_kops"],
                "cluster_shed_rate": report.shed_rate,
                "waf_app_max": max(r["waf_app"] for r in shard_rows),
                "waf_device_max": max(r["waf_device"] for r in shard_rows),
                "gc_layer": gc_cols[0]["gc_layer"],
                "gc_victims": sum(c["gc_victims"] for c in gc_cols),
                "gc_migrated_units": sum(c["gc_migrated_units"] for c in gc_cols),
                "gc_dropped_units": sum(c["gc_dropped_units"] for c in gc_cols),
                "gc_copied_bytes": sum(c["gc_copied_bytes"] for c in gc_cols),
                "gc_triggers": sum(c["gc_triggers"] for c in gc_cols),
                "gc_stall_us_p99": max(c["gc_stall_us_p99"] for c in gc_cols),
                "gc_cache_evictions": sum(c["gc_cache_evictions"] for c in gc_cols),
            }
            if trace:
                traced = {"reclaim_spans": 0, "reclaim_traced_bytes": 0}
                for shard in cluster.shards:
                    shard_traced = _traced_reclaim(
                        shard.stack.substrate["device"].tracer
                    )
                    for key in traced:
                        traced[key] += shard_traced[key]
                row.update(traced)
            rows.append(row)
    return rows


def run_gc_smoke(seed: int = 7) -> List[Dict[str, object]]:
    """`repro gc-sweep --smoke`: all four schemes × two policies, one
    shard, tracing on — small enough for a CI step, still proving the
    sweep grid runs end-to-end and migrated bytes carry reclaim spans."""
    return run_gc_ablation(
        policies=("greedy", "cost_benefit"),
        watermark_scales=(1,),
        paces=(8,),
        requests_per_tenant=6_000,
        seed=seed,
        trace=True,
    )


# --------------------------------------------------------------------------
# GC↔QoS co-scheduling — adaptive pacing × GC-aware routing
# --------------------------------------------------------------------------

def _gc_qos_overrides(name: str) -> tuple:
    """Reclaim configs with the ``urgent`` pressure band wired.

    GC-aware routing reroutes at the urgent band and adaptive pacing
    relaxes/clamps around it, so every scheme that reclaims gets an
    urgent watermark one container above its emergency floor.
    Zone-Cache has no reclamation and gets nothing — its pressure is
    always idle, which is itself the paper's point.
    """
    from repro.f2fs.gc import CleanerConfig
    from repro.f2fs.gc import VictimPolicy as F2fsVictimPolicy
    from repro.flash.ftl import FtlConfig
    from repro.ztl.gc import GcConfig

    if name == "Region-Cache":
        # The background band (urgent < free < min_empty) must be wide
        # enough that paced steps actually run there; with background and
        # urgent adjacent every GC step lands in the unbounded urgent
        # regime and pace_units never binds.
        gc = GcConfig(
            min_empty_zones=4,
            urgent_empty_zones=2,
            emergency_empty_zones=1,
            victim_valid_threshold=0.90,
            pace_regions=8,
        )
        return (("gc", gc),)
    if name == "Z-Cache":
        # Same watermarks as Region-Cache so the comparison isolates the
        # hot/cold separation, but victims are scored cold-first: finish
        # (and decay) cold zones instead of copying hot ones.
        gc = GcConfig(
            min_empty_zones=4,
            urgent_empty_zones=2,
            emergency_empty_zones=1,
            victim_valid_threshold=0.90,
            pace_regions=8,
            policy="cold_defer",
        )
        return (("gc", gc),)
    if name == "File-Cache":
        cleaner = CleanerConfig(
            low_watermark=4,
            urgent_sections=2,
            emergency_sections=1,
            pace_blocks=16,
            policy=F2fsVictimPolicy.COST_BENEFIT,
            victim_valid_threshold=0.90,
        )
        return (("cleaner", cleaner),)
    if name == "Block-Cache":
        ftl = FtlConfig(
            op_ratio=0.20,
            gc_low_watermark=4,
            gc_high_watermark=8,
            gc_urgent_watermark=2,
        )
        return (("ftl", ftl),)
    return ()


def run_gc_qos_sweep(
    scale: Optional[SchemeScale] = None,
    zones_per_shard: int = 10,
    cache_zones_per_shard: int = 6,
    file_zones_per_shard: int = 16,
    num_shards: int = 2,
    offered_kops: tuple = (8.0, 12.0, 20.0),
    requests_per_tenant: int = 8_000,
    num_keys: Optional[int] = None,
    max_queue_depth: int = 48,
    schemes: tuple = SCHEME_NAMES,
    pacing_modes: tuple = ("static", "adaptive"),
    routing_modes: tuple = ("static", "gc_aware"),
    stall_slo_ms: float = 1.0,
    adjust_interval_steps: int = 16,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """GC↔QoS co-scheduling sweep (`repro gc-qos`): {static, adaptive}
    pacing × {static, gc_aware} routing per scheme, under the serving
    sweep's open-loop two-tenant load.

    Both levers respond to the same signal.  Adaptive pacing is an AIMD
    controller on each shard's reclaim pace, budgeted at half the
    interactive tenant's p99 SLO (device-side stall is only part of the
    end-to-end path).  GC-aware routing diverts writes around shards
    whose pacer sits in the urgent/emergency band.  One row per (scheme,
    pacing, routing, load) joins both tenants' QoS with the fleet's
    rerouting and reclaim telemetry, so the ablation reads directly:
    which half of the loop buys the p99/goodput at the overload knee.
    """
    from repro.reclaim import AdaptivePacingConfig
    from repro.serve import CacheCluster, RoutingConfig, Server, ServerConfig

    scale = scale or _serving_scale()
    media = zones_per_shard * scale.zone_size
    cache_bytes = cache_zones_per_shard * scale.zone_size
    file_media = file_zones_per_shard * scale.zone_size
    if num_keys is None:
        num_keys = int(1.05 * num_shards * media / 1568)
    navy = {"eviction_policy": "fifo", "reclaim_window": 128}
    adaptive = AdaptivePacingConfig(
        stall_slo_ns=int(stall_slo_ms * 1e6),
        interval_steps=adjust_interval_steps,
    )
    rows: List[Dict[str, object]] = []
    for name in schemes:
        base_overrides: Dict[str, object] = (
            {"eviction_policy": "fifo"} if name == "Zone-Cache" else dict(navy)
        )
        shard_cache = None if name == "Zone-Cache" else cache_bytes
        shard_file = file_media if name == "File-Cache" else None
        for load_kops in offered_kops:
            for pacing in pacing_modes:
                for routing in routing_modes:
                    cluster = CacheCluster.homogeneous(
                        name,
                        num_shards,
                        media,
                        shard_cache,
                        file_media_bytes=shard_file,
                        scale=scale,
                        cache_overrides=tuple(sorted(base_overrides.items()))
                        + _gc_qos_overrides(name),
                        routing=RoutingConfig(policy=routing),
                        cache_stacks=True,
                    )
                    if pacing == "adaptive":
                        for shard in cluster.shards:
                            shard.stack.enable_adaptive_pacing(adaptive)
                    tenants = _serving_tenants(
                        load_kops * 1000, requests_per_tenant, num_keys, seed
                    )
                    report = Server(
                        cluster,
                        tenants,
                        ServerConfig(max_queue_depth=max_queue_depth),
                    ).run()
                    gc_cols = [
                        _gc_columns(shard.stack) for shard in cluster.shards
                    ]
                    shard_rows = report.shard_rows
                    web = next(
                        r for r in report.tenant_rows if r["tenant"] == "web"
                    )
                    batch = next(
                        r for r in report.tenant_rows if r["tenant"] == "batch"
                    )
                    rows.append({
                        "scheme": name,
                        "pacing": pacing,
                        "routing": routing,
                        "offered_total_kops": load_kops,
                        "web_p99_us": web["p99_us"],
                        "web_goodput_kops": web["goodput_kops"],
                        "web_slo_attainment": web["slo_attainment"],
                        "batch_p99_us": batch["p99_us"],
                        "batch_goodput_kops": batch["goodput_kops"],
                        "cluster_shed_rate": report.shed_rate,
                        "rerouted_writes": sum(
                            r["rerouted_out"] for r in shard_rows
                        ),
                        "rerouted_web": web["rerouted"],
                        "rerouted_batch": batch["rerouted"],
                        "gc_layer": gc_cols[0]["gc_layer"],
                        "gc_victims": sum(c["gc_victims"] for c in gc_cols),
                        "gc_migrated_units": sum(
                            c["gc_migrated_units"] for c in gc_cols
                        ),
                        "gc_stall_us_p99": max(
                            c["gc_stall_us_p99"] for c in gc_cols
                        ),
                        "gc_throttled_steps": sum(
                            c["gc_throttled_steps"] for c in gc_cols
                        ),
                        "gc_pace_adjustments": sum(
                            c["gc_pace_adjustments"] for c in gc_cols
                        ),
                        "gc_pace_clamps": sum(
                            c["gc_pace_clamps"] for c in gc_cols
                        ),
                        "gc_pace_units_end": max(
                            c["gc_pace_units_end"] for c in gc_cols
                        ),
                    })
    return rows


def run_gc_qos_smoke(seed: int = 7) -> List[Dict[str, object]]:
    """`repro gc-qos --smoke`: one ZNS scheme, two shards, all four
    pacing × routing combos at one load — small enough for a CI step,
    still driving the adaptive controller and the rerouting path."""
    return run_gc_qos_sweep(
        offered_kops=(12.0,),
        requests_per_tenant=4_000,
        schemes=("Region-Cache",),
        seed=seed,
    )


# --------------------------------------------------------------------------
# Zone-management cost ablation — {zero, measured} × {Region-Cache, Z-Cache}
# --------------------------------------------------------------------------

def run_zone_cost_ablation(
    scale: Optional[SchemeScale] = None,
    zones_per_shard: int = 10,
    cache_zones_per_shard: int = 6,
    num_shards: int = 2,
    offered_kops: tuple = (12.0,),
    requests_per_tenant: int = 8_000,
    num_keys: Optional[int] = None,
    max_queue_depth: int = 48,
    schemes: tuple = ("Region-Cache", "Z-Cache"),
    cost_presets: tuple = ("zero", "measured"),
    pacing: str = "adaptive",
    routing: str = "gc_aware",
    stall_slo_ms: float = 1.0,
    adjust_interval_steps: int = 16,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Zone-management cost ablation (`repro zone-cost`).

    The cost-model question the gc-qos sweep cannot answer: with zone
    commands free (the simulator's historical default) Region-Cache and
    Z-Cache reclaim at the same price, so hot/cold separation only moves
    copy traffic.  Once opens/closes/finishes/resets carry their
    measured service times (the "Hidden Cost of Zone Management" ZNS
    characterization), Z-Cache's cold-first reclaim — victims chosen so
    their survivors were *already* segregated into cold zones — copies
    less and therefore issues fewer of the newly-expensive commands per
    reclaimed zone.  One row per (scheme, cost preset, load) at the
    gc-qos knee; read web_p99_us down the preset column.
    """
    from repro.flash.zone import ZoneCostConfig
    from repro.reclaim import AdaptivePacingConfig
    from repro.serve import CacheCluster, RoutingConfig, Server, ServerConfig

    presets: Dict[str, "ZoneCostConfig"] = {
        "zero": ZoneCostConfig(),
        "measured": ZoneCostConfig.measured(),
    }
    scale = scale or _serving_scale()
    media = zones_per_shard * scale.zone_size
    cache_bytes = cache_zones_per_shard * scale.zone_size
    if num_keys is None:
        num_keys = int(1.05 * num_shards * media / 1568)
    navy = {"eviction_policy": "fifo", "reclaim_window": 128}
    adaptive = AdaptivePacingConfig(
        stall_slo_ns=int(stall_slo_ms * 1e6),
        interval_steps=adjust_interval_steps,
    )
    rows: List[Dict[str, object]] = []
    for name in schemes:
        for preset in cost_presets:
            costs = presets[preset]
            for load_kops in offered_kops:
                cluster = CacheCluster.homogeneous(
                    name,
                    num_shards,
                    media,
                    cache_bytes,
                    scale=scale,
                    cache_overrides=tuple(sorted(navy.items()))
                    + _gc_qos_overrides(name)
                    + (("zone_costs", costs),),
                    routing=RoutingConfig(policy=routing),
                    cache_stacks=True,
                )
                if pacing == "adaptive":
                    for shard in cluster.shards:
                        shard.stack.enable_adaptive_pacing(adaptive)
                tenants = _serving_tenants(
                    load_kops * 1000, requests_per_tenant, num_keys, seed
                )
                report = Server(
                    cluster,
                    tenants,
                    ServerConfig(max_queue_depth=max_queue_depth),
                ).run()
                gc_cols = [_gc_columns(shard.stack) for shard in cluster.shards]
                web = next(
                    r for r in report.tenant_rows if r["tenant"] == "web"
                )
                batch = next(
                    r for r in report.tenant_rows if r["tenant"] == "batch"
                )
                row: Dict[str, object] = {
                    "scheme": name,
                    "cost_preset": preset,
                    "pacing": pacing,
                    "routing": routing,
                    "offered_total_kops": load_kops,
                    "web_p99_us": web["p99_us"],
                    "web_goodput_kops": web["goodput_kops"],
                    "web_slo_attainment": web["slo_attainment"],
                    "batch_p99_us": batch["p99_us"],
                    "batch_goodput_kops": batch["goodput_kops"],
                    "cluster_shed_rate": report.shed_rate,
                    "gc_victims": sum(c["gc_victims"] for c in gc_cols),
                    "gc_migrated_units": sum(
                        c["gc_migrated_units"] for c in gc_cols
                    ),
                    "gc_copied_bytes": sum(
                        c["gc_copied_bytes"] for c in gc_cols
                    ),
                    "gc_stall_us_p99": max(
                        c["gc_stall_us_p99"] for c in gc_cols
                    ),
                }
                row.update(_zone_mgmt_columns([
                    shard.stack.substrate.get("device")
                    for shard in cluster.shards
                    if shard.stack.substrate.get("device") is not None
                ]))
                rows.append(row)
    return rows


def run_zone_cost_smoke(seed: int = 7) -> List[Dict[str, object]]:
    """`repro zone-cost --smoke`: both schemes × both cost presets at the
    knee with the gc-qos smoke's request stream — four rows, CI-sized,
    long enough that reclaim actually runs in every cell (shorter
    streams never reach the knee and the ablation reads as a no-op)."""
    return run_zone_cost_ablation(
        requests_per_tenant=4_000,
        seed=seed,
    )


# --------------------------------------------------------------------------
# Failover sweep — kill shards mid-diurnal-load, measure survival per scheme
# --------------------------------------------------------------------------

def run_failover_sweep(
    scale: Optional[SchemeScale] = None,
    zones_per_shard: int = 10,
    cache_zones_per_shard: int = 6,
    num_shards: int = 8,
    offered_kops: float = 10.0,
    requests_per_tenant: int = 6_000,
    num_keys: Optional[int] = None,
    max_queue_depth: int = 128,
    schemes: tuple = ("Region-Cache", "Z-Cache"),
    replicas: tuple = (1, 2),
    kill_shard: int = 0,
    kill_at_frac: float = 0.35,
    outage_frac: float = 0.25,
    hint_limit: int = 8192,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Fleet failover sweep (`repro failover`): kill a shard mid-diurnal
    load and measure what replication buys, per scheme.

    For every (scheme, replication factor) cell, an ``num_shards``
    homogeneous cluster serves the two-tenant mix (web switched to
    diurnal arrivals so the kill lands on a live waveform), and a
    :class:`~repro.serve.FailoverPlan` power-cuts ``kill_shard`` at
    ``kill_at_frac`` of the run for ``outage_frac`` of the run.  With
    R=1 every request owned by the dead shard fails for the whole
    outage, and its cache restarts cold — availability drops and the
    hit ratio takes the whole recovery tail to climb back.  With R=2
    writes fan out to the ring successor, reads fall back (with
    read-repair), and a bounded hint journal replays the missed writes
    through the normal write path during RESYNCING — availability holds
    and the hit ratio recovers within a few percent by run end.

    One row per cell joins the tenants' QoS columns with the fleet
    telemetry (``fleet_*``: availability, failed counts, storm p99,
    per-phase hit ratios, recovery time, replication/handoff byte
    overhead — the bytes reconcile exactly with ``serve.replicate`` /
    ``serve.handoff`` tracer spans).

    The default queue depth is deeper than the serving/gc-qos sweeps'
    48: replication roughly doubles each shard's queue traffic, and
    Region-Cache's multi-millisecond seal+reclaim bursts then overrun a
    48-deep queue — the availability the replicas bought leaks back out
    as queue-full sheds.  At depth 128 the bursts queue instead of
    shedding, which is the point of the ablation: R=2 Region-Cache
    holds ≥99% availability but pays for it in web p99, while Z-Cache
    (lazy cold-first reclaim, no copy bursts) holds both.  (GC-aware
    routing stays off — it is incompatible with replica placement,
    which must follow the ring.)
    """
    from repro.serve import (
        CacheCluster,
        FailoverPlan,
        ReplicationConfig,
        Server,
        ServerConfig,
        ShardKill,
    )

    scale = scale or _serving_scale()
    media = zones_per_shard * scale.zone_size
    cache_bytes = cache_zones_per_shard * scale.zone_size
    if num_keys is None:
        num_keys = int(1.05 * num_shards * media / 1568)
    navy = {"eviction_policy": "fifo", "reclaim_window": 128}
    # Open-loop duration estimate: the web tenant (70% of load) offers
    # requests_per_tenant ops at 0.7*rate; the kill and outage are
    # placed as fractions of that horizon so the storm always lands
    # mid-run regardless of the load point.
    duration_ns = int(requests_per_tenant / (0.7 * offered_kops * 1000) * 1e9)
    kill_at_ns = int(kill_at_frac * duration_ns)
    outage_ns = int(outage_frac * duration_ns)
    rows: List[Dict[str, object]] = []
    for name in schemes:
        base_overrides: Dict[str, object] = (
            {"eviction_policy": "fifo"} if name == "Zone-Cache" else dict(navy)
        )
        shard_cache = None if name == "Zone-Cache" else cache_bytes
        for r in replicas:
            cluster = CacheCluster.homogeneous(
                name,
                num_shards,
                media,
                shard_cache,
                scale=scale,
                cache_overrides=tuple(sorted(base_overrides.items()))
                + _gc_qos_overrides(name),
                cache_stacks=True,
                replication=ReplicationConfig(
                    replicas=r, hint_limit=hint_limit
                ),
            )
            tenants = _serving_tenants(
                offered_kops * 1000,
                requests_per_tenant,
                num_keys,
                seed,
                web_arrival="diurnal",
            )
            report = Server(
                cluster,
                tenants,
                ServerConfig(max_queue_depth=max_queue_depth),
                failover=FailoverPlan(
                    (ShardKill(kill_at_ns, kill_shard, outage_ns),)
                ),
            ).run()
            web = next(t for t in report.tenant_rows if t["tenant"] == "web")
            batch = next(
                t for t in report.tenant_rows if t["tenant"] == "batch"
            )
            row: Dict[str, object] = {
                "scheme": name,
                "replicas": r,
                "num_shards": num_shards,
                "offered_total_kops": offered_kops,
                "kill_at_ms": kill_at_ns / 1e6,
                "outage_ms": outage_ns / 1e6,
                "web_p99_us": web["p99_us"],
                "web_goodput_kops": web["goodput_kops"],
                "web_slo_attainment": web["slo_attainment"],
                "batch_p99_us": batch["p99_us"],
                "batch_goodput_kops": batch["goodput_kops"],
                "cluster_shed_rate": report.shed_rate,
            }
            fleet = report.fleet_row or {}
            row.update({f"fleet_{k}": v for k, v in fleet.items()})
            rows.append(row)
    return rows


def run_failover_smoke(seed: int = 7) -> List[Dict[str, object]]:
    """`repro failover --smoke`: one scheme, four shards, R∈{1,2}, one
    mid-run kill — two rows, CI-sized, still driving the whole failover
    path (fan-out, fallback reads, hinted handoff, crash recovery)."""
    return run_failover_sweep(
        num_shards=4,
        offered_kops=12.0,
        requests_per_tenant=1_500,
        schemes=("Region-Cache",),
        seed=seed,
    )


# --------------------------------------------------------------------------
# Invalidation storms — namespace bumps against the tenant lifecycle layer
# --------------------------------------------------------------------------

def _invalidation_gc_overrides(name: str) -> tuple:
    """Reclaim configs for the invalidation sweep.

    The ZTL schemes get dead-first victim selection and keep the
    paper's deferring 0.20 valid-data threshold: a namespace bump turns
    whole zones dead at once, dead-first takes them as zero-valid
    victims instantly, and zones still holding live survivors are left
    to keep decaying instead of being copied.  The FTL and the F2FS
    cleaner have no lifecycle integration — that asymmetry is the
    measurement: Block-/File-Cache copy dead-generation bytes their
    layers cannot see through.
    """
    from repro.ztl.gc import GcConfig

    if name == "Region-Cache":
        return (
            (
                "gc",
                GcConfig(
                    min_empty_zones=3,
                    urgent_empty_zones=2,
                    emergency_empty_zones=1,
                    victim_valid_threshold=0.20,
                    pace_regions=8,
                    dead_first=True,
                ),
            ),
        )
    if name == "Z-Cache":
        return (
            (
                "gc",
                GcConfig(
                    min_empty_zones=3,
                    urgent_empty_zones=2,
                    emergency_empty_zones=1,
                    victim_valid_threshold=0.20,
                    pace_regions=8,
                    policy="cold_defer",
                    dead_first=True,
                ),
            ),
        )
    return _gc_qos_overrides(name)


def _invalidation_tenants(
    total_rate: float,
    requests_per_tenant: int,
    num_keys: int,
    seed: int,
    bump_at_s: float,
    storm_at_s: float,
    storm_duration_s: float,
) -> "List[object]":
    """The storm mix: a versioned interactive tenant whose bump triggers
    a flash crowd of refill traffic, and a versioned purge tenant that
    tears its keyspace down in a delete storm.  70/30 load split as in
    every other serving sweep."""
    from repro.serve import TenantConfig

    web_rate = 0.7 * total_rate
    purge_rate = 0.3 * total_rate
    return [
        TenantConfig(
            "web",
            rate_ops_per_sec=web_rate,
            arrival="flash_crowd",
            flash_crowd_factor=3.0,
            flash_crowd_at_s=bump_at_s,
            flash_crowd_decay_s=max(storm_duration_s, 0.001),
            versioned_keys=True,
            workload=CacheBenchConfig(
                num_ops=requests_per_tenant,
                num_keys=num_keys,
                zipf_theta=1.0,
                set_on_miss=True,
                seed=seed,
            ),
            slo_p99_ms=2.0,
            seed=seed + 100,
        ),
        TenantConfig(
            "purge",
            rate_ops_per_sec=purge_rate,
            arrival="storm",
            storm_factor=4.0,
            storm_at_s=storm_at_s,
            storm_duration_s=max(storm_duration_s, 0.001),
            versioned_keys=True,
            workload=CacheBenchConfig(
                num_ops=requests_per_tenant,
                num_keys=max(1, num_keys // 2),
                get_ratio=0.20,
                set_ratio=0.40,
                delete_ratio=0.40,
                seed=seed + 1,
            ),
            slo_p99_ms=10.0,
            seed=seed + 200,
        ),
    ]


def run_invalidation_sweep(
    scale: Optional[SchemeScale] = None,
    zones_per_shard: int = 10,
    cache_zones_per_shard: int = 5,
    file_zones_per_shard: int = 16,
    num_shards: int = 4,
    offered_kops: float = 12.0,
    requests_per_tenant: int = 12_000,
    num_keys: Optional[int] = None,
    max_queue_depth: int = 128,
    schemes: tuple = ALL_SCHEME_NAMES,
    bump_at_frac: float = 0.35,
    purge_bump_frac: float = 0.55,
    storm_duration_frac: float = 0.10,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Invalidation-storm sweep (`repro invalidate`): bump two tenants'
    namespaces mid-run and measure the aftermath per scheme.

    Every cell runs the same script on an ``num_shards`` homogeneous
    cluster with the tenant lifecycle layer fully armed (versioned
    keys, the liveness ledger, dead-first eviction, §3.4 GC drop
    hints): the web tenant's namespace is bumped at ``bump_at_frac`` of
    the run — its flash-crowd refill wave starts there too — and the
    purge tenant, mid delete-storm, is bumped at ``purge_bump_frac``.
    Each bump is O(1): generations advance, and every byte written
    under the old generation becomes dead liveness the storage layers
    must discover.

    What separates the schemes is *where* that discovery happens.
    Region-/Z-Cache see dead regions at the cache layer (dead-first
    eviction takes them as zero-valid victims) and at the ZTL (GC drops
    dead-generation regions via the migration hint instead of copying
    them), so their post-storm copied bytes stay near zero.  Block- and
    File-Cache have no lifecycle channel into their FTL/cleaner, which
    migrate dead-generation bytes like any other valid data — the WAF
    and ``gc_copied_bytes`` columns carry the separation.  Zone-Cache
    has no device-side reclaim at all; its dead bytes simply age out
    with zone eviction.

    One row per scheme joins the tenants' QoS columns with the
    ``inval_*`` family (post-bump hit ratio, post-bump p99, hit-ratio
    recovery slope, ledger dead bytes — which reconcile exactly with
    the per-shard liveness ledgers and the ``serve.invalidate`` event
    counts) and the ``gc_*`` copy counters.
    """
    from repro.cache.lifecycle import LifecycleConfig
    from repro.serve import (
        CacheCluster,
        InvalidationPlan,
        Server,
        ServerConfig,
        TenantInvalidate,
    )

    scale = scale or _serving_scale()
    media = zones_per_shard * scale.zone_size
    cache_bytes = cache_zones_per_shard * scale.zone_size
    file_media = file_zones_per_shard * scale.zone_size
    if num_keys is None:
        num_keys = int(1.05 * num_shards * media / 1568)
    duration_ns = int(requests_per_tenant / (0.7 * offered_kops * 1000) * 1e9)
    bump_at_ns = int(bump_at_frac * duration_ns)
    purge_at_ns = int(purge_bump_frac * duration_ns)
    lifecycle = LifecycleConfig(
        versioning=True, dead_first_eviction=True, gc_hints=True
    )
    navy = {
        "eviction_policy": "fifo",
        "reclaim_window": 128,
        "lifecycle": lifecycle,
    }
    plan = InvalidationPlan(
        (
            TenantInvalidate(bump_at_ns, "web"),
            TenantInvalidate(purge_at_ns, "purge"),
        )
    )
    rows: List[Dict[str, object]] = []
    for name in schemes:
        base_overrides: Dict[str, object] = (
            {"eviction_policy": "fifo", "lifecycle": lifecycle}
            if name == "Zone-Cache"
            else dict(navy)
        )
        # Cache budgets follow each scheme's OP model (§4.1): Zone-Cache
        # caches the whole device (no OP at all), Block-Cache fills its
        # exposed LBA space (OP is *internal*, behind the FTL — the only
        # headroom its GC gets), and the host-side schemes reserve
        # host-visible spare zones the ZTL/F2FS reclaim into.
        if name == "Zone-Cache":
            shard_cache = None
        elif name == "Block-Cache":
            shard_cache = media
        else:
            shard_cache = cache_bytes
        cluster = CacheCluster.homogeneous(
            name,
            num_shards,
            media,
            shard_cache,
            file_media_bytes=file_media if name == "File-Cache" else None,
            scale=scale,
            cache_overrides=tuple(sorted(base_overrides.items()))
            + _invalidation_gc_overrides(name),
            cache_stacks=True,
        )
        tenants = _invalidation_tenants(
            offered_kops * 1000,
            requests_per_tenant,
            num_keys,
            seed,
            bump_at_s=bump_at_ns / 1e9,
            storm_at_s=purge_at_ns / 1e9,
            storm_duration_s=storm_duration_frac * duration_ns / 1e9,
        )
        report = Server(
            cluster,
            tenants,
            ServerConfig(max_queue_depth=max_queue_depth),
            invalidations=plan,
        ).run()
        web = next(t for t in report.tenant_rows if t["tenant"] == "web")
        purge = next(t for t in report.tenant_rows if t["tenant"] == "purge")
        shard_rows = report.shard_rows
        engines = [
            shard.stack.reclaim_engine()[1] for shard in cluster.shards
        ]
        gc_stats = [engine.stats for engine in engines if engine is not None]
        row: Dict[str, object] = {
            "scheme": name,
            "num_shards": num_shards,
            "offered_total_kops": offered_kops,
            "bump_at_ms": bump_at_ns / 1e6,
            "purge_bump_at_ms": purge_at_ns / 1e6,
            "web_p99_us": web["p99_us"],
            "web_goodput_kops": web["goodput_kops"],
            "web_hit_ratio": web["hit_ratio"],
            "purge_p99_us": purge["p99_us"],
            "purge_goodput_kops": purge["goodput_kops"],
            "cluster_shed_rate": report.shed_rate,
            "waf_app_max": max(r["waf_app"] for r in shard_rows),
            "waf_device_max": max(r["waf_device"] for r in shard_rows),
            "gc_copied_bytes": sum(s.copied_bytes for s in gc_stats),
            "gc_migrated_units": sum(s.units_migrated for s in gc_stats),
            "gc_dropped_units": sum(s.units_dropped for s in gc_stats),
            "gc_victims": sum(s.victims_reclaimed for s in gc_stats),
        }
        row.update(report.inval_row or {})
        rows.append(row)
    return rows


def run_invalidation_smoke(seed: int = 7) -> List[Dict[str, object]]:
    """`repro invalidate --smoke`: all five schemes, two shards, ~4k
    requests per tenant — five rows, CI-sized, still driving the whole
    lifecycle path (versioned keys, both bumps, dead-first eviction,
    GC drop hints, the ledger reconciliation)."""
    return run_invalidation_sweep(
        num_shards=2,
        offered_kops=12.0,
        requests_per_tenant=4_000,
        seed=seed,
    )


# --------------------------------------------------------------------------
# §3.4 hint-coverage ablation — hints {off, ztl-only, full} per scheme
# --------------------------------------------------------------------------

# The ablation grid: "off" disables the cache→GC hint channel entirely,
# "ztl" is the historical wiring (hints reach the zone translation layer
# only), "full" extends the same GcHints protocol to the F2FS cleaner
# and the FTL.  Zone-Cache is excluded: it has no reclamation layer, so
# hints have nothing to steer.
HINT_MODES = ("off", "ztl", "full")
HINT_SCHEMES = ("Block-Cache", "File-Cache", "Region-Cache", "Z-Cache")


def _hint_lifecycle(mode: str):
    """Lifecycle config for one hint-ablation mode (storm layer armed)."""
    from repro.cache.lifecycle import LifecycleConfig

    if mode not in HINT_MODES:
        raise ValueError(f"unknown hint mode {mode!r}; expected {HINT_MODES}")
    return LifecycleConfig(
        versioning=True,
        dead_first_eviction=True,
        gc_hints=(mode != "off"),
        hint_layers="all" if mode == "full" else "ztl",
    )


def run_hint_sweep(
    scale: Optional[SchemeScale] = None,
    zones_per_shard: int = 10,
    cache_zones_per_shard: int = 5,
    # Tighter than the invalidation sweep's 16: at 8 zones the F2FS
    # cleaner actually runs under the storm (free sections cross the
    # watermark), so the File-Cache ablation has cleaning to steer.
    file_zones_per_shard: int = 8,
    num_shards: int = 4,
    offered_kops: float = 12.0,
    requests_per_tenant: int = 12_000,
    num_keys: Optional[int] = None,
    max_queue_depth: int = 128,
    schemes: tuple = HINT_SCHEMES,
    modes: tuple = HINT_MODES,
    bump_at_frac: float = 0.35,
    purge_bump_frac: float = 0.55,
    storm_duration_frac: float = 0.10,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Hint-coverage ablation (`repro hint-sweep`): hints {off, ztl,
    full} × the four schemes with a reclamation layer, under the
    invalidation-storm load (`repro invalidate`'s script unchanged).

    Every cell runs the same two-tenant storm: the web tenant's
    namespace bump at ``bump_at_frac`` and the purge tenant's bump mid
    delete-storm turn whole regions dead at once, so each scheme's GC
    faces the same condemned bytes — what varies is whether its
    reclamation layer can *see* the condemnation.  With hints off, every
    layer migrates dead-generation bytes like live data.  With the
    historical ztl-only wiring, Region-/Z-Cache drop condemned regions
    at the ZTL while Block-/File-Cache keep copying blind.  With full
    coverage, the F2FS cleaner resolves victim blocks back to cache
    regions and drops condemned ones (NAT unmap + SIT invalidate, no
    data I/O), and the FTL discards a condemned region's pages ahead of
    copying them.

    Reconciliation: every hint drop emits one ``reclaim.<layer>``
    ``drop`` span, counted here via a tracer subscription (records are
    streamed, not captured).  ``gc_hint_dropped_units`` ==
    ``gc_hint_drop_spans`` cell by cell — asserted in
    ``tests/test_gc_hints.py``.
    """
    from repro.serve import (
        CacheCluster,
        InvalidationPlan,
        Server,
        ServerConfig,
        TenantInvalidate,
    )

    scale = scale or _serving_scale()
    media = zones_per_shard * scale.zone_size
    cache_bytes = cache_zones_per_shard * scale.zone_size
    file_media = file_zones_per_shard * scale.zone_size
    if num_keys is None:
        num_keys = int(1.05 * num_shards * media / 1568)
    duration_ns = int(requests_per_tenant / (0.7 * offered_kops * 1000) * 1e9)
    bump_at_ns = int(bump_at_frac * duration_ns)
    purge_at_ns = int(purge_bump_frac * duration_ns)
    plan = InvalidationPlan(
        (
            TenantInvalidate(bump_at_ns, "web"),
            TenantInvalidate(purge_at_ns, "purge"),
        )
    )
    rows: List[Dict[str, object]] = []
    for name in schemes:
        for mode in modes:
            lifecycle = _hint_lifecycle(mode)
            base_overrides: Dict[str, object] = {
                "eviction_policy": "fifo",
                "reclaim_window": 128,
                "lifecycle": lifecycle,
            }
            if name == "Block-Cache":
                shard_cache = media
            else:
                shard_cache = cache_bytes
            cluster = CacheCluster.homogeneous(
                name,
                num_shards,
                media,
                shard_cache,
                file_media_bytes=file_media if name == "File-Cache" else None,
                scale=scale,
                cache_overrides=tuple(sorted(base_overrides.items()))
                + _invalidation_gc_overrides(name),
                cache_stacks=True,
            )
            # Per-layer drop-span counter: subscribing streams records
            # through the callback without capturing them, so the
            # reconciliation costs no memory.  The FTL's engine is born
            # on the shared NULL_TRACER; point it at the device tracer
            # so its drop spans join the same stream.
            drop_spans = {"count": 0}

            def _count_drop(record, _drops=drop_spans):
                if record.op == "drop" and record.layer.startswith("reclaim."):
                    _drops["count"] += 1

            gc_layer = "none"
            for shard in cluster.shards:
                shard_layer, engine = shard.stack.reclaim_engine()
                if engine is None:
                    continue
                gc_layer = shard_layer
                if mode != "off":
                    # Unconditional: the FTL's engine is born on the
                    # shared NULL_TRACER (and deep-copied stacks carry a
                    # private copy of it), the ZTL/F2FS engines already
                    # point here — either way the drop spans must join
                    # the device stream the counter subscribes to.
                    device = shard.stack.substrate["device"]
                    engine.tracer = device.tracer
                    device.tracer.subscribe(_count_drop)
            tenants = _invalidation_tenants(
                offered_kops * 1000,
                requests_per_tenant,
                num_keys,
                seed,
                bump_at_s=bump_at_ns / 1e9,
                storm_at_s=purge_at_ns / 1e9,
                storm_duration_s=storm_duration_frac * duration_ns / 1e9,
            )
            report = Server(
                cluster,
                tenants,
                ServerConfig(max_queue_depth=max_queue_depth),
                invalidations=plan,
            ).run()
            web = next(t for t in report.tenant_rows if t["tenant"] == "web")
            purge = next(t for t in report.tenant_rows if t["tenant"] == "purge")
            shard_rows = report.shard_rows
            gc_stats = [
                shard.stack.reclaim_engine()[1].stats
                for shard in cluster.shards
                if shard.stack.reclaim_engine()[1] is not None
            ]
            rows.append(
                {
                    "scheme": name,
                    "hints": mode,
                    "gc_layer": gc_layer,
                    "num_shards": num_shards,
                    "web_hit_ratio": web["hit_ratio"],
                    "web_p99_us": web["p99_us"],
                    "web_goodput_kops": web["goodput_kops"],
                    "purge_p99_us": purge["p99_us"],
                    "cluster_shed_rate": report.shed_rate,
                    "waf_app_max": max(r["waf_app"] for r in shard_rows),
                    "waf_device_max": max(r["waf_device"] for r in shard_rows),
                    "gc_copied_bytes": sum(s.copied_bytes for s in gc_stats),
                    "gc_migrated_units": sum(s.units_migrated for s in gc_stats),
                    "gc_dropped_units": sum(s.units_dropped for s in gc_stats),
                    "gc_hint_dropped_units": sum(
                        s.hint_dropped_units for s in gc_stats
                    ),
                    "gc_hint_drop_spans": drop_spans["count"],
                    "gc_victims": sum(s.victims_reclaimed for s in gc_stats),
                }
            )
    return rows


def run_hint_smoke(seed: int = 7) -> List[Dict[str, object]]:
    """`repro hint-sweep --smoke`: the full {off, ztl, full} × four-
    scheme grid on two shards with ~3k requests per tenant — twelve
    rows, CI-sized, still exercising every hint path (ZTL drop, F2FS
    block-run drop, FTL discard-ahead) and the span reconciliation."""
    return run_hint_sweep(
        num_shards=2,
        offered_kops=12.0,
        requests_per_tenant=3_000,
        seed=seed,
    )
