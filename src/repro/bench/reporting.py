"""Plain-text and CSV rendering for experiment results.

Each experiment returns a list of dict rows; these helpers print them in
a shape comparable to the paper's tables/figures so EXPERIMENTS.md can
be regenerated mechanically.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence


def _union_columns(rows: List[Dict[str, object]]) -> List[str]:
    """Ordered union of keys across rows, so ragged row sets (e.g.
    serving tenant rows followed by per-shard rows) keep every column."""
    seen: Dict[str, None] = {}
    for row in rows:
        for key in row:
            seen.setdefault(key)
    return list(seen)


# Legacy per-layer reclamation counter names → the uniform gc_* family.
# Each layer historically reported the same three facts (victims
# reclaimed, units migrated, units dropped) under its own spelling, so a
# mixed-scheme table unioned four synonymous columns; canonicalizing at
# render time keeps old row producers working while the table stays one
# column per fact.
GC_COLUMN_ALIASES: Dict[str, str] = {
    "zones_collected": "gc_victims",
    "sections_cleaned": "gc_victims",
    "erased_blocks": "gc_victims",
    "regions_evicted": "gc_victims",
    "regions_migrated": "gc_migrated_units",
    "blocks_migrated": "gc_migrated_units",
    "moved_pages": "gc_migrated_units",
    "regions_dropped": "gc_dropped_units",
    "items_evicted": "gc_dropped_units",
    "gc_zone_resets": "gc_resets",
    "gc_runs": "gc_triggers",
    "throttled_steps": "gc_throttled_steps",
    "copy_throttle_events": "gc_copy_throttle_events",
}


# Tie-break order for conflicting aliases: the alias table's
# declaration order, independent of row dict insertion order.
_ALIAS_RANK: Dict[str, int] = {alias: i for i, alias in enumerate(GC_COLUMN_ALIASES)}


def canonicalize_gc_columns(
    rows: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Fold per-layer GC counter spellings into the ``gc_*`` family.

    A canonical key already present in a row wins over an alias (row
    producers that emit both keep their explicit value); when two
    *aliases* in one row map to the same canonical key, the one earlier
    in :data:`GC_COLUMN_ALIASES` wins — deterministic regardless of the
    row's insertion order.  Rows without any aliased key pass through
    unchanged.
    """
    out: List[Dict[str, object]] = []
    for row in rows:
        if not any(key in GC_COLUMN_ALIASES for key in row):
            out.append(row)
            continue
        new: Dict[str, object] = {}
        # canonical target -> alias that currently supplies its value
        supplied_by: Dict[str, str] = {}
        for key, value in row.items():
            target = GC_COLUMN_ALIASES.get(key, key)
            if target == key:
                new[target] = value
                continue
            if target in row:
                continue  # explicit canonical value wins over any alias
            prev = supplied_by.get(target)
            if prev is None:
                new[target] = value
                supplied_by[target] = key
            elif _ALIAS_RANK[key] < _ALIAS_RANK[prev]:
                new[target] = value
                supplied_by[target] = key
        out.append(new)
    return out


def format_table(
    rows: List[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    rows = canonicalize_gc_columns(rows)
    if columns is None:
        columns = _union_columns(rows)
    rendered: List[List[str]] = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rendered:
        out.write("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) + "\n")
    return out.getvalue().rstrip("\n")


def rows_to_csv(rows: List[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (simple values, no quoting of commas)."""
    if not rows:
        return ""
    rows = canonicalize_gc_columns(rows)
    if columns is None:
        columns = _union_columns(rows)
    lines = [",".join(str(col) for col in columns)]
    for row in rows:
        lines.append(",".join(_cell(row.get(col)) for col in columns))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
