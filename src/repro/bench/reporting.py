"""Plain-text and CSV rendering for experiment results.

Each experiment returns a list of dict rows; these helpers print them in
a shape comparable to the paper's tables/figures so EXPERIMENTS.md can
be regenerated mechanically.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence


def _union_columns(rows: List[Dict[str, object]]) -> List[str]:
    """Ordered union of keys across rows, so ragged row sets (e.g.
    serving tenant rows followed by per-shard rows) keep every column."""
    seen: Dict[str, None] = {}
    for row in rows:
        for key in row:
            seen.setdefault(key)
    return list(seen)


def format_table(
    rows: List[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = _union_columns(rows)
    rendered: List[List[str]] = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rendered:
        out.write("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) + "\n")
    return out.getvalue().rstrip("\n")


def rows_to_csv(rows: List[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (simple values, no quoting of commas)."""
    if not rows:
        return ""
    if columns is None:
        columns = _union_columns(rows)
    lines = [",".join(str(col) for col in columns)]
    for row in rows:
        lines.append(",".join(_cell(row.get(col)) for col in columns))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
