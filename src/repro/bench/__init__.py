"""Benchmark harness: builders for the four scheme stacks and one
experiment function per table/figure in the paper's evaluation.

Every experiment returns structured rows and can print them in the shape
the paper reports; the ``benchmarks/`` pytest-benchmark targets wrap
these functions one-to-one (see DESIGN.md's experiment index).
"""

from repro.bench.schemes import (
    SchemeScale,
    SchemeStack,
    build_block_cache,
    build_file_cache,
    build_region_cache,
    build_zone_cache,
    build_scheme,
    SCHEME_NAMES,
)
from repro.bench.experiments import (
    run_fig2_overall,
    run_fig3_insertion_time,
    run_fig4_op_sweep,
    run_table1_waf,
    run_fig5_rocksdb,
    run_serving_smoke,
    run_serving_sweep,
    run_table2_cache_sizes,
)
from repro.bench.reporting import format_table, rows_to_csv

__all__ = [
    "SchemeScale",
    "SchemeStack",
    "build_block_cache",
    "build_file_cache",
    "build_region_cache",
    "build_zone_cache",
    "build_scheme",
    "SCHEME_NAMES",
    "run_fig2_overall",
    "run_fig3_insertion_time",
    "run_fig4_op_sweep",
    "run_table1_waf",
    "run_fig5_rocksdb",
    "run_serving_smoke",
    "run_serving_sweep",
    "run_table2_cache_sizes",
    "format_table",
    "rows_to_csv",
]
