"""Terminal plotting: ASCII bar charts and line series.

Dependency-free rendering so the CLI can show the *shape* of each figure
(`python -m repro fig2 --plot`) next to the raw rows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

BAR_CHAR = "█"
HALF_CHAR = "▌"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(no data)"
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if peak <= 0:
            filled = 0
        else:
            filled = value / peak * width
        whole = int(filled)
        bar = BAR_CHAR * whole + (HALF_CHAR if filled - whole >= 0.5 else "")
        lines.append(
            f"{str(label).ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)


def line_plot(
    ys: Sequence[float],
    title: str = "",
    height: int = 10,
    width: int = 64,
) -> str:
    """Down-sampled ASCII line plot of one series."""
    if not ys:
        return "(no data)"
    # Down-sample to the plot width by bucket-averaging.
    if len(ys) > width:
        bucket = len(ys) / width
        sampled = [
            sum(ys[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(ys[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    else:
        sampled = list(ys)
    low, high = min(sampled), max(sampled)
    span = high - low or 1.0
    rows = [[" "] * len(sampled) for _ in range(height)]
    for x, value in enumerate(sampled):
        y = int((value - low) / span * (height - 1))
        rows[height - 1 - y][x] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{high:.4g} ┐")
    for row in rows:
        lines.append("      │" + "".join(row))
    lines.append(f"{low:.4g} ┴" + "─" * len(sampled))
    return "\n".join(lines)


def scheme_bars(
    rows: List[Dict[str, object]],
    value_key: str,
    label_key: str = "scheme",
    title: str = "",
    unit: str = "",
) -> str:
    """Bar chart straight from experiment result rows."""
    labels = [str(row[label_key]) for row in rows]
    values = [float(row[value_key]) for row in rows]
    return bar_chart(labels, values, title=title, unit=unit)
