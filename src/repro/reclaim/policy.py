"""Pluggable victim-selection policies behind one scoring protocol.

Every reclamation layer (FTL blocks, ZTL zones, F2FS sections, cache
regions) faces the same question: *which container is cheapest to
reclaim right now?*  The classic answers — greedy (fewest valid units),
cost-benefit (free space gained weighted by age, as in F2FS and the
original LFS cleaner), age-threshold, and a random baseline — differ
only in how they score a candidate.  :class:`VictimPolicy` captures that
interface: ``score(view)`` maps a :class:`VictimView` to an orderable
value (lower = better victim) and ``select`` takes the minimum with
first-candidate tie-breaking, which reproduces the historical per-layer
``min()`` loops bit for bit.
"""

from __future__ import annotations

import abc
from typing import List, NamedTuple, Optional, Sequence

from repro.reclaim.config import ensure_at_least, ensure_choice
from repro.sim.rng import make_rng


class VictimView(NamedTuple):
    """Policy-facing snapshot of one reclaimable container.

    ``victim_id`` is layer-local (block index, zone index, section id,
    region id); ``age`` is in layer ticks since the container was last
    written (0 when the layer does not track recency).  ``group`` is the
    lifetime group the container was allocated from (0 = hottest; layers
    without hot/cold separation leave it 0).
    """

    victim_id: int
    valid_count: int
    valid_fraction: float
    age: int = 0
    group: int = 0


class VictimPolicy(abc.ABC):
    """Scoring interface; lower scores are better victims."""

    name: str = "base"

    @abc.abstractmethod
    def score(self, view: VictimView):
        """Orderable badness of reclaiming this candidate now."""

    def select(self, views: Sequence[VictimView]) -> Optional[int]:
        """Victim id of the best-scoring candidate (first wins ties)."""
        if not views:
            return None
        return min(views, key=self.score).victim_id


class GreedyPolicy(VictimPolicy):
    """Fewest valid units — maximum space reclaimed per migration byte."""

    name = "greedy"

    def score(self, view: VictimView) -> int:
        return view.valid_count


class CostBenefitPolicy(VictimPolicy):
    """LFS/F2FS cost-benefit: ``(1 - u) * age / (1 + u)``, maximized.

    Old sparse containers win over young sparse ones, so hot data gets
    time to die before its container is scrubbed.  Inverted (negated)
    because the shared ``select`` minimizes.
    """

    name = "cost_benefit"

    def score(self, view: VictimView) -> float:
        valid = view.valid_fraction
        age = max(1, view.age)
        if valid >= 1.0:
            return float("inf")
        benefit = (1.0 - valid) * age / (1.0 + valid)
        return -benefit


class AgeThresholdPolicy(VictimPolicy):
    """Greedy restricted to candidates older than a threshold.

    Containers younger than ``age_threshold`` ticks are only taken when
    no old candidate exists — a cruder cousin of cost-benefit that
    avoids scrubbing still-hot containers without tracking utilization.
    """

    name = "age_threshold"

    def __init__(self, age_threshold: int = 8) -> None:
        self.age_threshold = ensure_at_least("age_threshold", age_threshold, 1)

    def score(self, view: VictimView):
        young = 0 if view.age >= self.age_threshold else 1
        return (young, view.valid_count)


class ColdDeferPolicy(VictimPolicy):
    """Lazy hot/cold-aware reclaim: harvest decayed hot zones, defer cold.

    The Z-CacheLib argument (arxiv 2410.11260): once flush-time
    classification separates lifetimes, hot-group containers invalidate
    themselves — waiting turns them into near-empty victims that are
    almost free to reclaim.  Cold-group containers stay valid, so
    copying them moves a nearly full container for no gain; they are
    better left *finished* (sealed, holding stable data) until the
    emergency floor forces the issue.  Score prefers the hottest group
    first and breaks ties greedily, so cold containers are only
    reclaimed when no hot candidate exists.  Group-blind greedy lacks
    exactly this deferral: a cold container with one invalid unit can
    out-score a hot one still mid-decay, and its survivors get recopied
    forever.
    """

    name = "cold_defer"

    def score(self, view: VictimView):
        return (view.group, view.valid_count)


class RandomPolicy(VictimPolicy):
    """Uniform random victim — the ablation baseline every deliberate
    policy must beat.  Seeded, so runs stay reproducible."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = make_rng(seed, "reclaim.policy")

    def score(self, view: VictimView) -> int:
        return 0

    def select(self, views: Sequence[VictimView]) -> Optional[int]:
        if not views:
            return None
        return views[self._rng.randrange(len(views))].victim_id


POLICY_NAMES = ("greedy", "cost_benefit", "age_threshold", "random", "cold_defer")


def make_victim_policy(
    name: str, seed: int = 0, age_threshold: int = 8
) -> VictimPolicy:
    """Factory over :data:`POLICY_NAMES` (the bench/CLI knob surface)."""
    ensure_choice("policy", name, POLICY_NAMES)
    if name == "greedy":
        return GreedyPolicy()
    if name == "cost_benefit":
        return CostBenefitPolicy()
    if name == "age_threshold":
        return AgeThresholdPolicy(age_threshold)
    if name == "cold_defer":
        return ColdDeferPolicy()
    return RandomPolicy(seed)


def first_dead(views: Sequence[VictimView]) -> Optional[int]:
    """Victim id of the first fully-dead candidate, if any.

    A container with zero valid units is free to reclaim — no copies,
    no survivors — so layers that opt into dead-first selection take it
    before consulting the policy score at all.  "First" follows the
    layer's stable candidate order, keeping the choice deterministic.
    Invalidation storms are what make this matter: a namespace bump
    turns whole containers dead at once, and dead-first selection is
    how they sort as zero-valid victims instantly.
    """
    for view in views:
        if view.valid_count == 0:
            return view.victim_id
    return None


def windowed_draw(order_policy, window: int, population: int, rng) -> Optional[int]:
    """Draw a victim from the first ``window`` entries in policy order.

    This is navy's clean-region pool: instead of strictly reclaiming the
    eviction-order head, the victim is drawn (seeded) from a small
    window, leaving straggler regions behind in dying containers.  The
    non-chosen candidates return to the head of the order in their
    original relative order, and the chosen one is left untracked.

    ``order_policy`` is any object with the cache eviction-policy shape
    (``pick_victim`` / ``untrack`` / ``track_front``); ``population``
    bounds the window to the number of tracked entries.
    """
    if window == 1:
        return order_policy.pick_victim()
    candidates: List[int] = []
    removed: List[int] = []
    for _ in range(min(window, population)):
        victim = order_policy.pick_victim()
        if victim is None:
            break
        candidates.append(victim)
        order_policy.untrack(victim)
        removed.append(victim)
    if not candidates:
        return None
    chosen = candidates[rng.randrange(len(candidates))]
    for candidate in reversed(removed):
        if candidate != chosen:
            order_policy.track_front(candidate)
    return chosen
