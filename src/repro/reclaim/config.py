"""Validated knob helpers shared by every reclamation config.

The four reclamation call sites historically repeated the same bounds
checks (``victim_valid_threshold`` in [0, 1], watermarks >= 1, pace >= 1)
with bare ``ValueError``s.  These helpers are the one place those checks
live now; they raise :class:`~repro.errors.ConfigError`, which subclasses
``ValueError`` so existing callers that catch the broader type keep
working.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import ConfigError

Number = TypeVar("Number", int, float)


def ensure_at_least(name: str, value: Number, minimum: Number) -> Number:
    """Validate ``value >= minimum``; returns the value for chaining."""
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


def ensure_between(name: str, value: Number, lo: Number, hi: Number) -> Number:
    """Validate ``lo <= value <= hi``; returns the value for chaining."""
    if not lo <= value <= hi:
        raise ConfigError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def ensure_fraction(name: str, value: float) -> float:
    """Validate a [0, 1] fraction (thresholds, ratios)."""
    return ensure_between(name, value, 0.0, 1.0)


def ensure_choice(name: str, value: str, choices: Sequence[str]) -> str:
    """Validate membership in a closed set of knob values."""
    if value not in choices:
        raise ConfigError(f"{name} must be one of {tuple(choices)}, got {value!r}")
    return value
