"""Unified reclamation framework: one GC engine, four layers.

``repro.reclaim`` factors the garbage-collection machinery that was
previously quadruplicated across the FTL (:mod:`repro.flash.ftl`), the
zone translation layer (:mod:`repro.ztl.gc`), the F2FS cleaner
(:mod:`repro.f2fs.gc`), and cache region reclamation
(:mod:`repro.cache.region_manager`) into one engine with three
pluggable parts:

* :class:`VictimPolicy` — how to score candidates (greedy,
  cost-benefit, age-threshold, random baseline);
* :class:`ReclaimPacer` — when to trigger, how hard to copy, and when
  to panic (watermarks, per-step pace, copy-byte token bucket);
* :class:`ReclaimSource` — the thin per-layer adapter that exposes
  candidates and performs unit migration over the layer's own I/O path.

Every migrate/reset the engine performs is wrapped in a
``reclaim.<layer>`` span on the shared :class:`~repro.sim.io.IoTracer`,
so reclamation traffic is attributable end to end through the
IoPipeline just like host traffic.
"""

from repro.reclaim.config import (
    ensure_at_least,
    ensure_between,
    ensure_choice,
    ensure_fraction,
)
from repro.reclaim.engine import (
    GcHints,
    ReclaimEngine,
    ReclaimSource,
    ReclaimStats,
    UnitOutcome,
)
from repro.reclaim.pacer import AdaptivePacingConfig, PacerConfig, ReclaimPacer
from repro.reclaim.policy import (
    POLICY_NAMES,
    AgeThresholdPolicy,
    ColdDeferPolicy,
    CostBenefitPolicy,
    GreedyPolicy,
    RandomPolicy,
    VictimPolicy,
    VictimView,
    first_dead,
    make_victim_policy,
    windowed_draw,
)

__all__ = [
    "AdaptivePacingConfig",
    "AgeThresholdPolicy",
    "ColdDeferPolicy",
    "CostBenefitPolicy",
    "GcHints",
    "GreedyPolicy",
    "POLICY_NAMES",
    "PacerConfig",
    "RandomPolicy",
    "ReclaimEngine",
    "ReclaimPacer",
    "ReclaimSource",
    "ReclaimStats",
    "UnitOutcome",
    "VictimPolicy",
    "VictimView",
    "ensure_at_least",
    "ensure_between",
    "ensure_choice",
    "ensure_fraction",
    "first_dead",
    "make_victim_policy",
    "windowed_draw",
]
