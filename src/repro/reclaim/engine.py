"""The shared garbage-collection engine all four layers run on.

One loop, four wearers: the FTL drains whole victim blocks inline with
a host write, the ZTL and the F2FS cleaner keep one victim "in
progress" and migrate a paced batch of units per background check, and
the cache evicts whole regions at allocation time.  The engine owns the
loop structure — victim selection through a :class:`~repro.reclaim.
policy.VictimPolicy`, trigger/budget decisions through a
:class:`~repro.reclaim.pacer.ReclaimPacer`, uniform counters in
:class:`ReclaimStats`, and ``reclaim.<layer>`` spans on the shared
:class:`~repro.sim.io.IoTracer` — while a thin :class:`ReclaimSource`
adapter per layer supplies candidates and performs the actual unit
migration (whose device traffic already rides the IoPipeline).
"""

from __future__ import annotations

import abc
import contextlib
import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.reclaim.pacer import ReclaimPacer
from repro.reclaim.policy import VictimPolicy, VictimView, first_dead
from repro.sim.io import NULL_TRACER, IoTracer
from repro.sim.stats import LatencyRecorder


class UnitOutcome(enum.Enum):
    """What happened to one pending unit during a reclaim step."""

    MIGRATED = "migrated"
    DROPPED = "dropped"
    # Stale entry (invalidated since the victim was chosen): costs no
    # step budget, mirrors every layer's historical ``continue`` path.
    SKIPPED = "skipped"
    # Transient device error: the unit is re-queued and the step ends.
    RETRY = "retry"


@dataclass
class GcHints:
    """The §3.4 cache→GC hint hooks, as one first-class protocol.

    ``migration_worth(region_id)`` asks the cache whether a region's
    survivors are worth copying; ``on_drop(region_id)`` tells it the
    device dropped the region's units instead (so the index can purge
    the condemned keys).  Sources that hold hints may answer
    ``UnitOutcome.DROPPED`` from ``migrate_unit`` without touching the
    device — the engine accounts those as ``hint_dropped_units``.
    """

    migration_worth: Callable[[int], bool]
    on_drop: Callable[[int], None]


class ReclaimSource(abc.ABC):
    """Layer adapter the engine drives.

    ``name`` labels the layer's ``reclaim.<name>`` spans and bench
    columns; ``unit_bytes`` is the payload size of one migrated unit
    (page/block/region) for copied-byte accounting and token pacing.
    ``hints``, when bound, carries the cache's §3.4 drop hints — every
    ``DROPPED`` outcome from a hint-bearing source counts as a hint
    drop in :class:`ReclaimStats`.
    """

    name: str = "source"
    unit_bytes: int = 0
    hints: Optional[GcHints] = None

    @abc.abstractmethod
    def free_units(self) -> int:
        """Free containers available (watermark input)."""

    @abc.abstractmethod
    def candidate_views(self) -> List[VictimView]:
        """Reclaimable containers, in the layer's stable candidate order."""

    @abc.abstractmethod
    def pending_units(self, victim_id: int) -> List[int]:
        """Unit work-list for a freshly chosen victim.

        The engine pops from the *end*; sources that must process in a
        specific order return the list accordingly reversed.
        """

    @abc.abstractmethod
    def migrate_unit(self, victim_id: int, unit: int) -> UnitOutcome:
        """Relocate (or drop) one unit; exceptions propagate."""

    @abc.abstractmethod
    def release_victim(self, victim_id: int) -> None:
        """All units processed: erase/reset/wipe the container."""

    def flush_step(self) -> None:
        """End-of-step hook for sources that batch their migrations."""

    def step_span(self, tracer: IoTracer, victim_id: int):
        """Optional legacy span wrapped inside the engine's reclaim span
        (the F2FS cleaner keeps its ``f2fs.gc`` span this way)."""
        return contextlib.nullcontext()


@dataclass
class ReclaimStats:
    """Uniform per-layer reclamation counters (the ``gc_*`` family)."""

    victims_reclaimed: int = 0
    units_migrated: int = 0
    units_dropped: int = 0
    # Subset of ``units_dropped`` caused by §3.4 cache hints (a
    # hint-bearing source answered DROPPED from ``migrate_unit``).
    hint_dropped_units: int = 0
    copied_bytes: int = 0
    retries: int = 0
    # Distinct victims started (trigger events that found work).
    triggers: int = 0
    fg_collections: int = 0
    stall: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("gc_stall"))

    @property
    def stall_us_p99(self) -> float:
        return self.stall.p99() / 1000


class ReclaimEngine:
    """Victim lifecycle + paced migration loop over a :class:`ReclaimSource`."""

    def __init__(
        self,
        source: ReclaimSource,
        policy: VictimPolicy,
        pacer: ReclaimPacer,
        tracer: IoTracer = NULL_TRACER,
        clock=None,
        dead_first: bool = False,
    ) -> None:
        self.source = source
        self.policy = policy
        self.pacer = pacer
        self.tracer = tracer
        self.clock = clock
        # Opt-in lifecycle integration: zero-valid candidates (whole
        # containers killed by deletes/TTL/namespace bumps) are taken
        # before the policy score or the pacer's valid-threshold gate —
        # they cost nothing to reclaim.  Off by default: cost-benefit
        # and cold-defer deliberately order some dead containers late,
        # and the golden rows lock that behavior.
        self.dead_first = dead_first
        self.stats = ReclaimStats()
        self._victim: Optional[int] = None
        self._pending: List[int] = []

    # --- state ---------------------------------------------------------------------

    @property
    def victim(self) -> Optional[int]:
        """Victim currently in progress, if any."""
        return self._victim

    def abandon_victim(self, victim_id: Optional[int] = None) -> None:
        """Forget the in-progress victim (its container died or the
        layer's bookkeeping was rebuilt); matching id or None = any."""
        if victim_id is None or self._victim == victim_id:
            self._victim = None
            self._pending = []

    # --- policy --------------------------------------------------------------------

    def needs_reclaim(self) -> bool:
        return self.pacer.should_trigger(self.source.free_units())

    def pick_victim(self) -> Optional[int]:
        """Best candidate by policy score, if the pacer accepts it.

        A rejected best candidate defers collection entirely (no
        second-best fallback): rewrites keep concentrating dead units
        into old containers, so waiting is what keeps WA low.
        """
        views = self.source.candidate_views()
        if not views:
            return None
        if self.dead_first:
            dead = first_dead(views)
            if dead is not None:
                return dead
        chosen = self.policy.select(views)
        if chosen is None:
            return None
        view = next(v for v in views if v.victim_id == chosen)
        if not self.pacer.accepts(view.valid_fraction, self.source.free_units()):
            return None
        if view.valid_fraction <= self.pacer.config.victim_valid_threshold:
            return chosen
        # Emergency admission: the policy's pick is over the valid-data
        # threshold, so it may cost a whole container of survivor slots
        # without freeing net space.  Take the least-valid candidate
        # regardless of policy — the historical guarantee that emergency
        # collection always makes forward progress.
        return min(views, key=lambda v: v.valid_fraction).victim_id

    # --- execution -----------------------------------------------------------------

    def background_step(self) -> int:
        """Paced check after a foreground write; returns units processed.

        With adaptive pacing attached, each step's wall time is recorded
        as foreground stall (these checks run inline with host writes)
        and the pacer's AIMD controller observes the step — that one
        hook is how every layer on the engine inherits the GC↔QoS loop.
        """
        if self._victim is None and not self.needs_reclaim():
            return 0
        pacer = self.pacer
        started = (
            self.clock.now
            if self.clock is not None and pacer.adaptive is not None
            else None
        )
        processed = self._step(pacer.step_budget(self.source.free_units()))
        if started is not None:
            pacer.stall.record(self.clock.now - started)
        pacer.observe_step()
        return processed

    def collect(self, max_victims: int = 1, max_steps: Optional[int] = None) -> int:
        """Foreground collection: finish up to ``max_victims`` whole
        victims now; returns how many were reclaimed.

        ``max_steps`` bounds the retry loop per victim so a persistently
        faulting device cannot livelock the foreground path.  Wall time
        spent here is recorded as foreground stall when a clock is wired.
        """
        started = self.clock.now if self.clock is not None else None
        self.stats.fg_collections += 1
        reclaimed = 0
        try:
            for _ in range(max_victims):
                before = self.stats.victims_reclaimed
                self._step(None)
                steps = 0
                while self._victim is not None and (
                    max_steps is None or steps < max_steps
                ):
                    self._step(None)
                    steps += 1
                if self.stats.victims_reclaimed == before:
                    break
                reclaimed += 1
                if not self.needs_reclaim():
                    break
        finally:
            if started is not None:
                stalled = self.clock.now - started
                self.stats.stall.record(stalled)
                if self.pacer.adaptive is not None:
                    # Emergency stalls are exactly the signal the AIMD
                    # controller must clamp on; feed its window too.
                    self.pacer.stall.record(stalled)
        return reclaimed

    def drain_to_target(self) -> int:
        """Synchronous whole-victim reclaim until free units reach the
        pacer's target watermark (the FTL's low→high drain)."""
        reclaimed = 0
        while not self.pacer.reached_target(self.source.free_units()):
            before = self.stats.victims_reclaimed
            self._step(None)
            while self._victim is not None:
                self._step(None)
            if self.stats.victims_reclaimed == before:
                break
            reclaimed += 1
        return reclaimed

    def _step(self, budget: Optional[int]) -> int:
        if self._victim is None:
            self._victim = self.pick_victim()
            if self._victim is None:
                return 0
            self._pending = list(self.source.pending_units(self._victim))
            self.stats.triggers += 1
        victim = self._victim
        source = self.source
        processed = 0
        self.pacer.refill()
        with self.tracer.span("reclaim." + source.name, "migrate", zone=victim):
            with source.step_span(self.tracer, victim):
                while self._pending and (budget is None or processed < budget):
                    if not self.pacer.try_reserve(source.unit_bytes):
                        break
                    unit = self._pending.pop()
                    outcome = source.migrate_unit(victim, unit)
                    if outcome is UnitOutcome.SKIPPED:
                        continue
                    if outcome is UnitOutcome.RETRY:
                        # Nothing was mutated: put the unit back and give
                        # up this step; the next check resumes here.
                        self._pending.append(unit)
                        self.stats.retries += 1
                        source.flush_step()
                        return processed
                    if outcome is UnitOutcome.MIGRATED:
                        self.stats.units_migrated += 1
                        self.stats.copied_bytes += source.unit_bytes
                        self.pacer.spend(source.unit_bytes)
                    else:
                        self.stats.units_dropped += 1
                        if source.hints is not None:
                            self.stats.hint_dropped_units += 1
                            # One span per hint drop so the sweep can
                            # reconcile hint_dropped_units against the
                            # trace stream per layer.
                            with self.tracer.span(
                                "reclaim." + source.name, "drop", zone=victim
                            ):
                                pass
                    processed += 1
                source.flush_step()
        if not self._pending:
            finished = self._victim
            self._victim = None
            with self.tracer.span("reclaim." + source.name, "reset", zone=finished):
                source.release_victim(finished)
            self.stats.victims_reclaimed += 1
        return processed
