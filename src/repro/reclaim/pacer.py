"""Trigger watermarks, copy-I/O token bucket, and stall accounting.

Each reclamation layer historically hard-wired *when* to collect (a free
watermark), *how hard* (a per-step pace), and *when to panic* (emergency
foreground collection).  :class:`ReclaimPacer` owns those three levers
behind one validated config so the bench can sweep them uniformly:

* ``background``/``target`` — reclaim starts when free containers drop
  below ``background`` and synchronous drains stop at ``target`` (the
  FTL's low/high watermark pair; layers that pace incrementally use
  ``target == background``).
* ``urgent`` — below this free level, background steps ignore the pace
  budget and run unbounded (disabled at -1, the bit-identical default).
* ``emergency`` — at or below this free level, victim acceptance ignores
  ``victim_valid_threshold`` so forward progress is guaranteed.
* ``pace_units`` — units migrated per background step (0 = unbounded).
* ``copy_tokens_per_step`` — optional token bucket on copy *bytes*: each
  step refills the bucket and migrations stop when it is dry, bounding
  GC bandwidth independently of unit count (0 = unlimited, the default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.reclaim.config import (
    ensure_at_least,
    ensure_between,
    ensure_fraction,
)
from repro.sim.stats import LatencyRecorder


@dataclass(frozen=True)
class PacerConfig:
    """Watermark + pacing knobs; defaults are neutral (no throttling)."""

    background: int = 2
    target: int = 2
    urgent: int = -1
    emergency: int = 0
    victim_valid_threshold: float = 1.0
    pace_units: int = 0
    copy_tokens_per_step: int = 0
    copy_bucket_cap: int = 0

    def __post_init__(self) -> None:
        ensure_at_least("background", self.background, 1)
        ensure_at_least("target", self.target, self.background)
        ensure_at_least("urgent", self.urgent, -1)
        ensure_between("emergency", self.emergency, 0, self.background)
        ensure_fraction("victim_valid_threshold", self.victim_valid_threshold)
        ensure_at_least("pace_units", self.pace_units, 0)
        ensure_at_least("copy_tokens_per_step", self.copy_tokens_per_step, 0)
        ensure_at_least("copy_bucket_cap", self.copy_bucket_cap, 0)


class ReclaimPacer:
    """Runtime side of :class:`PacerConfig`: bucket state + stall stats."""

    def __init__(self, config: PacerConfig) -> None:
        self.config = config
        self._bucket_cap = config.copy_bucket_cap or 4 * config.copy_tokens_per_step
        self._tokens = self._bucket_cap
        self.throttled_steps = 0
        # Foreground-stall accounting: wall time (ns) host operations
        # spent blocked on emergency/inline collection.
        self.stall = LatencyRecorder("reclaim_stall")

    # --- watermark decisions -----------------------------------------------------

    def should_trigger(self, free_units: int) -> bool:
        return free_units < self.config.background

    def reached_target(self, free_units: int) -> bool:
        return free_units >= self.config.target

    def accepts(self, valid_fraction: float, free_units: int) -> bool:
        """Is this victim worth taking at the current free level?

        Above the emergency level only victims under the valid-data
        threshold qualify — deferring lets invalidations keep
        concentrating in old containers, which is what keeps WA low.
        """
        if valid_fraction <= self.config.victim_valid_threshold:
            return True
        return free_units <= self.config.emergency

    def level(self, free_units: int) -> str:
        """Pressure level name for telemetry: idle/background/urgent/emergency."""
        if free_units <= self.config.emergency:
            return "emergency"
        if 0 <= self.config.urgent and free_units <= self.config.urgent:
            return "urgent"
        if free_units < self.config.background:
            return "background"
        return "idle"

    # --- per-step budgets ---------------------------------------------------------

    def step_budget(self, free_units: int) -> Optional[int]:
        """Units this background step may process (None = unbounded)."""
        if self.config.pace_units <= 0:
            return None
        if 0 <= self.config.urgent and free_units <= self.config.urgent:
            return None
        return self.config.pace_units

    def refill(self) -> None:
        if self.config.copy_tokens_per_step > 0:
            self._tokens = min(
                self._bucket_cap, self._tokens + self.config.copy_tokens_per_step
            )

    def try_reserve(self, nbytes: int) -> bool:
        """May a migration of ``nbytes`` proceed under the copy budget?"""
        if self.config.copy_tokens_per_step <= 0:
            return True
        if self._tokens >= nbytes:
            return True
        self.throttled_steps += 1
        return False

    def spend(self, nbytes: int) -> None:
        if self.config.copy_tokens_per_step > 0:
            self._tokens -= nbytes

    @property
    def copy_tokens(self) -> int:
        return self._tokens
