"""Trigger watermarks, copy-I/O token bucket, and stall accounting.

Each reclamation layer historically hard-wired *when* to collect (a free
watermark), *how hard* (a per-step pace), and *when to panic* (emergency
foreground collection).  :class:`ReclaimPacer` owns those three levers
behind one validated config so the bench can sweep them uniformly:

* ``background``/``target`` — reclaim starts when free containers drop
  below ``background`` and synchronous drains stop at ``target`` (the
  FTL's low/high watermark pair; layers that pace incrementally use
  ``target == background``).
* ``urgent`` — below this free level, background steps ignore the pace
  budget and run unbounded (disabled at -1, the bit-identical default).
* ``emergency`` — at or below this free level, victim acceptance ignores
  ``victim_valid_threshold`` so forward progress is guaranteed.
* ``pace_units`` — units migrated per background step (0 = unbounded).
* ``copy_tokens_per_step`` — optional token bucket on copy *bytes*: each
  step refills the bucket and migrations stop when it is dry, bounding
  GC bandwidth independently of unit count (0 = unlimited, the default).

On top of the static levers sits the optional :class:`AdaptivePacing`
controller (the GC↔QoS loop): AIMD on the observed foreground stall —
additive relax of ``pace_units``/``copy_tokens_per_step`` while stall
p99 is under the layer's ``stall_slo_ns`` budget, multiplicative clamp
when it is over — bounded by a floor/ceiling derived from the static
config.  With no controller attached the pacer is exactly the static
one, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.reclaim.config import (
    ensure_at_least,
    ensure_between,
    ensure_fraction,
)
from repro.sim.stats import LatencyRecorder


@dataclass(frozen=True)
class AdaptivePacingConfig:
    """AIMD shape for the adaptive reclaim-pacing controller.

    ``stall_slo_ns`` is the layer's foreground-stall budget (typically a
    fraction of the tenant latency SLO the fleet serves under).  Every
    ``interval_steps`` background steps the controller compares the
    windowed stall p99 against it: under budget, ``pace_units`` grows by
    ``increase_units`` (and the copy-token refill by an eighth of its
    static value); over budget, both are cut by ``decrease_factor``.
    The runtime values stay inside [static/``max_scale``, static ×
    ``max_scale``] so a misbehaving signal can never wedge or unleash
    reclamation entirely.

    ``signal`` picks what the controller compares against the budget:
    ``"stall"`` (default) is the device-side foreground stall the
    reclamation layer inflicted; ``"e2e_p99"`` is the tenant-observed
    end-to-end service latency fed in through
    :meth:`ReclaimPacer.note_external_latency` — closing the loop on
    what the SLO actually covers instead of a device-side proxy.  With
    the external signal selected but no samples fed in a window, the
    controller treats the interval as under budget (no news is good
    news, matching the stall signal's empty-window behaviour).
    """

    stall_slo_ns: int
    interval_steps: int = 32
    increase_units: int = 1
    decrease_factor: float = 0.5
    max_scale: int = 4
    min_pace_units: int = 1
    signal: str = "stall"

    SIGNAL_CHOICES = ("stall", "e2e_p99")

    def __post_init__(self) -> None:
        ensure_at_least("stall_slo_ns", self.stall_slo_ns, 1)
        if self.signal not in self.SIGNAL_CHOICES:
            raise ValueError(
                f"signal must be one of {self.SIGNAL_CHOICES}, got {self.signal!r}"
            )
        ensure_at_least("interval_steps", self.interval_steps, 1)
        ensure_at_least("increase_units", self.increase_units, 1)
        ensure_between("decrease_factor", self.decrease_factor, 0.01, 0.99)
        ensure_at_least("max_scale", self.max_scale, 1)
        ensure_at_least("min_pace_units", self.min_pace_units, 1)


@dataclass(frozen=True)
class PacerConfig:
    """Watermark + pacing knobs; defaults are neutral (no throttling).

    ``copy_bucket_cap`` is ``None`` for the default cap (4 ×
    ``copy_tokens_per_step``); an explicit cap must be able to hold at
    least one refill (``>= copy_tokens_per_step``) and is ignored while
    the bucket is disabled (``copy_tokens_per_step == 0``).
    """

    background: int = 2
    target: int = 2
    urgent: int = -1
    emergency: int = 0
    victim_valid_threshold: float = 1.0
    pace_units: int = 0
    copy_tokens_per_step: int = 0
    copy_bucket_cap: Optional[int] = None
    adaptive: Optional[AdaptivePacingConfig] = None

    def __post_init__(self) -> None:
        ensure_at_least("background", self.background, 1)
        ensure_at_least("target", self.target, self.background)
        ensure_at_least("urgent", self.urgent, -1)
        ensure_between("emergency", self.emergency, 0, self.background)
        ensure_fraction("victim_valid_threshold", self.victim_valid_threshold)
        ensure_at_least("pace_units", self.pace_units, 0)
        ensure_at_least("copy_tokens_per_step", self.copy_tokens_per_step, 0)
        if self.copy_bucket_cap is not None and self.copy_tokens_per_step > 0:
            ensure_at_least(
                "copy_bucket_cap", self.copy_bucket_cap, self.copy_tokens_per_step
            )

    @property
    def bucket_cap(self) -> int:
        if self.copy_bucket_cap is None:
            return 4 * self.copy_tokens_per_step
        return self.copy_bucket_cap


class ReclaimPacer:
    """Runtime side of :class:`PacerConfig`: bucket state + stall stats.

    ``pace_units`` and ``copy_tokens_per_step`` are *runtime* copies of
    the static config; with an :class:`AdaptivePacingConfig` attached
    (at construction, via the config, or later through
    :meth:`enable_adaptive`) the AIMD controller moves them between
    adjustment intervals.  Without one they never change.
    """

    def __init__(
        self,
        config: PacerConfig,
        adaptive: Optional[AdaptivePacingConfig] = None,
    ) -> None:
        self.config = config
        self._bucket_cap = config.bucket_cap
        self._tokens = self._bucket_cap
        # Adaptive-pacing runtime values (static unless a controller runs).
        self.pace_units = config.pace_units
        self.copy_tokens_per_step = config.copy_tokens_per_step
        self.adaptive = adaptive if adaptive is not None else config.adaptive
        self._steps_since_adjust = 0
        # Distinct steps that hit the copy budget vs raw per-unit
        # rejections (one throttled step rejects every remaining unit).
        self.throttled_steps = 0
        self.copy_throttle_events = 0
        self._step_throttled = False
        # AIMD telemetry: decisions taken and how many were clamps.
        self.pace_adjustments = 0
        self.pace_clamps = 0
        # Foreground-stall accounting: wall time (ns) host operations
        # spent blocked on reclamation, windowed per adjustment interval.
        self.stall = LatencyRecorder("reclaim_stall")
        # Tenant-observed end-to-end latency window for the "e2e_p99"
        # adaptive signal; fed by the serving layer, never by the engine.
        self.external = LatencyRecorder("e2e_latency")

    # --- watermark decisions -----------------------------------------------------

    def should_trigger(self, free_units: int) -> bool:
        return free_units < self.config.background

    def reached_target(self, free_units: int) -> bool:
        return free_units >= self.config.target

    def accepts(self, valid_fraction: float, free_units: int) -> bool:
        """Is this victim worth taking at the current free level?

        Above the emergency level only victims under the valid-data
        threshold qualify — deferring lets invalidations keep
        concentrating in old containers, which is what keeps WA low.
        """
        if valid_fraction <= self.config.victim_valid_threshold:
            return True
        return free_units <= self.config.emergency

    def level(self, free_units: int) -> str:
        """Pressure level name for telemetry: idle/background/urgent/emergency."""
        if free_units <= self.config.emergency:
            return "emergency"
        if 0 <= self.config.urgent and free_units <= self.config.urgent:
            return "urgent"
        if free_units < self.config.background:
            return "background"
        return "idle"

    # --- per-step budgets ---------------------------------------------------------

    def step_budget(self, free_units: int) -> Optional[int]:
        """Units this background step may process (None = unbounded)."""
        if self.pace_units <= 0:
            return None
        if 0 <= self.config.urgent and free_units <= self.config.urgent:
            return None
        return self.pace_units

    def refill(self) -> None:
        self._step_throttled = False
        if self.copy_tokens_per_step > 0:
            self._tokens = min(
                self._bucket_cap, self._tokens + self.copy_tokens_per_step
            )

    def try_reserve(self, nbytes: int) -> bool:
        """May a migration of ``nbytes`` proceed under the copy budget?

        A unit larger than the whole bucket is granted whenever the
        bucket is full — the balance goes negative and is paid back by
        later refills — so an oversized migration unit throttles the
        *rate* of reclamation instead of wedging it forever.
        """
        if self.copy_tokens_per_step <= 0:
            return True
        if self._tokens >= nbytes or self._tokens >= self._bucket_cap:
            return True
        self.copy_throttle_events += 1
        if not self._step_throttled:
            self._step_throttled = True
            self.throttled_steps += 1
        return False

    def spend(self, nbytes: int) -> None:
        if self.copy_tokens_per_step > 0:
            self._tokens -= nbytes

    @property
    def copy_tokens(self) -> int:
        return self._tokens

    @property
    def bucket_cap(self) -> int:
        return self._bucket_cap

    # --- adaptive control ---------------------------------------------------------

    def enable_adaptive(self, adaptive: AdaptivePacingConfig) -> None:
        """Attach (or replace) the AIMD controller at runtime."""
        self.adaptive = adaptive
        self._steps_since_adjust = 0

    def note_external_latency(self, latency_ns: int) -> None:
        """Feed one tenant-observed e2e latency sample (``"e2e_p99"``).

        Cheap no-op unless an adaptive controller consuming the external
        signal is attached, so serving loops can call it unconditionally
        per completion without perturbing static configurations.
        """
        if self.adaptive is not None and self.adaptive.signal == "e2e_p99":
            self.external.record(latency_ns)

    def observe_step(self) -> None:
        """Controller hook the engine calls once per background step.

        Every ``interval_steps`` calls, the windowed p99 of the selected
        signal (device-side stall or tenant-fed e2e latency) is compared
        against the SLO budget and the runtime pace is adjusted; the
        window then resets so the controller tracks the *current*
        interference regime, not the whole run.
        """
        if self.adaptive is None:
            return
        self._steps_since_adjust += 1
        if self._steps_since_adjust < self.adaptive.interval_steps:
            return
        self._steps_since_adjust = 0
        window = (
            self.external if self.adaptive.signal == "e2e_p99" else self.stall
        )
        over = window.count > 0 and window.p99() > self.adaptive.stall_slo_ns
        self._adjust(over)
        window.reset()

    def _adjust(self, over_budget: bool) -> None:
        adaptive = self.adaptive
        assert adaptive is not None
        self.pace_adjustments += 1
        if over_budget:
            self.pace_clamps += 1
        static_pace = self.config.pace_units
        if static_pace > 0:
            floor = max(adaptive.min_pace_units, static_pace // adaptive.max_scale)
            ceiling = static_pace * adaptive.max_scale
            if over_budget:
                self.pace_units = max(
                    floor, int(self.pace_units * adaptive.decrease_factor)
                )
            else:
                self.pace_units = min(
                    ceiling, self.pace_units + adaptive.increase_units
                )
        static_tokens = self.config.copy_tokens_per_step
        if static_tokens > 0:
            floor = max(1, static_tokens // adaptive.max_scale)
            # Refilling more than the bucket holds is meaningless, so the
            # cap doubles as the refill ceiling.
            ceiling = min(self._bucket_cap, static_tokens * adaptive.max_scale)
            if over_budget:
                self.copy_tokens_per_step = max(
                    floor,
                    int(self.copy_tokens_per_step * adaptive.decrease_factor),
                )
            else:
                self.copy_tokens_per_step = min(
                    ceiling,
                    self.copy_tokens_per_step + max(1, static_tokens // 8),
                )
