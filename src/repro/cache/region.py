"""Region state: the in-memory fill buffer and per-region metadata.

A *region* is CacheLib's on-flash management unit.  New entries are
packed into an in-memory :class:`RegionBuffer` ("a larger region size
requires setting up a larger region buffer in memory", §3.2); when the
buffer cannot fit the next entry it is flushed to the backend and
sealed.  :class:`RegionMeta` tracks which keys currently live in a
sealed region so that whole-region eviction can drop exactly those index
entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.cache.item import EntryCodec, EntryLocation


class RegionBuffer:
    """Append-only buffer for the region currently being filled."""

    def __init__(
        self,
        region_id: int,
        capacity: int,
        opened_at_ns: int,
        checksums: bool = False,
        salt: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.region_id = region_id
        self.capacity = capacity
        self.opened_at_ns = opened_at_ns
        # Per-item CRC protection; ``salt`` is the region generation the
        # checksums are bound to (see EntryCodec.scan_region).
        self.checksums = checksums
        self.salt = salt
        self._buffer = bytearray(capacity)
        self._used = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def remaining(self) -> int:
        return self.capacity - self._used

    def fits(self, entry_bytes: int) -> bool:
        return entry_bytes <= self.remaining

    def append(self, key: bytes, value: bytes, expiry_ns: int = 0) -> EntryLocation:
        """Pack an entry; returns its location within this (open) region."""
        blob = EntryCodec.encode(
            key, value, expiry_ns, checksum=self.checksums, salt=self.salt
        )
        if len(blob) > self.remaining:
            raise ValueError(
                f"entry of {len(blob)}B does not fit ({self.remaining}B left)"
            )
        offset = self._used
        self._buffer[offset : offset + len(blob)] = blob
        self._used += len(blob)
        return EntryLocation(self.region_id, offset, len(blob))

    def read(self, offset: int, length: int) -> bytes:
        """Serve a read from the open buffer (CacheLib's read-from-buffer)."""
        if offset + length > self._used:
            raise ValueError("read beyond buffered data")
        return bytes(self._buffer[offset : offset + length])

    def finalize(self) -> bytes:
        """Zero-padded payload of exactly ``capacity`` bytes for the flush."""
        return bytes(self._buffer)


@dataclass
class RegionMeta:
    """Bookkeeping for a sealed on-flash region."""

    region_id: int
    sealed_seq: int = 0
    keys: Set[bytes] = field(default_factory=set)
    fill_duration_ns: int = 0
    # Generation salt the region's entries were checksummed with (0 when
    # checksums are off) — needed to verify reads after a warm restart.
    salt: int = 0
    # Per-key on-flash entry sizes, maintained by the seal/recovery
    # paths so the liveness ledger can account removals in bytes (keys
    # without a recorded size account as 0 — older snapshots).
    entry_bytes: Dict[bytes, int] = field(default_factory=dict)
    live_bytes: int = 0
    dead_bytes: int = 0

    @property
    def valid_items(self) -> int:
        return len(self.keys)

    def note_inserted(self, key: bytes, nbytes: int = 0) -> None:
        self.keys.add(key)
        if nbytes:
            self.entry_bytes[key] = nbytes
            self.live_bytes += nbytes

    def note_removed(self, key: bytes) -> Optional[int]:
        """Forget a key; returns its entry size if it was live, else None."""
        if key not in self.keys:
            return None
        self.keys.discard(key)
        nbytes = self.entry_bytes.pop(key, 0)
        self.live_bytes -= nbytes
        self.dead_bytes += nbytes
        return nbytes
