"""Region lifecycle: allocation, sealing, whole-region eviction.

CacheLib "evicts entire regions rather than individual cache objects" to
amortize flash GC cost (§2.1).  The manager owns the fixed pool of
region ids, the sealed-region eviction order, and the per-region key
sets the engine needs to purge the index when a region is reclaimed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cache.eviction import make_eviction_policy
from repro.cache.region import RegionMeta
from repro.sim.rng import make_rng


class RegionManager:
    """Tracks every region's state: free → filling → sealed → (evicted).

    ``reclaim_window > 1`` models navy's clean-region pool: the victim is
    drawn (deterministically seeded) from the first ``reclaim_window``
    regions in policy order rather than strictly the head.
    """

    def __init__(
        self,
        num_regions: int,
        eviction_policy: str = "lru",
        reclaim_window: int = 1,
        seed: int = 97,
    ) -> None:
        if num_regions < 2:
            raise ValueError("need at least 2 regions")
        if reclaim_window < 1:
            raise ValueError("reclaim_window must be >= 1")
        self.num_regions = num_regions
        self.reclaim_window = reclaim_window
        self._free: List[int] = list(range(num_regions))
        self._sealed: Dict[int, RegionMeta] = {}
        self._quarantined: Set[int] = set()
        self._policy = make_eviction_policy(eviction_policy)
        self._rng = make_rng(seed, "reclaim")
        self._seal_seq = 0
        self.regions_evicted = 0
        self.items_evicted = 0

    # --- queries ---------------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def sealed_count(self) -> int:
        return len(self._sealed)

    def meta(self, region_id: int) -> Optional[RegionMeta]:
        return self._sealed.get(region_id)

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)

    def is_quarantined(self, region_id: int) -> bool:
        return region_id in self._quarantined

    # --- lifecycle ---------------------------------------------------------------

    def allocate(self) -> Tuple[int, Set[bytes]]:
        """Take a region for filling.

        Returns ``(region_id, evicted_keys)``: if the free pool is empty,
        the eviction policy's victim is reclaimed and every key still
        living in it is returned so the engine can drop the index entries
        (this is the hit-ratio cost of large regions, §3.2).
        """
        if self._free:
            return self._free.pop(0), set()
        victim = self._pick_windowed_victim()
        if victim is None:
            raise RuntimeError("no sealed region to evict — engine bug")
        meta = self._sealed.pop(victim)
        self._policy.untrack(victim)
        evicted = set(meta.keys)
        self.regions_evicted += 1
        self.items_evicted += len(evicted)
        return victim, evicted

    def seal(self, meta: RegionMeta) -> None:
        """A filled region becomes evictable."""
        self._seal_seq += 1
        meta.sealed_seq = self._seal_seq
        self._sealed[meta.region_id] = meta
        self._policy.track(meta.region_id)

    def touch(self, region_id: int) -> None:
        """Promote on read hit (LRU policy only reacts)."""
        self._policy.touch(region_id)

    def quarantine(self, region_id: int) -> None:
        """Pull a region out of circulation permanently (dead media).

        The region leaves the free pool and the eviction order; it is
        never allocated again.  Capacity shrinks — graceful degradation
        instead of crashing on every flush that lands on bad flash.
        """
        if region_id in self._quarantined:
            return
        self._quarantined.add(region_id)
        if region_id in self._free:
            self._free.remove(region_id)
        if self._sealed.pop(region_id, None) is not None:
            self._policy.untrack(region_id)

    def _pick_windowed_victim(self) -> Optional[int]:
        if self.reclaim_window == 1:
            return self._policy.pick_victim()
        # Draw from the first `window` regions in policy order.
        candidates: List[int] = []
        removed: List[int] = []
        for _ in range(min(self.reclaim_window, len(self._sealed))):
            victim = self._policy.pick_victim()
            if victim is None:
                break
            candidates.append(victim)
            self._policy.untrack(victim)
            removed.append(victim)
        # Restore policy order for the non-chosen candidates (they go
        # back to the head region of the order by re-tracking oldest-last
        # is wrong for FIFO; instead re-track all, then untrack chosen).
        if not candidates:
            return None
        chosen = candidates[self._rng.randrange(len(candidates))]
        # Non-chosen candidates return to the eviction end in their
        # original relative order (restore back-to-front).
        for region_id in reversed(removed):
            if region_id != chosen:
                self._policy.track_front(region_id)
        return chosen

    def eviction_position(self, region_id: int) -> Optional[float]:
        """Where a sealed region sits in the eviction order.

        0.0 means it is the next victim, values near 1.0 mean it was
        sealed recently; None if the region is not sealed.  This is the
        cache-side knowledge the paper's §3.4 co-design feeds to zone GC:
        regions about to be evicted are not worth migrating.
        """
        order = self._policy.order()
        if region_id not in self._sealed or not order:
            return None
        try:
            index = order.index(region_id)
        except ValueError:
            return None
        if len(order) == 1:
            return 0.0
        return index / (len(order) - 1)

    def note_key_removed(self, region_id: int, key: bytes) -> None:
        """A key was deleted/overwritten; forget it in its region's meta."""
        meta = self._sealed.get(region_id)
        if meta is not None:
            meta.note_removed(key)

    def __repr__(self) -> str:
        return (
            f"RegionManager(free={len(self._free)}, sealed={len(self._sealed)}, "
            f"evicted={self.regions_evicted})"
        )
