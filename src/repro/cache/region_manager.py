"""Region lifecycle: allocation, sealing, whole-region eviction.

CacheLib "evicts entire regions rather than individual cache objects" to
amortize flash GC cost (§2.1).  The manager owns the fixed pool of
region ids, the sealed-region eviction order, and the per-region key
sets the engine needs to purge the index when a region is reclaimed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cache.eviction import make_eviction_policy
from repro.cache.lifecycle import LivenessLedger
from repro.cache.region import RegionMeta
from repro.reclaim import ReclaimStats, ensure_at_least, windowed_draw
from repro.sim.rng import make_rng


class RegionManager:
    """Tracks every region's state: free → filling → sealed → (evicted).

    ``reclaim_window > 1`` models navy's clean-region pool: the victim is
    drawn (deterministically seeded) from the first ``reclaim_window``
    regions in policy order rather than strictly the head.  Eviction
    counters live in a shared :class:`~repro.reclaim.ReclaimStats` so the
    bench reports cache reclamation in the same ``gc_*`` column family as
    the other three layers.
    """

    def __init__(
        self,
        num_regions: int,
        eviction_policy: str = "lru",
        reclaim_window: int = 1,
        seed: int = 97,
        dead_first: bool = False,
    ) -> None:
        ensure_at_least("num_regions", num_regions, 2)
        ensure_at_least("reclaim_window", reclaim_window, 1)
        self.num_regions = num_regions
        self.reclaim_window = reclaim_window
        self._free: List[int] = list(range(num_regions))
        self._sealed: Dict[int, RegionMeta] = {}
        self._quarantined: Set[int] = set()
        self._policy = make_eviction_policy(eviction_policy)
        self._rng = make_rng(seed, "reclaim")
        self._seal_seq = 0
        self.reclaim_stats = ReclaimStats()
        # Lifecycle extensions: a uniform dead-byte account, and (opt-in)
        # taking fully-dead regions as victims before the policy order.
        self.ledger = LivenessLedger()
        self._dead_first = dead_first

    # --- queries ---------------------------------------------------------------

    @property
    def regions_evicted(self) -> int:
        return self.reclaim_stats.victims_reclaimed

    @property
    def items_evicted(self) -> int:
        return self.reclaim_stats.units_dropped

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def sealed_count(self) -> int:
        return len(self._sealed)

    def meta(self, region_id: int) -> Optional[RegionMeta]:
        return self._sealed.get(region_id)

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)

    def is_quarantined(self, region_id: int) -> bool:
        return region_id in self._quarantined

    # --- lifecycle ---------------------------------------------------------------

    def allocate(self) -> Tuple[int, Set[bytes]]:
        """Take a region for filling.

        Returns ``(region_id, evicted_keys)``: if the free pool is empty,
        the eviction policy's victim is reclaimed and every key still
        living in it is returned so the engine can drop the index entries
        (this is the hit-ratio cost of large regions, §3.2).
        """
        if self._free:
            return self._free.pop(0), set()
        victim = self._pick_dead_victim() if self._dead_first else None
        if victim is None:
            victim = self._pick_windowed_victim()
        if victim is None:
            raise RuntimeError("no sealed region to evict — engine bug")
        meta = self._sealed.pop(victim)
        self._policy.untrack(victim)
        evicted = set(meta.keys)
        self.reclaim_stats.victims_reclaimed += 1
        self.reclaim_stats.units_dropped += len(evicted)
        return victim, evicted

    def seal(self, meta: RegionMeta) -> None:
        """A filled region becomes evictable."""
        self._seal_seq += 1
        meta.sealed_seq = self._seal_seq
        self._sealed[meta.region_id] = meta
        self._policy.track(meta.region_id)

    def touch(self, region_id: int) -> None:
        """Promote on read hit (LRU policy only reacts)."""
        self._policy.touch(region_id)

    def quarantine(self, region_id: int) -> None:
        """Pull a region out of circulation permanently (dead media).

        The region leaves the free pool and the eviction order; it is
        never allocated again.  Capacity shrinks — graceful degradation
        instead of crashing on every flush that lands on bad flash.
        """
        if region_id in self._quarantined:
            return
        self._quarantined.add(region_id)
        if region_id in self._free:
            self._free.remove(region_id)
        if self._sealed.pop(region_id, None) is not None:
            self._policy.untrack(region_id)

    def _pick_windowed_victim(self) -> Optional[int]:
        return windowed_draw(
            self._policy, self.reclaim_window, len(self._sealed), self._rng
        )

    def _pick_dead_victim(self) -> Optional[int]:
        """Oldest fully-dead region, if any — a free victim.

        A region whose keys all died (deletes, TTL sweep, generation
        bumps) costs nothing to reclaim: no index teardown, no hit-ratio
        loss.  Taking it ahead of the policy order is what makes a
        post-storm dead region "sort as a zero-valid victim instantly".
        """
        victim: Optional[RegionMeta] = None
        for meta in self._sealed.values():
            if meta.keys:
                continue
            if victim is None or meta.sealed_seq < victim.sealed_seq:
                victim = meta
        if victim is None:
            return None
        self.ledger.dead_first_evictions += 1
        return victim.region_id

    def eviction_position(self, region_id: int) -> Optional[float]:
        """Where a sealed region sits in the eviction order.

        0.0 means it is the next victim, values near 1.0 mean it was
        sealed recently; None if the region is not sealed.  This is the
        cache-side knowledge the paper's §3.4 co-design feeds to zone GC:
        regions about to be evicted are not worth migrating.
        """
        meta = self._sealed.get(region_id)
        if meta is None:
            return None
        if self._dead_first and not meta.keys:
            # Fully dead: it is the next victim regardless of where the
            # policy order left it.
            return 0.0
        order = self._policy.order()
        if not order:
            return None
        try:
            index = order.index(region_id)
        except ValueError:
            return None
        if len(order) == 1:
            return 0.0
        return index / (len(order) - 1)

    def note_key_removed(
        self, region_id: int, key: bytes, reason: str = "deleted"
    ) -> None:
        """A key died (delete/overwrite/expiry/bump); account it.

        ``reason`` must be one of :data:`repro.cache.lifecycle.
        DEAD_REASONS`; the bytes move from the region's live count to
        the shared :class:`~repro.cache.lifecycle.LivenessLedger`.
        """
        meta = self._sealed.get(region_id)
        if meta is not None:
            nbytes = meta.note_removed(key)
            if nbytes is not None:
                self.ledger.note_dead(nbytes, reason)

    def live_bytes(self) -> int:
        """Bytes still reachable across all sealed regions."""
        return sum(meta.live_bytes for meta in self._sealed.values())

    def sealed_dead_bytes(self) -> int:
        """Dead bytes currently parked in sealed (unreclaimed) regions."""
        return sum(meta.dead_bytes for meta in self._sealed.values())

    def __repr__(self) -> str:
        return (
            f"RegionManager(free={len(self._free)}, sealed={len(self._sealed)}, "
            f"evicted={self.regions_evicted})"
        )
