"""Region-store backends: one per scheme in the paper.

All four expose the same :class:`RegionStore` contract to the cache
engine; the differences — exactly the paper's design space — live
underneath:

============== ===========================================================
Block-Cache    fixed offsets on a conventional SSD; the FTL hides GC
File-Cache     one large file on the F2FS-like filesystem over ZNS
Zone-Cache     region == zone on ZNS; eviction is a zone reset (zero WA)
Region-Cache   flexible regions through the zone translation layer
============== ===========================================================
"""

from repro.cache.backends.base import RegionStore, WafBreakdown, WafRaw
from repro.cache.backends.block import BlockRegionStore
from repro.cache.backends.file import FileRegionStore
from repro.cache.backends.zone import ZCacheRegionStore, ZoneRegionStore
from repro.cache.backends.region import ZtlRegionStore

__all__ = [
    "RegionStore",
    "WafBreakdown",
    "WafRaw",
    "BlockRegionStore",
    "FileRegionStore",
    "ZCacheRegionStore",
    "ZoneRegionStore",
    "ZtlRegionStore",
]
