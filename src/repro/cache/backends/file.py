"""File-Cache backend: regions inside one large file on the filesystem.

The paper's first scheme (§3.1, Figure 1a): CacheLib's file engine on a
pre-allocated file, with the filesystem (our F2FS-like substrate on ZNS)
handling allocation, cleaning and indexing — convenient, but it pays
block-granular mapping overhead, filesystem WA, and provisioning space.
"""

from __future__ import annotations

from repro.cache.backends.base import RegionStore, WafBreakdown, WafRaw, aligned_window
from repro.f2fs.file import F2fsFile
from repro.f2fs.fs import F2fs
from repro.sim.io import IoTracer


class FileRegionStore(RegionStore):
    """Region store over a single file on :class:`~repro.f2fs.F2fs`."""

    DEFAULT_FILE_NAME = "cachelib.navy"

    def __init__(
        self,
        fs: F2fs,
        region_size: int,
        num_regions: int,
        file_name: str = DEFAULT_FILE_NAME,
    ) -> None:
        block_size = fs.layout.block_size
        if region_size <= 0 or region_size % block_size != 0:
            raise ValueError(
                f"region_size {region_size} must be a positive multiple of the "
                f"filesystem block size {block_size}"
            )
        if num_regions * region_size > fs.usable_bytes:
            raise ValueError(
                f"cache of {num_regions}×{region_size}B does not fit in the "
                f"filesystem's usable {fs.usable_bytes}B"
            )
        self.fs = fs
        self._region_size = region_size
        self._num_regions = num_regions
        if fs.exists(file_name):
            self.file: F2fsFile = fs.open(file_name)
        else:
            self.file = fs.create(file_name)

    @property
    def region_size(self) -> int:
        return self._region_size

    @property
    def num_regions(self) -> int:
        return self._num_regions

    @property
    def scheme_name(self) -> str:
        return "File-Cache"

    @property
    def tracer(self) -> IoTracer:
        return self.fs.tracer

    def write_region(self, region_id: int, payload: bytes) -> int:
        self.check_region_id(region_id)
        if len(payload) != self._region_size:
            raise ValueError(
                f"payload must be exactly {self._region_size}B, got {len(payload)}"
            )
        with self.tracer.span("backend", "write_region", length=len(payload)):
            return self.file.pwrite(region_id * self._region_size, payload)

    def read(self, region_id: int, offset: int, length: int) -> bytes:
        self.check_region_id(region_id)
        base = region_id * self._region_size
        aligned_offset, aligned_length, skip = aligned_window(
            offset, length, self.fs.layout.block_size
        )
        with self.tracer.span("backend", "read", offset=offset, length=length):
            data = self.file.pread(base + aligned_offset, aligned_length)
        return data[skip : skip + length]

    def invalidate_region(self, region_id: int) -> None:
        """No-op: a file offers no way to declare a range dead.

        This transparency loss is one of the File-Cache costs the paper
        calls out — the filesystem will dutifully migrate dead cache
        bytes during cleaning because it cannot know they are dead.
        The §3.4 repair is :meth:`bind_gc_hints`: let the *cleaner* ask
        the cache about region worth at migration time instead.
        """
        self.check_region_id(region_id)

    def bind_gc_hints(self, hints) -> None:
        """Wire the cache's §3.4 :class:`~repro.reclaim.GcHints` into
        the filesystem cleaner.

        The cleaner works in main-area blocks; this binds the block →
        cache-region ownership lookup (via SIT ownership of this store's
        file) so condemned regions' blocks are unmapped instead of
        migrated to the cold log.  The callbacks are bound methods on
        purpose: ``copy.deepcopy`` rebinds a method's ``__self__`` into
        the cloned object graph (closures it would share), so cached
        stack templates clone with their hints intact.
        """
        self.fs.cleaner.bind_hints(
            hints, self._region_of_block, self.fs._drop_block
        )

    def _region_of_block(self, block_addr: int):
        """Cache region owning a main-area block, or None for node
        blocks (negative file ids), other files, and tail slack."""
        owner = self.fs.sit.owner_of(block_addr)
        if owner is None:
            return None
        owner_id, file_block = owner
        if owner_id != self.file.file_id:
            return None
        region_id = file_block * self.fs.layout.block_size // self._region_size
        return region_id if region_id < self._num_regions else None

    def waf(self) -> WafBreakdown:
        return WafBreakdown(
            app=self.fs.stats.write_amplification,
            device=self.fs.data_device.stats.write_amplification,
        )

    def waf_raw(self) -> WafRaw:
        fs_stats = self.fs.stats
        dev_stats = self.fs.data_device.stats
        return WafRaw(
            app_host=fs_stats.host_write_bytes,
            app_total=fs_stats.data_write_bytes + fs_stats.meta_write_bytes,
            dev_host=dev_stats.host_write_bytes,
            dev_total=dev_stats.media_write_bytes,
        )
