"""Zone-Cache backend: one region per zone, directly on the ZNS SSD.

The paper's second scheme (§3.2, Figure 1b): "If we enlarge the region
size to match the zone size (i.e., one region per zone), CacheLib can
directly use ZNS SSDs ... when a region is evicted, the zone can be
directly reset without any data migration.  This scheme can achieve real
zero WA and be GC-free" — and it needs no OP, so the cache gets the
whole device (the hit-ratio advantage of Figure 2).

The cost is equally direct: the region size *is* the zone size, so every
eviction drops a zone's worth of objects and every fill buffers a zone's
worth of bytes.
"""

from __future__ import annotations

from repro.cache.backends.base import RegionStore, WafBreakdown, WafRaw, aligned_window
from repro.flash.zone import ZoneState
from repro.flash.znsssd import ZnsSsd
from repro.sim.io import IoTracer


class ZoneRegionStore(RegionStore):
    """Region store where region ``i`` is exactly zone ``i`` of a ZNS SSD."""

    def __init__(self, device: ZnsSsd, num_regions: int = 0) -> None:
        if num_regions == 0:
            num_regions = device.num_zones
        if not 1 <= num_regions <= device.num_zones:
            raise ValueError(
                f"num_regions {num_regions} must be in [1, {device.num_zones}]"
            )
        self.device = device
        self._num_regions = num_regions
        self.zone_resets = 0

    @property
    def region_size(self) -> int:
        return self.device.zone_size

    @property
    def num_regions(self) -> int:
        return self._num_regions

    @property
    def scheme_name(self) -> str:
        return "Zone-Cache"

    @property
    def tracer(self) -> IoTracer:
        return self.device.tracer

    def write_region(self, region_id: int, payload: bytes) -> int:
        """Reset the zone (if dirty) and write the whole region into it."""
        self.check_region_id(region_id)
        if len(payload) != self.region_size:
            raise ValueError(
                f"payload must be exactly {self.region_size}B, got {len(payload)}"
            )
        tracer = self.device.tracer
        if tracer.enabled:
            with tracer.span("backend", "write_region", length=len(payload)):
                return self._write_region_impl(region_id, payload)
        return self._write_region_impl(region_id, payload)

    def _write_region_impl(self, region_id: int, payload: bytes) -> int:
        latency = 0
        zone = self.device.zones[region_id]
        if zone.state != ZoneState.EMPTY:
            latency += self.device.reset_zone(region_id).latency_ns
            self.zone_resets += 1
        latency += self.device.write(zone.start, payload).latency_ns
        return latency

    def read(self, region_id: int, offset: int, length: int) -> bytes:
        self.check_region_id(region_id)
        zone = self.device.zones[region_id]
        aligned_offset, aligned_length, skip = aligned_window(
            offset, length, self.device.block_size
        )
        tracer = self.device.tracer
        if tracer.enabled:
            with tracer.span("backend", "read", offset=offset, length=length):
                data = self.device.read(
                    zone.start + aligned_offset, aligned_length
                ).data
        else:
            data = self.device.read(zone.start + aligned_offset, aligned_length).data
        return data[skip : skip + length]

    def invalidate_region(self, region_id: int) -> None:
        """Eagerly reset the zone — eviction *is* the cleaning command."""
        self.check_region_id(region_id)
        zone = self.device.zones[region_id]
        if zone.state != ZoneState.EMPTY:
            self.device.reset_zone(region_id)
            self.zone_resets += 1

    def waf(self) -> WafBreakdown:
        """Zero WA by construction: no middle layer, no device GC."""
        return WafBreakdown(
            app=1.0, device=self.device.stats.write_amplification
        )

    def waf_raw(self) -> WafRaw:
        stats = self.device.stats
        return WafRaw(
            app_host=stats.host_write_bytes,
            app_total=stats.host_write_bytes,
            dev_host=stats.host_write_bytes,
            dev_total=stats.media_write_bytes,
        )
