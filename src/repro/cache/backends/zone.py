"""Zone-Cache backend: one region per zone, directly on the ZNS SSD.

The paper's second scheme (§3.2, Figure 1b): "If we enlarge the region
size to match the zone size (i.e., one region per zone), CacheLib can
directly use ZNS SSDs ... when a region is evicted, the zone can be
directly reset without any data migration.  This scheme can achieve real
zero WA and be GC-free" — and it needs no OP, so the cache gets the
whole device (the hit-ratio advantage of Figure 2).

The cost is equally direct: the region size *is* the zone size, so every
eviction drops a zone's worth of objects and every fill buffers a zone's
worth of bytes.
"""

from __future__ import annotations

from repro.cache.admission import CountMinSketch
from repro.cache.backends.base import RegionStore, WafBreakdown, WafRaw, aligned_window
from repro.cache.backends.region import ZtlRegionStore
from repro.cache.item import EntryCodec
from repro.errors import CacheConfigError
from repro.flash.zone import ZoneState
from repro.flash.znsssd import ZnsSsd
from repro.sim.io import IoTracer
from repro.ztl.layer import RegionTranslationLayer


class ZoneRegionStore(RegionStore):
    """Region store where region ``i`` is exactly zone ``i`` of a ZNS SSD."""

    def __init__(self, device: ZnsSsd, num_regions: int = 0) -> None:
        if num_regions == 0:
            num_regions = device.num_zones
        if not 1 <= num_regions <= device.num_zones:
            raise ValueError(
                f"num_regions {num_regions} must be in [1, {device.num_zones}]"
            )
        self.device = device
        self._num_regions = num_regions
        self.zone_resets = 0

    @property
    def region_size(self) -> int:
        return self.device.zone_size

    @property
    def num_regions(self) -> int:
        return self._num_regions

    @property
    def scheme_name(self) -> str:
        return "Zone-Cache"

    @property
    def tracer(self) -> IoTracer:
        return self.device.tracer

    def write_region(self, region_id: int, payload: bytes) -> int:
        """Reset the zone (if dirty) and write the whole region into it."""
        self.check_region_id(region_id)
        if len(payload) != self.region_size:
            raise ValueError(
                f"payload must be exactly {self.region_size}B, got {len(payload)}"
            )
        tracer = self.device.tracer
        if tracer.enabled:
            with tracer.span("backend", "write_region", length=len(payload)):
                return self._write_region_impl(region_id, payload)
        return self._write_region_impl(region_id, payload)

    def _write_region_impl(self, region_id: int, payload: bytes) -> int:
        latency = 0
        zone = self.device.zones[region_id]
        if zone.state != ZoneState.EMPTY:
            latency += self.device.reset_zone(region_id).latency_ns
            self.zone_resets += 1
        latency += self.device.write(zone.start, payload).latency_ns
        return latency

    def read(self, region_id: int, offset: int, length: int) -> bytes:
        self.check_region_id(region_id)
        zone = self.device.zones[region_id]
        aligned_offset, aligned_length, skip = aligned_window(
            offset, length, self.device.block_size
        )
        tracer = self.device.tracer
        if tracer.enabled:
            with tracer.span("backend", "read", offset=offset, length=length):
                data = self.device.read(
                    zone.start + aligned_offset, aligned_length
                ).data
        else:
            data = self.device.read(zone.start + aligned_offset, aligned_length).data
        return data[skip : skip + length]

    def invalidate_region(self, region_id: int) -> None:
        """Eagerly reset the zone — eviction *is* the cleaning command."""
        self.check_region_id(region_id)
        zone = self.device.zones[region_id]
        if zone.state != ZoneState.EMPTY:
            self.device.reset_zone(region_id)
            self.zone_resets += 1

    def waf(self) -> WafBreakdown:
        """Zero WA by construction: no middle layer, no device GC."""
        return WafBreakdown(
            app=1.0, device=self.device.stats.write_amplification
        )

    def waf_raw(self) -> WafRaw:
        stats = self.device.stats
        return WafRaw(
            app_host=stats.host_write_bytes,
            app_total=stats.host_write_bytes,
            dev_host=stats.host_write_bytes,
            dev_total=stats.media_write_bytes,
        )


class ZCacheRegionStore(ZtlRegionStore):
    """Z-Cache: the Region-Cache layout with hot/cold zone separation.

    The Z-CacheLib scheme (arxiv 2410.11260, the source paper's authors):
    at region-flush time the store classifies the region by the TinyLFU
    frequency of the keys it carries — the same seeded
    :class:`~repro.cache.admission.CountMinSketch` the admission policy
    already feeds — and routes majority-hot regions to lifetime group 0,
    the rest to the coldest group.  Hot regions (rewritten soon) then
    fill different zones than cold ones, so invalidations concentrate:
    hot zones decay toward empty on their own while cold zones stay
    valid and are reclaimed by finishing, not copying (pair with
    ``GcConfig(policy="cold_defer")``).

    Classification walks the packed payload with
    :meth:`EntryCodec.scan_region`; with per-item checksums enabled and
    a non-default salt the walk may stop early on the first checksummed
    entry, which only makes classification coarser, never wrong.
    """

    def __init__(
        self,
        layer: RegionTranslationLayer,
        num_regions: int,
        sketch: CountMinSketch,
        hot_threshold: int = 2,
    ) -> None:
        super().__init__(layer, num_regions)
        if layer.config.host_groups < 2:
            raise CacheConfigError(
                "Z-Cache needs a layer with host_groups >= 2 "
                f"(got {layer.config.host_groups})"
            )
        if hot_threshold < 1:
            raise CacheConfigError(
                f"hot_threshold must be >= 1, got {hot_threshold}"
            )
        self.sketch = sketch
        self.hot_threshold = hot_threshold
        self.cold_group = layer.config.host_groups - 1
        self.hot_regions = 0
        self.cold_regions = 0

    @property
    def scheme_name(self) -> str:
        return "Z-Cache"

    def write_region(self, region_id: int, payload: bytes) -> int:
        self.check_region_id(region_id)
        group = self._classify(payload)
        tracer = self.layer.tracer
        if tracer.enabled:
            with tracer.span("backend", "write_region", length=len(payload)):
                return self.layer.write_region(
                    region_id, payload, group=group
                ).latency_ns
        return self.layer.write_region(region_id, payload, group=group).latency_ns

    def _classify(self, payload: bytes) -> int:
        """Majority vote over the region's keys: hot stream or cold."""
        entries, _ = EntryCodec.scan_region(payload)
        if not entries:
            return self.cold_group
        estimate = self.sketch.estimate
        threshold = self.hot_threshold
        hot = 0
        for _, _, entry in entries:
            if estimate(entry.key) >= threshold:
                hot += 1
        if 2 * hot >= len(entries):
            self.hot_regions += 1
            return 0
        self.cold_regions += 1
        return self.cold_group
