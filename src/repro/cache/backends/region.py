"""Region-Cache backend: flexible regions via the zone translation layer.

The paper's third scheme (§3.3, Figure 1c): a thin middle layer maps
cache regions onto zones, so the cache keeps its preferred (small)
region size on a large-zone device.  The price is middle-layer GC —
captured as the ``app`` component of the WAF breakdown (Table 1).

The cache's ``num_regions`` must be *smaller* than the layer's total
slots: the difference is the scheme's over-provisioning, which is the
knob Figure 4 sweeps.
"""

from __future__ import annotations

from repro.cache.backends.base import RegionStore, WafBreakdown, WafRaw, aligned_window
from repro.errors import CacheConfigError
from repro.sim.io import IoTracer
from repro.ztl.layer import RegionTranslationLayer


class ZtlRegionStore(RegionStore):
    """Region store over a :class:`~repro.ztl.RegionTranslationLayer`."""

    def __init__(self, layer: RegionTranslationLayer, num_regions: int) -> None:
        if num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if num_regions >= layer.total_slots:
            raise CacheConfigError(
                f"cache of {num_regions} regions needs OP headroom below the "
                f"layer's {layer.total_slots} slots (GC would thrash at 100% "
                "utilization)"
            )
        self.layer = layer
        self._num_regions = num_regions

    @property
    def region_size(self) -> int:
        return self.layer.region_size

    @property
    def num_regions(self) -> int:
        return self._num_regions

    @property
    def op_ratio(self) -> float:
        """Fraction of layer slots held back as GC headroom."""
        return 1.0 - self._num_regions / self.layer.total_slots

    @property
    def scheme_name(self) -> str:
        return "Region-Cache"

    @property
    def tracer(self) -> IoTracer:
        return self.layer.tracer

    def write_region(self, region_id: int, payload: bytes) -> int:
        self.check_region_id(region_id)
        tracer = self.layer.tracer
        if tracer.enabled:
            with tracer.span("backend", "write_region", length=len(payload)):
                return self.layer.write_region(region_id, payload).latency_ns
        return self.layer.write_region(region_id, payload).latency_ns

    def read(self, region_id: int, offset: int, length: int) -> bytes:
        self.check_region_id(region_id)
        aligned_offset, aligned_length, skip = aligned_window(
            offset, length, self.layer.device.block_size
        )
        aligned_length = min(aligned_length, self.region_size - aligned_offset)
        tracer = self.layer.tracer
        if tracer.enabled:
            with tracer.span("backend", "read", offset=offset, length=length):
                data = self.layer.read_region(
                    region_id, aligned_offset, aligned_length
                ).data
        else:
            data = self.layer.read_region(
                region_id, aligned_offset, aligned_length
            ).data
        return data[skip : skip + length]

    def invalidate_region(self, region_id: int) -> None:
        """Tell the layer the region is dead so GC never migrates it."""
        self.check_region_id(region_id)
        self.layer.invalidate_region(region_id)

    def waf(self) -> WafBreakdown:
        return WafBreakdown(
            app=self.layer.stats.app_write_amplification,
            device=self.layer.device.stats.write_amplification,
        )

    def waf_raw(self) -> WafRaw:
        layer_stats = self.layer.stats
        dev_stats = self.layer.device.stats
        return WafRaw(
            app_host=layer_stats.host_region_writes,
            app_total=layer_stats.host_region_writes
            + layer_stats.migrated_region_writes,
            dev_host=dev_stats.host_write_bytes,
            dev_total=dev_stats.media_write_bytes,
        )
