"""Block-Cache backend: regions at fixed offsets on a conventional SSD.

This is the paper's baseline.  Region ``i`` lives at byte
``i * region_size``; eviction simply overwrites the range, and the
device's FTL absorbs the update stream — producing the device-level WA
and GC tail latency the paper measures against.
"""

from __future__ import annotations

from repro.cache.backends.base import RegionStore, WafBreakdown, WafRaw, aligned_window
from repro.flash.blockssd import BlockSsd
from repro.sim.io import IoTracer


class BlockRegionStore(RegionStore):
    """Fixed-layout region store over a :class:`~repro.flash.BlockSsd`."""

    def __init__(
        self,
        device: BlockSsd,
        region_size: int,
        num_regions: int,
        use_discard: bool = False,
    ) -> None:
        if region_size <= 0 or region_size % device.block_size != 0:
            raise ValueError(
                f"region_size {region_size} must be a positive multiple of the "
                f"device block size {device.block_size}"
            )
        if num_regions * region_size > device.capacity_bytes:
            raise ValueError(
                f"{num_regions} regions of {region_size}B exceed device "
                f"capacity {device.capacity_bytes}B"
            )
        self.device = device
        self._region_size = region_size
        self._num_regions = num_regions
        self.use_discard = use_discard

    @property
    def region_size(self) -> int:
        return self._region_size

    @property
    def num_regions(self) -> int:
        return self._num_regions

    @property
    def scheme_name(self) -> str:
        return "Block-Cache"

    @property
    def tracer(self) -> IoTracer:
        return self.device.tracer

    def write_region(self, region_id: int, payload: bytes) -> int:
        self.check_region_id(region_id)
        if len(payload) != self._region_size:
            raise ValueError(
                f"payload must be exactly {self._region_size}B, got {len(payload)}"
            )
        with self.tracer.span("backend", "write_region", length=len(payload)):
            return self.device.write(region_id * self._region_size, payload).latency_ns

    def read(self, region_id: int, offset: int, length: int) -> bytes:
        self.check_region_id(region_id)
        base = region_id * self._region_size
        aligned_offset, aligned_length, skip = aligned_window(
            offset, length, self.device.block_size
        )
        with self.tracer.span("backend", "read", offset=offset, length=length):
            data = self.device.read(base + aligned_offset, aligned_length).data
        return data[skip : skip + length]

    def invalidate_region(self, region_id: int) -> None:
        """Optionally TRIM the dead range so the FTL skips relocating it.

        Real deployments rarely discard cache regions (the paper's
        Block-Cache does not), so this defaults off; the ablation bench
        turns it on to quantify what TRIM would buy.
        """
        self.check_region_id(region_id)
        if self.use_discard:
            self.device.discard(region_id * self._region_size, self._region_size)

    def waf(self) -> WafBreakdown:
        return WafBreakdown(app=1.0, device=self.device.stats.write_amplification)

    def waf_raw(self) -> WafRaw:
        stats = self.device.stats
        return WafRaw(
            app_host=stats.host_write_bytes,
            app_total=stats.host_write_bytes,
            dev_host=stats.host_write_bytes,
            dev_total=stats.media_write_bytes,
        )
