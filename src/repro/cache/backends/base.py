"""The region-store contract between the cache engine and storage.

The engine only ever:

* rewrites whole regions (``write_region``),
* reads entry ranges within a region (``read``),
* and hints that a region's contents are dead (``invalidate_region``).

That narrow interface is what lets the paper swap a conventional SSD, a
filesystem, raw zones, and a translation layer under an unmodified cache.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import OutOfRangeError
from repro.sim.io import NULL_TRACER, IoTracer


@dataclass(frozen=True)
class WafBreakdown:
    """Write amplification at each layer of a scheme's stack.

    ``app`` is amplification added above the device (filesystem cleaning
    or middle-layer GC); ``device`` is the SSD's internal amplification;
    ``total`` is their product — the media wear per byte the cache wrote.
    """

    app: float
    device: float

    @property
    def total(self) -> float:
        return self.app * self.device


@dataclass(frozen=True)
class WafRaw:
    """Raw write counters at one instant (app layer and device layer)."""

    app_host: float
    app_total: float
    dev_host: float
    dev_total: float

    def window_to(self, later: "WafRaw") -> WafBreakdown:
        """WAF over the interval between this snapshot and ``later``."""
        app_host = later.app_host - self.app_host
        app_total = later.app_total - self.app_total
        dev_host = later.dev_host - self.dev_host
        dev_total = later.dev_total - self.dev_total
        return WafBreakdown(
            app=app_total / app_host if app_host > 0 else 1.0,
            device=dev_total / dev_host if dev_host > 0 else 1.0,
        )


class RegionStore(abc.ABC):
    """Backend interface: fixed-size regions addressed by dense ids."""

    @property
    @abc.abstractmethod
    def region_size(self) -> int:
        """Bytes per region."""

    @property
    @abc.abstractmethod
    def num_regions(self) -> int:
        """Number of region slots the cache may use."""

    @abc.abstractmethod
    def write_region(self, region_id: int, payload: bytes) -> int:
        """Overwrite a whole region; returns the I/O latency in ns."""

    @abc.abstractmethod
    def read(self, region_id: int, offset: int, length: int) -> bytes:
        """Read an entry range; implementations handle device alignment."""

    @abc.abstractmethod
    def invalidate_region(self, region_id: int) -> None:
        """The region's contents are dead (evicted); reclaim eagerly."""

    @abc.abstractmethod
    def waf(self) -> WafBreakdown:
        """Cumulative write-amplification breakdown for this scheme."""

    @abc.abstractmethod
    def waf_raw(self) -> "WafRaw":
        """Raw write counters, so callers can compute *windowed* WAF
        (steady-state WAF excludes the population transient)."""

    @property
    def scheme_name(self) -> str:
        """Human-readable scheme label used in benchmark tables."""
        return type(self).__name__

    @property
    def tracer(self) -> IoTracer:
        """The I/O tracer of this store's stack (never-recording default).

        Backends with a real device underneath override this to expose
        the device pipeline's tracer, so the engine can open spans on the
        same bus its device commands are reported to.
        """
        return NULL_TRACER

    def check_region_id(self, region_id: int) -> None:
        if not 0 <= region_id < self.num_regions:
            raise OutOfRangeError(
                f"region {region_id} outside [0, {self.num_regions})"
            )


def aligned_window(offset: int, length: int, alignment: int) -> tuple[int, int, int]:
    """Expand (offset, length) to device alignment.

    Returns ``(aligned_offset, aligned_length, slice_start)`` where
    ``slice_start`` is where the requested bytes begin inside the aligned
    read — this is the read-amplification every byte-addressed cache pays
    on a block device.
    """
    aligned_offset = (offset // alignment) * alignment
    end = offset + length
    aligned_end = -(-end // alignment) * alignment
    return aligned_offset, aligned_end - aligned_offset, offset - aligned_offset
