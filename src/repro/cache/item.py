"""On-flash entry format and index locations.

Entries are byte-packed into regions: a 16-byte header (key length,
value length, absolute expiry time in ns — 0 means no TTL) followed by
key and value bytes.  The index remembers the exact (region, offset,
length) so a get is a single ranged read; the key is stored on flash too
so reads can verify they decoded the entry they were looking for (guards
against stale index entries in tests), and the expiry travels with the
entry exactly as CacheLib keeps it in the item header.

Checksummed entries (``CacheConfig.checksums``) append a CRC32 after the
value and set the high bit of the stored key length, so the format stays
self-describing and the default (non-checksummed) layout is byte-for-byte
unchanged.  The CRC is salted with the owning region's *generation*: a
torn flush can leave a region holding a valid-looking tail from the
previous generation, and only a generation-salted checksum can tell the
two apart during crash recovery (:meth:`EntryCodec.scan_region`).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import EntryCorruptError

_HEADER = struct.Struct("<IIQ")  # key length, value length, expiry (ns, 0=none)
_CRC = struct.Struct("<I")
_CHECKSUM_FLAG = 0x8000_0000


@dataclass(frozen=True)
class EntryLocation:
    """Where an entry lives on flash."""

    region_id: int
    offset: int
    length: int


@dataclass(frozen=True)
class DecodedEntry:
    """One decoded cache entry."""

    key: bytes
    value: bytes
    expiry_ns: int = 0

    def is_expired(self, now_ns: int) -> bool:
        return self.expiry_ns != 0 and now_ns >= self.expiry_ns


class EntryCodec:
    """Serialize/deserialize cache entries."""

    HEADER_SIZE = _HEADER.size
    CRC_SIZE = _CRC.size

    @classmethod
    def encode(
        cls,
        key: bytes,
        value: bytes,
        expiry_ns: int = 0,
        checksum: bool = False,
        salt: int = 0,
    ) -> bytes:
        """Pack one entry; total size is ``entry_size(key, value, checksum)``."""
        if not checksum:
            return _HEADER.pack(len(key), len(value), expiry_ns) + key + value
        header = _HEADER.pack(len(key) | _CHECKSUM_FLAG, len(value), expiry_ns)
        crc = cls._crc(key, value, expiry_ns, salt)
        return header + key + value + _CRC.pack(crc)

    @classmethod
    def entry_size(cls, key: bytes, value: bytes, checksum: bool = False) -> int:
        size = cls.HEADER_SIZE + len(key) + len(value)
        return size + cls.CRC_SIZE if checksum else size

    @classmethod
    def decode(cls, blob: bytes) -> Tuple[bytes, bytes]:
        """Unpack (key, value) from ``blob`` (must start at the header)."""
        entry = cls.decode_entry(blob)
        return entry.key, entry.value

    @classmethod
    def decode_entry(cls, blob: bytes, salt: int = 0) -> DecodedEntry:
        """Unpack a full :class:`DecodedEntry` including expiry.

        Raises :class:`ValueError` on a truncated blob and
        :class:`EntryCorruptError` when a checksummed entry fails its
        salted CRC (torn write or stale previous-generation bytes).
        """
        if len(blob) < cls.HEADER_SIZE:
            raise ValueError(f"entry blob too short: {len(blob)}B")
        raw_key_len, value_len, expiry_ns = _HEADER.unpack_from(blob)
        has_crc = bool(raw_key_len & _CHECKSUM_FLAG)
        key_len = raw_key_len & ~_CHECKSUM_FLAG
        need = cls.HEADER_SIZE + key_len + value_len
        total = need + cls.CRC_SIZE if has_crc else need
        if len(blob) < total:
            raise ValueError(f"entry blob truncated: {len(blob)} < {total}")
        key = blob[cls.HEADER_SIZE : cls.HEADER_SIZE + key_len]
        value = blob[cls.HEADER_SIZE + key_len : need]
        if has_crc:
            (stored,) = _CRC.unpack_from(blob, need)
            if stored != cls._crc(key, value, expiry_ns, salt):
                raise EntryCorruptError(
                    f"checksum mismatch for key {key[:24]!r}"
                )
        return DecodedEntry(key=key, value=value, expiry_ns=expiry_ns)

    @classmethod
    def scan_region(
        cls, payload: bytes, salt: int = 0, require_checksum: bool = False
    ) -> Tuple[List[Tuple[int, int, DecodedEntry]], bool]:
        """Walk packed entries from offset 0 of a region payload.

        Returns ``(entries, torn)`` where each element of ``entries`` is
        ``(offset, length, DecodedEntry)``.  The walk stops at zero
        padding (both stored lengths zero).  ``torn`` is True when the
        payload ends in a truncated or checksum-failing entry — the
        crash-recovery signal for a flush interrupted by a power cut.
        ``require_checksum`` additionally treats non-checksummed bytes
        as torn (a checksummed cache never writes them, so they must be
        stale remnants of an earlier life of the region).
        """
        entries: List[Tuple[int, int, DecodedEntry]] = []
        offset = 0
        size = len(payload)
        while offset + cls.HEADER_SIZE <= size:
            raw_key_len, value_len, _ = _HEADER.unpack_from(payload, offset)
            if raw_key_len == 0 and value_len == 0:
                return entries, False  # zero padding: clean end of data
            has_crc = bool(raw_key_len & _CHECKSUM_FLAG)
            key_len = raw_key_len & ~_CHECKSUM_FLAG
            length = cls.HEADER_SIZE + key_len + value_len
            if has_crc:
                length += cls.CRC_SIZE
            if offset + length > size:
                return entries, True  # entry runs off the end: torn
            if require_checksum and not has_crc:
                return entries, True
            try:
                entry = cls.decode_entry(
                    payload[offset : offset + length], salt=salt
                )
            except (ValueError, EntryCorruptError):
                return entries, True
            entries.append((offset, length, entry))
            offset += length
        # Ran out of payload mid-header: torn iff the tail is not padding.
        return entries, any(payload[offset:])

    @staticmethod
    def _crc(key: bytes, value: bytes, expiry_ns: int, salt: int) -> int:
        crc = zlib.crc32(salt.to_bytes(8, "little", signed=False))
        crc = zlib.crc32(_HEADER.pack(len(key), len(value), expiry_ns), crc)
        crc = zlib.crc32(key, crc)
        return zlib.crc32(value, crc)
