"""On-flash entry format and index locations.

Entries are byte-packed into regions: a 16-byte header (key length,
value length, absolute expiry time in ns — 0 means no TTL) followed by
key and value bytes.  The index remembers the exact (region, offset,
length) so a get is a single ranged read; the key is stored on flash too
so reads can verify they decoded the entry they were looking for (guards
against stale index entries in tests), and the expiry travels with the
entry exactly as CacheLib keeps it in the item header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

_HEADER = struct.Struct("<IIQ")  # key length, value length, expiry (ns, 0=none)


@dataclass(frozen=True)
class EntryLocation:
    """Where an entry lives on flash."""

    region_id: int
    offset: int
    length: int


@dataclass(frozen=True)
class DecodedEntry:
    """One decoded cache entry."""

    key: bytes
    value: bytes
    expiry_ns: int = 0

    def is_expired(self, now_ns: int) -> bool:
        return self.expiry_ns != 0 and now_ns >= self.expiry_ns


class EntryCodec:
    """Serialize/deserialize cache entries."""

    HEADER_SIZE = _HEADER.size

    @classmethod
    def encode(cls, key: bytes, value: bytes, expiry_ns: int = 0) -> bytes:
        """Pack one entry; total size is ``entry_size(key, value)``."""
        return _HEADER.pack(len(key), len(value), expiry_ns) + key + value

    @classmethod
    def entry_size(cls, key: bytes, value: bytes) -> int:
        return cls.HEADER_SIZE + len(key) + len(value)

    @classmethod
    def decode(cls, blob: bytes) -> Tuple[bytes, bytes]:
        """Unpack (key, value) from ``blob`` (must start at the header)."""
        entry = cls.decode_entry(blob)
        return entry.key, entry.value

    @classmethod
    def decode_entry(cls, blob: bytes) -> DecodedEntry:
        """Unpack a full :class:`DecodedEntry` including expiry."""
        if len(blob) < cls.HEADER_SIZE:
            raise ValueError(f"entry blob too short: {len(blob)}B")
        key_len, value_len, expiry_ns = _HEADER.unpack_from(blob)
        need = cls.HEADER_SIZE + key_len + value_len
        if len(blob) < need:
            raise ValueError(f"entry blob truncated: {len(blob)} < {need}")
        key = blob[cls.HEADER_SIZE : cls.HEADER_SIZE + key_len]
        value = blob[cls.HEADER_SIZE + key_len : need]
        return DecodedEntry(key=key, value=value, expiry_ns=expiry_ns)
