"""Region eviction policies.

The paper's experiments use LRU ("We use LRU as the cache eviction
policy in CacheLib", §4.1): a flash hit promotes the whole region.  FIFO
is provided as the cheaper alternative CacheLib also ships.
"""

from __future__ import annotations

import abc
import enum
from collections import OrderedDict
from typing import List, Optional


class EvictionPolicyKind(enum.Enum):
    LRU = "lru"
    FIFO = "fifo"
    CLOCK = "clock"


class RegionEvictionPolicy(abc.ABC):
    """Orders sealed regions for reclaim."""

    @abc.abstractmethod
    def track(self, region_id: int) -> None:
        """A region was sealed (entered the evictable set)."""

    @abc.abstractmethod
    def touch(self, region_id: int) -> None:
        """A read hit landed in the region."""

    @abc.abstractmethod
    def untrack(self, region_id: int) -> None:
        """The region was reclaimed or invalidated."""

    @abc.abstractmethod
    def pick_victim(self) -> Optional[int]:
        """Region to evict next, or None if nothing is tracked."""

    def track_front(self, region_id: int) -> None:
        """Re-insert at the *eviction end* (used by windowed reclaim to
        restore candidates it examined but did not choose)."""
        self.track(region_id)

    def order(self) -> "List[int]":
        """Region ids in eviction order (next victim first).

        Default implementation for OrderedDict-backed policies.
        """
        return list(getattr(self, "_order", {}))

    @abc.abstractmethod
    def __len__(self) -> int: ...


class LruRegionPolicy(RegionEvictionPolicy):
    """Least-recently-used region is evicted; hits refresh recency."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def track(self, region_id: int) -> None:
        self._order[region_id] = None
        self._order.move_to_end(region_id)

    def touch(self, region_id: int) -> None:
        if region_id in self._order:
            self._order.move_to_end(region_id)

    def untrack(self, region_id: int) -> None:
        self._order.pop(region_id, None)

    def pick_victim(self) -> Optional[int]:
        if not self._order:
            return None
        return next(iter(self._order))

    def track_front(self, region_id: int) -> None:
        self._order[region_id] = None
        self._order.move_to_end(region_id, last=False)

    def __len__(self) -> int:
        return len(self._order)


class FifoRegionPolicy(RegionEvictionPolicy):
    """Oldest-sealed region is evicted; hits do not refresh."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def track(self, region_id: int) -> None:
        self._order[region_id] = None

    def touch(self, region_id: int) -> None:
        pass  # FIFO ignores accesses

    def untrack(self, region_id: int) -> None:
        self._order.pop(region_id, None)

    def pick_victim(self) -> Optional[int]:
        if not self._order:
            return None
        return next(iter(self._order))

    def track_front(self, region_id: int) -> None:
        self._order[region_id] = None
        self._order.move_to_end(region_id, last=False)

    def __len__(self) -> int:
        return len(self._order)


class ClockRegionPolicy(RegionEvictionPolicy):
    """Second-chance (CLOCK) approximation of LRU.

    A hit sets the region's reference bit; the victim scan skips (and
    strips) referenced regions once.  Hot regions survive an extra lap —
    the hit-ratio benefit of LRU — while the eviction order stays close
    to write order, which is what keeps zone-level garbage concentrated
    and GC cheap (Table 1's low-1.x WAFs).
    """

    def __init__(self) -> None:
        self._order: "OrderedDict[int, bool]" = OrderedDict()

    def track(self, region_id: int) -> None:
        # Enter with the reference bit set: a freshly-sealed region must
        # survive at least one scan lap, otherwise the scan's "first
        # unreferenced" rule would evict the *youngest* regions whenever
        # everything older is hot.
        self._order[region_id] = True
        self._order.move_to_end(region_id)

    def touch(self, region_id: int) -> None:
        if region_id in self._order:
            self._order[region_id] = True

    def untrack(self, region_id: int) -> None:
        self._order.pop(region_id, None)

    def pick_victim(self) -> Optional[int]:
        if not self._order:
            return None
        for _ in range(len(self._order)):
            region_id, referenced = next(iter(self._order.items()))
            if not referenced:
                return region_id
            # Second chance: strip the bit, rotate to the tail.
            self._order[region_id] = False
            self._order.move_to_end(region_id)
        return next(iter(self._order))

    def track_front(self, region_id: int) -> None:
        self._order[region_id] = False
        self._order.move_to_end(region_id, last=False)

    def __len__(self) -> int:
        return len(self._order)


def make_eviction_policy(kind: str) -> RegionEvictionPolicy:
    """Factory used by the engine ('lru', 'fifo', or 'clock')."""
    if kind == "lru":
        return LruRegionPolicy()
    if kind == "fifo":
        return FifoRegionPolicy()
    if kind == "clock":
        return ClockRegionPolicy()
    raise ValueError(f"unknown eviction policy {kind!r}")
