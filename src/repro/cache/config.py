"""Cache engine configuration.

The defaults model CacheLib's log-structured "navy" engine at the scale
used throughout the benchmarks (regions of 64 KiB–16 MiB depending on
the scheme).  ``CpuCosts`` centralizes the host-side costs that shape
Figure 3: per-item insert work and — critically — the per-item cost of
tearing down the shared index when a whole region is evicted, which is
what makes filling a *huge* region stall "caused by eviction operations
in other threads, which involve lock controls for the shared index".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.admission import AdmissionConfig
from repro.cache.lifecycle import LifecycleConfig
from repro.errors import CacheConfigError
from repro.sim.faults import RetryPolicy
from repro.units import KIB, MIB


@dataclass(frozen=True)
class CpuCosts:
    """Host CPU costs in nanoseconds, charged to the simulated clock."""

    get_ns: int = 900
    set_per_item_ns: int = 1_200
    delete_ns: int = 800
    buffer_copy_ns_per_kib: int = 40
    evict_index_per_item_ns: int = 10_000
    # Lock-convoy model: tearing down N index entries in one eviction costs
    # N * evict_index_per_item_ns * (1 + N / evict_contention_scale_items).
    # Small regions (tens of items) pay ~linear cost; zone-sized regions
    # (thousands of items) pay the superlinear contention the paper measures
    # as the Figure 3(a) insertion-time jump.
    evict_contention_scale_items: int = 300
    region_alloc_ns: int = 4_000
    # Allocating + zeroing the in-memory region buffer ("a larger region
    # size requires setting up a larger region buffer in memory", §3.2).
    buffer_alloc_ns_per_mib: int = 2_000_000

    def __post_init__(self) -> None:
        for name in (
            "get_ns",
            "set_per_item_ns",
            "delete_ns",
            "buffer_copy_ns_per_kib",
            "evict_index_per_item_ns",
            "region_alloc_ns",
            "buffer_alloc_ns_per_mib",
        ):
            if getattr(self, name) < 0:
                raise CacheConfigError(f"{name} must be non-negative")
        if self.evict_contention_scale_items < 1:
            raise CacheConfigError("evict_contention_scale_items must be >= 1")

    def eviction_teardown_ns(self, num_items: int) -> int:
        """Index-teardown cost for evicting a region holding ``num_items``."""
        if num_items <= 0:
            return 0
        contention = 1.0 + num_items / self.evict_contention_scale_items
        return int(num_items * self.evict_index_per_item_ns * contention)


@dataclass(frozen=True)
class CacheConfig:
    """Hybrid-cache shape.

    ``num_regions * region_size`` is the flash cache size.  ``ram_bytes``
    is the DRAM item cache in front (CacheLib's LRU tier).  The region
    size is the knob the paper turns: 16 MiB for Block/File/Region-Cache,
    the whole zone size for Zone-Cache.
    """

    region_size: int = 256 * KIB
    num_regions: int = 64
    ram_bytes: int = 4 * MIB
    # Region reclaim order on flash.  CacheLib's navy engine reclaims
    # regions FIFO (the "LRU" the paper configures is the DRAM tier's
    # item policy, which RamCache implements); FIFO keeps region write
    # order == death order, which is what makes zone GC cheap.
    eviction_policy: str = "fifo"
    # CacheLib's navy engine keeps a pool of clean regions and reclaims
    # ahead of use, so regions are *reused* in an order that deviates
    # from strict policy order by up to this many slots.  The deviation
    # leaves a few live stragglers in otherwise-dead zones — the source
    # of the low-1.x steady-state WAFs in the paper's Table 1.
    reclaim_window: int = 1
    index_shards: int = 16
    read_from_buffer: bool = True
    populate_ram_on_flash_hit: bool = True
    # Per-item CRC32 (generation-salted) appended to every on-flash
    # entry.  Off by default: the non-checksummed format is what the
    # golden benchmarks lock.  Required for crash recovery to replay a
    # torn (power-cut) flush instead of dropping the whole region.
    checksums: bool = False
    # Backoff budget for transient device errors (TransientMediaError,
    # AppendFailedError, ZoneResourceError) on reads and region flushes.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    cpu: CpuCosts = field(default_factory=CpuCosts)
    # Flash admission policy (default admit-all, the paper's setup).  An
    # explicit AdmissionPolicy passed to HybridCache still wins; this
    # field makes the choice declarative so scheme builders and the
    # serving cluster can select per-instance admission by config alone.
    # Z-Cache additionally reuses the tinylfu policy's CountMinSketch as
    # its flush-time hot/cold classifier, so a Z-Cache stack always
    # carries a tinylfu admission config even when the threshold admits
    # everything (see ``repro.cache.backends.zone.ZCacheRegionStore``).
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    # Tenant item-lifecycle layer: namespace versioning, dead-first
    # eviction, and GC hint wiring.  All off by default — the historical
    # engine behavior (and every golden row) is bit-identical unless a
    # stack opts in.  See repro.cache.lifecycle.
    lifecycle: LifecycleConfig = field(default_factory=LifecycleConfig)

    def __post_init__(self) -> None:
        if self.region_size <= 0:
            raise CacheConfigError("region_size must be positive")
        if self.num_regions < 2:
            raise CacheConfigError(
                "need at least 2 regions (one filling, one evictable)"
            )
        if self.ram_bytes < 0:
            raise CacheConfigError("ram_bytes must be non-negative")
        if self.eviction_policy not in ("lru", "fifo", "clock"):
            raise CacheConfigError(
                f"unknown eviction_policy {self.eviction_policy!r}; "
                "expected 'lru', 'fifo', or 'clock'"
            )
        if self.reclaim_window < 1:
            raise CacheConfigError("reclaim_window must be >= 1")
        if self.index_shards < 1:
            raise CacheConfigError("index_shards must be >= 1")

    @property
    def flash_bytes(self) -> int:
        """Total flash cache capacity."""
        return self.region_size * self.num_regions
