"""Cache-level statistics: the quantities every figure in the paper plots.

* hit ratio (overall / RAM / flash) — Figures 2, 4, 5(b), Table 2,
* operation latency percentiles — Figures 5(c) and 5(d),
* throughput inputs (op counts + simulated time) — Figures 2, 4, 5(a),
* per-region fill durations — Figure 3,
* write amplification at each layer — Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.stats import LatencyRecorder, RatioStat
from repro.units import SEC


@dataclass
class CacheStats:
    """Mutable statistics block owned by one :class:`HybridCache`."""

    lookups: RatioStat = field(default_factory=lambda: RatioStat("cache.hit"))
    ram_lookups: RatioStat = field(default_factory=lambda: RatioStat("ram.hit"))
    flash_lookups: RatioStat = field(default_factory=lambda: RatioStat("flash.hit"))
    get_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("get")
    )
    set_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("set")
    )
    delete_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("delete")
    )
    sets: int = 0
    deletes: int = 0
    sets_admitted: int = 0
    flushes: int = 0
    stale_index_reads: int = 0
    expired_reads: int = 0
    region_fill_durations_ns: List[int] = field(default_factory=list)
    started_at_ns: int = 0
    finished_at_ns: int = 0
    # --- fault handling and crash recovery ---------------------------------
    retries: int = 0  # transient-error retries (reads + flushes)
    io_errors: int = 0  # operations that failed past the retry budget
    degraded_misses: int = 0  # gets answered as a miss because of I/O errors
    quarantined_regions: int = 0  # regions pulled from service (dead media)
    dropped_items: int = 0  # index entries lost to quarantine/purge
    corrupt_reads: int = 0  # entries dropped on checksum/decode failure
    torn_items_dropped: int = 0  # torn tails discarded during crash recovery
    recovered_items: int = 0  # entries replayed into the index by recovery
    recovery_ns: int = 0  # simulated time crash_recover() spent

    @property
    def operations(self) -> int:
        return self.lookups.total + self.sets + self.deletes

    @property
    def hit_ratio(self) -> float:
        return self.lookups.ratio

    def elapsed_seconds(self) -> float:
        return max(0, self.finished_at_ns - self.started_at_ns) / SEC

    def throughput_ops(self) -> float:
        """Operations per simulated second over the recorded window."""
        elapsed = self.elapsed_seconds()
        if elapsed <= 0:
            return 0.0
        return self.operations / elapsed

    def snapshot(self) -> Dict[str, float]:
        return {
            "operations": self.operations,
            "hit_ratio": self.hit_ratio,
            "ram_hit_ratio": self.ram_lookups.ratio,
            "flash_hit_ratio": self.flash_lookups.ratio,
            "throughput_ops": self.throughput_ops(),
            "get_p50_ns": self.get_latency.p50(),
            "get_p99_ns": self.get_latency.p99(),
            "set_p50_ns": self.set_latency.p50(),
            "set_p99_ns": self.set_latency.p99(),
            "flushes": self.flushes,
            "retries": self.retries,
            "io_errors": self.io_errors,
            "degraded_misses": self.degraded_misses,
            "quarantined_regions": self.quarantined_regions,
            "recovered_items": self.recovered_items,
            "recovery_ns": self.recovery_ns,
        }
