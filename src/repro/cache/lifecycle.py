"""Tenant item lifecycle: namespace versioning and region liveness.

Two ideas from production hybrid caches, joined to the paper's region
model:

* **Namespace versioning** — every tenant owns a generation counter and
  versioned keys carry it as a prefix (``tenant:gen:key``).  Invalidating
  a tenant bumps the counter in O(1): old-generation keys become
  unreachable (no future request ever names them) and their bytes turn
  into *dead liveness* in whatever region holds them.  Nothing is
  scanned at bump time; the dead generation ages out through region
  reclamation — which is exactly where the ZNS schemes differ (a
  Zone-Cache resets the zone for free, a Block-Cache's FTL copies the
  dead bytes around first).
* **Liveness ledger** — one uniform account of why bytes died: TTL
  expiry, deletes, overwrites, generation bumps, and GC hint drops all
  report here instead of each maintaining ad-hoc counters.  The ledger
  is what the eviction order and the reclaim victim policies read to
  treat a post-storm dead region as a zero-valid victim.

Everything here defaults off (``LifecycleConfig()``) so the engine's
historical behavior — and every golden row — is bit-identical unless a
stack opts in.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import CacheConfigError

# Why bytes die, in one closed set.  "expired" = TTL, "deleted" =
# explicit delete, "overwritten" = superseded by a newer set, "invalidated"
# = the tenant's namespace generation was bumped past the item, "dropped"
# = the backend discarded the region (GC hint / dead zone).
DEAD_REASONS = ("expired", "deleted", "overwritten", "invalidated", "dropped")


@dataclass(frozen=True)
class LifecycleConfig:
    """Opt-in switches for the tenant lifecycle layer.

    ``versioning`` turns on namespace-generation key classification in
    the engine (stale-generation reads refuse, eviction/GC classify dead
    generations).  ``dead_first_eviction`` makes the region manager take
    fully-dead regions as victims before consulting the policy order.
    ``gc_hints`` wires the engine's :meth:`~repro.cache.engine.
    HybridCache.migration_worth` into the backend's GC.
    ``hint_layers`` scopes that wiring: ``"ztl"`` (the historical
    coverage — only schemes with a zone translation layer) or ``"all"``
    (also the F2FS cleaner and the FTL, the full §3.4 surface).
    ``hint_drop_position`` additionally drops regions whose eviction
    position is at or below the threshold (0.0 = only dead regions are
    dropped; 1.0 = every region the hint is asked about).
    ``sweep_expired`` purges due-TTL items at region rotation so expiry
    is visible to eviction ordering without waiting for a re-read; it is
    on by default because it only acts when TTLs are in use.
    """

    versioning: bool = False
    dead_first_eviction: bool = False
    gc_hints: bool = False
    hint_drop_position: float = 0.0
    hint_layers: str = "ztl"
    sweep_expired: bool = True

    HINT_LAYER_CHOICES = ("ztl", "all")

    def __post_init__(self) -> None:
        if not 0.0 <= self.hint_drop_position <= 1.0:
            raise CacheConfigError(
                f"hint_drop_position must be in [0, 1], got "
                f"{self.hint_drop_position}"
            )
        if self.hint_layers not in self.HINT_LAYER_CHOICES:
            raise CacheConfigError(
                f"hint_layers must be one of {self.HINT_LAYER_CHOICES}, got "
                f"{self.hint_layers!r}"
            )


def tenant_token(tenant_id: bytes) -> int:
    """Stable integer handle for a tenant id (journal-friendly)."""
    return zlib.crc32(tenant_id)


def versioned_prefix(tenant_id: bytes, generation: int) -> bytes:
    """The ``tenant:gen:`` key prefix for one namespace generation."""
    return tenant_id + b":" + str(generation).encode("ascii") + b":"


def split_versioned(key: bytes) -> Optional[Tuple[bytes, int]]:
    """Parse ``tenant:gen:rest`` → ``(tenant, gen)``; None if unversioned.

    Unversioned keys (no parsable generation field) always classify as
    current, so mixing versioned and plain tenants in one cache is safe.
    """
    first = key.find(b":")
    if first <= 0:
        return None
    second = key.find(b":", first + 1)
    if second <= first + 1:
        return None
    gen_bytes = key[first + 1 : second]
    if not gen_bytes.isdigit():
        return None
    return key[:first], int(gen_bytes)


class NamespaceVersions:
    """Per-tenant generation counters (the O(1) invalidation core).

    Generations are keyed by :func:`tenant_token` so a bump can be
    journaled as two integers and restored by :meth:`restore` after a
    crash without knowing the tenant's name bytes.
    """

    def __init__(self) -> None:
        self._by_token: Dict[int, int] = {}
        self.bumps = 0

    def generation(self, tenant_id: bytes) -> int:
        return self._by_token.get(tenant_token(tenant_id), 0)

    def bump(self, tenant_id: bytes, generation: Optional[int] = None) -> int:
        """Advance a tenant's generation; returns the new value.

        With an explicit ``generation`` (replicated bumps, hint replay)
        the counter moves forward to it but never backward — replaying a
        superseded bump is a no-op.
        """
        token = tenant_token(tenant_id)
        current = self._by_token.get(token, 0)
        target = current + 1 if generation is None else generation
        if target > current:
            self._by_token[token] = target
            self.bumps += 1
        return self._by_token.get(token, 0)

    def restore(self, token: int, generation: int) -> None:
        """Crash-recovery path: re-apply a journaled bump by token."""
        if generation > self._by_token.get(token, 0):
            self._by_token[token] = generation

    def is_current(self, key: bytes) -> bool:
        """False only for a versioned key whose generation was bumped past."""
        parsed = split_versioned(key)
        if parsed is None:
            return True
        tenant, generation = parsed
        return generation >= self._by_token.get(tenant_token(tenant), 0)

    def tokens(self) -> List[Tuple[int, int]]:
        """(token, generation) pairs, stable order (journal rebuild)."""
        return sorted(self._by_token.items())

    def snapshot(self) -> Dict[str, int]:
        return {str(token): gen for token, gen in self._by_token.items()}

    def restore_snapshot(self, state: Dict[str, int]) -> None:
        for token, gen in state.items():
            self.restore(int(token), gen)


class LivenessLedger:
    """Monotonic account of dead bytes/items by cause.

    One instance per :class:`~repro.cache.region_manager.RegionManager`;
    every removal path reports here so TTL expiry, deletes, overwrites,
    generation bumps, and backend drops are counted uniformly instead of
    each path keeping private counters.
    """

    def __init__(self) -> None:
        self.dead_bytes: Dict[str, int] = {reason: 0 for reason in DEAD_REASONS}
        self.dead_items: Dict[str, int] = {reason: 0 for reason in DEAD_REASONS}
        # Regions the backend dropped instead of migrating because every
        # surviving key belonged to a dead generation (GC-hint path).
        self.dead_generation_regions = 0
        # Fully-dead regions taken by dead-first eviction before the
        # policy order was consulted.
        self.dead_first_evictions = 0

    def note_dead(self, nbytes: int, reason: str, items: int = 1) -> None:
        self.dead_bytes[reason] += nbytes
        self.dead_items[reason] += items

    @property
    def total_dead_bytes(self) -> int:
        return sum(self.dead_bytes.values())

    def snapshot(self) -> Dict[str, int]:
        row = {f"dead_bytes_{r}": self.dead_bytes[r] for r in DEAD_REASONS}
        row.update({f"dead_items_{r}": self.dead_items[r] for r in DEAD_REASONS})
        row["dead_generation_regions"] = self.dead_generation_regions
        row["dead_first_evictions"] = self.dead_first_evictions
        return row

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{reason}={self.dead_bytes[reason]}B" for reason in DEAD_REASONS
        )
        return f"LivenessLedger({parts})"


class ItemLifecycle:
    """Engine-facing facade: TTL bookkeeping + namespace versions.

    The expiry dict is the engine's historical ``_expiry`` (same object,
    shared by reference for the hot-path emptiness check); the heap adds
    the lazy sweep the old dict could not support — due items surface at
    region rotation instead of waiting for a re-read.
    """

    def __init__(self, config: LifecycleConfig) -> None:
        self.config = config
        self.expiry: Dict[bytes, int] = {}
        self._heap: List[Tuple[int, bytes]] = []
        self.namespaces = NamespaceVersions()

    def note_ttl(self, key: bytes, expiry_ns: int) -> None:
        self.expiry[key] = expiry_ns
        heapq.heappush(self._heap, (expiry_ns, key))

    def clear_ttl(self, key: bytes) -> None:
        # The heap entry is left to go stale; ``due`` revalidates against
        # the dict before yielding.
        self.expiry.pop(key, None)

    def due(self, now_ns: int) -> Iterator[bytes]:
        """Keys whose TTL elapsed, draining the heap as it goes."""
        heap = self._heap
        expiry = self.expiry
        while heap and heap[0][0] <= now_ns:
            expiry_ns, key = heapq.heappop(heap)
            if expiry.get(key) == expiry_ns:
                yield key
