"""The hybrid cache engine (CacheLib stand-in).

``HybridCache`` composes the DRAM tier, the sharded index, the region
manager and a scheme backend into the get/set/delete API the paper's
workloads drive.  The data path mirrors CacheLib's log-structured
engine:

* **set** — the entry is packed into the open region's in-memory buffer;
  when the buffer cannot fit the next entry it is flushed to the backend
  and a fresh region is allocated, *evicting an entire sealed region*
  (LRU by default) if the pool is exhausted.  Evicting a region tears
  down one index entry per live item, charged at
  ``cpu.evict_index_per_item_ns`` each — with zone-sized regions this is
  the lock-contention stall of Figure 3(a).
* **get** — DRAM first, then the open buffer (read-from-buffer), then a
  ranged backend read; flash hits promote the region in the LRU.
* **delete** — drops the index entry; space is reclaimed lazily when the
  region is eventually evicted (log-structured semantics).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cache.admission import AdmissionPolicy, build_admission
from repro.cache.backends.base import RegionStore, WafBreakdown
from repro.cache.config import CacheConfig
from repro.cache.index import ShardedIndex
from repro.cache.item import EntryCodec, EntryLocation
from repro.cache.lifecycle import ItemLifecycle, tenant_token
from repro.cache.ram_cache import RamCache
from repro.cache.region import RegionBuffer, RegionMeta
from repro.cache.region_manager import RegionManager
from repro.cache.stats import CacheStats
from repro.errors import (
    CacheConfigError,
    DeviceError,
    EntryCorruptError,
    FatalDeviceError,
    ObjectTooLargeError,
    PowerCutError,
    RetryableError,
    TranslationError,
)
from repro.sim.clock import SimClock

# One seal-journal record: (event, region_id, seq, salt).  The journal is
# the region lifecycle log crash recovery replays: "flush" marks a region
# flush starting, "seal" that it completed, "invalidate" that the region
# was evicted, "quarantine" that its media died, "nsbump" that a tenant
# namespace generation advanced (the region-id slot carries the tenant
# token, the salt slot the new generation).  In a real deployment this
# is the tiny metadata log navy persists; here it lives in memory and
# the crash harness hands it to :meth:`HybridCache.crash_recover`.
JournalEntry = Tuple[str, int, int, int]


class HybridCache:
    """DRAM + log-structured flash cache over one scheme backend."""

    def __init__(
        self,
        clock: SimClock,
        store: RegionStore,
        config: CacheConfig,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        if config.region_size != store.region_size:
            raise CacheConfigError(
                f"config region_size {config.region_size} != backend region "
                f"size {store.region_size}"
            )
        if config.num_regions > store.num_regions:
            raise CacheConfigError(
                f"config num_regions {config.num_regions} exceeds backend's "
                f"{store.num_regions}"
            )
        self._clock = clock
        self.store = store
        self.config = config
        # Hot-path caches: the tracer object is stable for the lifetime
        # of the stack (subscribing mutates it in place), and the CPU
        # cost model is fixed at construction.  get/set/delete read
        # these instead of chasing config/property chains per op.
        self.tracer = store.tracer
        self._get_ns = config.cpu.get_ns
        self._set_ns = config.cpu.set_per_item_ns
        self._delete_ns = config.cpu.delete_ns
        self._copy_ns_per_kib = config.cpu.buffer_copy_ns_per_kib
        self._entry_overhead = EntryCodec.entry_size(
            b"", b"", checksum=config.checksums
        )
        self.admission = (
            admission if admission is not None else build_admission(config.admission)
        )
        self.ram = RamCache(config.ram_bytes)
        self.index = ShardedIndex(config.index_shards)
        # The reclaim window may not exceed an eighth of the region pool:
        # wider windows randomize reuse order enough that zone-level
        # garbage never concentrates and backend GC degenerates.
        effective_window = max(1, min(config.reclaim_window, config.num_regions // 8))
        self.regions = RegionManager(
            config.num_regions,
            config.eviction_policy,
            effective_window,
            dead_first=config.lifecycle.dead_first_eviction,
        )
        self.stats = CacheStats(started_at_ns=clock.now)
        self._waf_window_start = store.waf_raw()
        # Tenant item-lifecycle layer: TTL bookkeeping (the expiry dict
        # below is the lifecycle's, shared by reference for the hot-path
        # emptiness check) and per-tenant namespace generations.
        self.lifecycle = ItemLifecycle(config.lifecycle)
        self._versioning = config.lifecycle.versioning
        # Region generation counter: each opened buffer gets a fresh
        # generation, used as the checksum salt (see item.py).
        self._generation = 0
        self._journal_seq = 0
        self.seal_journal: List[JournalEntry] = []
        self._buffer: RegionBuffer = self._open_fresh_region()
        self._open_keys: Set[bytes] = set()
        # Per-key on-flash entry sizes for the open region, carried into
        # RegionMeta at seal time so removals account in bytes.
        self._open_sizes: Dict[bytes, int] = {}
        # TTL bookkeeping for items whose set() carried an expiry; the
        # authoritative copy also travels in the on-flash entry header.
        self._expiry: dict = self.lifecycle.expiry

    # --- public API -----------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Look up a key across DRAM, the open buffer, and flash.

        Expired items (TTL) read as misses and are purged on access.
        """
        start_ns = self._clock.now
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("engine", "get"):
                return self._get_impl(key, start_ns)
        return self._get_impl(key, start_ns)

    def _get_impl(self, key: bytes, start_ns: int) -> Optional[bytes]:
        clock = self._clock
        clock.now = start_ns + self._get_ns
        stats = self.stats
        if self._expiry:
            expiry = self._expiry.get(key)
            if expiry is not None and clock.now >= expiry:
                self._purge_expired(key)
                stats.ram_lookups.record(False)
                self._finish_lookup(start_ns, hit=False)
                return None
        if self._versioning and not self.lifecycle.namespaces.is_current(key):
            # The key's namespace generation was bumped past: the item
            # is dead regardless of which tier still holds bytes for it.
            # Purging here keeps the guarantee that no read — including
            # replica fallbacks and crash-recovered indexes — ever
            # serves a pre-bump generation.
            self._discard_stale(key)
            stats.ram_lookups.record(False)
            self._finish_lookup(start_ns, hit=False)
            return None
        value = self.ram.get(key)
        if value is not None:
            ram_lookups = stats.ram_lookups
            ram_lookups.total += 1
            ram_lookups.hits += 1
            lookups = stats.lookups
            lookups.total += 1
            lookups.hits += 1
            recorder = stats.get_latency
            recorder._samples.append(clock.now - start_ns)
            recorder._sorted = None
            stats.finished_at_ns = clock.now
            return value
        stats.ram_lookups.total += 1
        location = self.index.get(key)
        if location is None:
            lookups = stats.lookups
            lookups.total += 1
            recorder = stats.get_latency
            recorder._samples.append(clock.now - start_ns)
            recorder._sorted = None
            stats.finished_at_ns = clock.now
            return None
        value = self._read_entry(key, location)
        if value is None:
            stats.flash_lookups.record(False)
            self._finish_lookup(start_ns, hit=False)
            return None
        stats.flash_lookups.record(True)
        self.regions.touch(location.region_id)
        if self.config.populate_ram_on_flash_hit:
            self.ram.put(key, value)
        self._finish_lookup(start_ns, hit=True)
        return value

    def set(self, key: bytes, value: bytes, ttl_seconds: Optional[float] = None) -> bool:
        """Insert/replace an item; returns True if it reached flash.

        ``ttl_seconds`` sets an expiry relative to the simulated clock;
        expired items read as misses.
        """
        start_ns = self._clock.now
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("engine", "set"):
                return self._set_impl(key, value, ttl_seconds, start_ns)
        return self._set_impl(key, value, ttl_seconds, start_ns)

    def _set_impl(
        self,
        key: bytes,
        value: bytes,
        ttl_seconds: Optional[float],
        start_ns: int,
    ) -> bool:
        clock = self._clock
        clock.now = start_ns + self._set_ns
        stats = self.stats
        stats.sets += 1
        entry_size = self._entry_overhead + len(key) + len(value)
        if entry_size > self.config.region_size:
            raise ObjectTooLargeError(
                f"entry of {entry_size}B exceeds region size "
                f"{self.config.region_size}"
            )
        expiry_ns = 0
        if ttl_seconds is not None:
            if ttl_seconds <= 0:
                raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
            expiry_ns = clock.now + int(ttl_seconds * 1e9)
            self.lifecycle.note_ttl(key, expiry_ns)
        elif self._expiry:
            self.lifecycle.clear_ttl(key)
        self.ram.put(key, value)
        if not self.admission.admit(key, value):
            self._drop_flash_copy(key)
            self._finish_mutation(start_ns, stats.set_latency)
            return False
        buffer = self._buffer
        if entry_size > buffer.remaining:
            self._seal_and_rotate()
            buffer = self._buffer
        clock.now += self._copy_ns_per_kib * (entry_size // 1024)
        location = buffer.append(key, value, expiry_ns)
        old = self.index.put(key, location)
        if old is not None and old.region_id != buffer.region_id:
            self.regions.note_key_removed(old.region_id, key, "overwritten")
        elif old is not None:
            # Superseded within the open buffer: its bytes die in place.
            self.regions.ledger.note_dead(old.length, "overwritten")
        self._open_keys.add(key)
        self._open_sizes[key] = location.length
        stats.sets_admitted += 1
        recorder = stats.set_latency
        recorder._samples.append(clock.now - start_ns)
        recorder._sorted = None
        stats.finished_at_ns = clock.now
        return True

    def delete(self, key: bytes) -> bool:
        """Remove a key from every tier; returns True if it existed."""
        clock = self._clock
        start_ns = clock.now
        clock.now = start_ns + self._delete_ns
        stats = self.stats
        stats.deletes += 1
        if self._expiry:
            self.lifecycle.clear_ttl(key)
        in_ram = self.ram.remove(key)
        location = self.index.remove(key)
        if location is not None:
            self._note_removed(location, key, "deleted")
        recorder = stats.delete_latency
        recorder._samples.append(clock.now - start_ns)
        recorder._sorted = None
        stats.finished_at_ns = clock.now
        return in_ram or location is not None

    def contains(self, key: bytes) -> bool:
        """Index/DRAM membership probe without touching the device."""
        return key in self.ram or key in self.index

    def flush(self) -> None:
        """Force-seal the open region (tests and shutdown paths)."""
        if self._buffer.used > 0:
            self._seal_and_rotate()

    def waf(self) -> WafBreakdown:
        """Cumulative scheme write-amplification breakdown."""
        return self.store.waf()

    def waf_window(self) -> WafBreakdown:
        """WAF since the last :meth:`reset_stats` (Table 1's metric is a
        steady-state quantity, so the population transient is excluded)."""
        return self._waf_window_start.window_to(self.store.waf_raw())

    def item_count(self) -> int:
        """Distinct keys reachable via flash index (DRAM may add more)."""
        return len(self.index)

    def reset_stats(self) -> None:
        """Start a fresh measurement window (e.g. after warm-up)."""
        self.stats = CacheStats(started_at_ns=self._clock.now)
        self._waf_window_start = self.store.waf_raw()

    # --- tenant lifecycle -----------------------------------------------------------

    def invalidate_namespace(
        self, tenant_id: bytes, generation: Optional[int] = None
    ) -> int:
        """Bump a tenant's namespace generation in O(1); returns it.

        Nothing is scanned: keys of older generations simply classify as
        dead from here on — reads refuse them, eviction and GC account
        their bytes as "invalidated" when the region is reclaimed.  The
        bump is journaled so it survives :meth:`crash_recover`.
        """
        gen = self.lifecycle.namespaces.bump(tenant_id, generation)
        self._journal("nsbump", tenant_token(tenant_id), gen)
        return gen

    def migration_worth(self, region_id: int) -> bool:
        """§3.4 co-design hint for backend GC: copy this region?

        False drops the region instead of migrating it.  A region is not
        worth copying when the cache no longer tracks it, when every key
        in it already died (deletes/TTL sweep), when all surviving keys
        belong to dead namespace generations, or when it sits below the
        configured eviction-position threshold (about to be reclaimed
        anyway).  Wired as ``layer.gc.migration_hint`` by the scheme
        builders when ``lifecycle.gc_hints`` is set.
        """
        regions = self.regions
        meta = regions.meta(region_id)
        if meta is None:
            return False  # evicted or purged: the cache is done with it
        if not meta.keys:
            return False  # fully dead already
        if self._versioning:
            ns = self.lifecycle.namespaces
            if all(not ns.is_current(key) for key in meta.keys):
                return False  # whole region belongs to dead generations
        threshold = self.config.lifecycle.hint_drop_position
        if threshold > 0.0:
            position = regions.eviction_position(region_id)
            # <= so threshold=1.0 covers the whole documented [0, 1]
            # range: eviction_position is a fraction in [0, 1] and the
            # most-recently-sealed region sits exactly at 1.0.
            if position is not None and position <= threshold:
                return False
        return True

    def on_region_dropped(self, region_id: int) -> None:
        """Backend GC dropped a region the hint refused to migrate:
        purge its index entries and account each key's bytes by cause
        (dead generations as "invalidated", the rest as "dropped").
        Wired as ``layer.gc.on_drop`` next to :meth:`migration_worth`."""
        meta = self.regions.meta(region_id)
        if meta is None:
            return
        ns = self.lifecycle.namespaces
        ledger = self.regions.ledger
        dead_generation = bool(meta.keys)
        for key in list(meta.keys):
            location = self.index.get(key)
            if location is not None and location.region_id == region_id:
                self.index.remove(key)
                self.stats.dropped_items += 1
            if self._versioning and not ns.is_current(key):
                reason = "invalidated"
            else:
                reason = "dropped"
                dead_generation = False
            self.regions.note_key_removed(region_id, key, reason)
        if dead_generation and self._versioning:
            ledger.dead_generation_regions += 1

    # --- warm restart -------------------------------------------------------------

    def shutdown(self) -> dict:
        """Clean shutdown: flush the open buffer and snapshot the state a
        warm restart needs (index, region metadata, eviction order).

        CacheLib's navy engine persists exactly this so flash contents
        survive process restarts; the cached *data* already lives on the
        (persistent) backend device.
        """
        self.flush()
        sealed = []
        # sealed_seq preserves the eviction order across the restart.
        for rid, meta in sorted(
            self.regions._sealed.items(), key=lambda kv: kv[1].sealed_seq
        ):
            sealed.append(
                {
                    "region_id": rid,
                    "sealed_seq": meta.sealed_seq,
                    "keys": sorted(meta.keys),
                    "salt": meta.salt,
                }
            )
        index = {}
        for key in self.index.keys():
            location = self.index.get(key)
            index[key] = (location.region_id, location.offset, location.length)
        return {
            "config": {
                "region_size": self.config.region_size,
                "num_regions": self.config.num_regions,
            },
            "sealed": sealed,
            "free": list(self.regions._free),
            "quarantined": sorted(self.regions._quarantined),
            "generation": self._generation,
            "index": index,
            "expiry": dict(self._expiry),
            "namespaces": self.lifecycle.namespaces.snapshot(),
            "open_region_id": self._buffer.region_id,
        }

    @classmethod
    def warm_restart(
        cls,
        clock: SimClock,
        store: RegionStore,
        config: CacheConfig,
        state: dict,
        admission: Optional[AdmissionPolicy] = None,
    ) -> "HybridCache":
        """Rebuild a cache over the same (persistent) backend.

        DRAM contents are gone (it was a restart); the flash index and
        region metadata come back, so flash hits resume immediately.
        """
        if state["config"]["region_size"] != config.region_size:
            raise CacheConfigError("warm restart with a different region size")
        if state["config"]["num_regions"] != config.num_regions:
            raise CacheConfigError("warm restart with a different region count")
        cache = cls(clock, store, config, admission)
        # Discard the constructor's fresh region and rebuild exactly the
        # persisted layout.
        cache.regions = RegionManager(
            config.num_regions, config.eviction_policy,
            max(1, min(config.reclaim_window, config.num_regions // 8)),
            dead_first=config.lifecycle.dead_first_eviction,
        )
        cache.regions._free = [
            rid for rid in state["free"] if rid != state["open_region_id"]
        ]
        for rid in state.get("quarantined", []):
            cache.regions.quarantine(rid)
            cache.stats.quarantined_regions += 1
        for entry in state["sealed"]:
            meta = RegionMeta(
                entry["region_id"],
                keys=set(entry["keys"]),
                salt=entry.get("salt", 0),
            )
            cache.regions.seal(meta)
        # Generations keep counting up across the restart so the new open
        # buffer's checksum salt never collides with on-flash entries.
        cache._generation = max(state.get("generation", 0), cache._generation) + 1
        cache._buffer = RegionBuffer(
            state["open_region_id"],
            config.region_size,
            clock.now,
            checksums=config.checksums,
            salt=cache._generation,
        )
        cache._open_keys = set()
        cache._open_sizes = {}
        for key, (region_id, offset, length) in state["index"].items():
            cache.index.put(key, EntryLocation(region_id, offset, length))
            meta = cache.regions.meta(region_id)
            if meta is not None and key in meta.keys:
                meta.entry_bytes[key] = length
                meta.live_bytes += length
        for key, expiry_ns in state["expiry"].items():
            cache.lifecycle.note_ttl(key, expiry_ns)
        cache.lifecycle.namespaces.restore_snapshot(state.get("namespaces", {}))
        return cache

    @classmethod
    def crash_recover(
        cls,
        clock: SimClock,
        store: RegionStore,
        config: CacheConfig,
        journal: Iterable[JournalEntry],
        admission: Optional[AdmissionPolicy] = None,
    ) -> "HybridCache":
        """Rebuild a cache after a power cut from the seal journal.

        Unlike :meth:`warm_restart` there is no trusted shutdown snapshot:
        only the (tiny, persisted) region lifecycle journal and whatever
        bytes actually reached the media survive.  Recovery replays the
        journal's last event per region:

        * ``quarantine`` — the media was dead before the cut; stays dead.
        * ``invalidate`` — the region was evicted; nothing to recover.
        * ``seal`` / ``flush`` — scan the on-media region payload and
          re-insert every entry that decodes cleanly.  With per-item
          checksums (``config.checksums``) a torn flush recovers its
          intact prefix and drops the torn tail; without them an
          unsealed flush cannot be distinguished from a torn one, so
          only fully sealed regions are replayed.

        The invariant tests assert: a recovered get never serves a torn
        entry, and never serves a value older than the newest one that
        was fully persisted for that key.
        """
        start_ns = clock.now
        cache = cls(clock, store, config, admission)
        effective_window = max(1, min(config.reclaim_window, config.num_regions // 8))
        cache.regions = RegionManager(
            config.num_regions,
            config.eviction_policy,
            effective_window,
            dead_first=config.lifecycle.dead_first_eviction,
        )
        cache.index = ShardedIndex(config.index_shards)
        cache.seal_journal = []
        cache._journal_seq = 0
        # Journal entries arrive in seq order; the last event per region
        # decides its fate (later events supersede earlier lifecycle).
        # Namespace bumps are not region events: every one replays (the
        # counters only move forward), so no recovered read can serve a
        # pre-bump generation.
        last: Dict[int, JournalEntry] = {}
        for record in journal:
            if record[0] == "nsbump":
                cache.lifecycle.namespaces.restore(record[1], record[3])
                continue
            last[record[1]] = record
        key_region: Dict[bytes, int] = {}
        replayed: List[Tuple[int, int]] = []  # (region_id, salt) sealed again
        quarantined: List[int] = []
        for event, rid, _seq, salt in sorted(last.values(), key=lambda r: r[2]):
            if event == "quarantine":
                cache.regions.quarantine(rid)
                cache.stats.quarantined_regions += 1
                quarantined.append(rid)
                continue
            if event == "invalidate":
                continue
            if event == "flush" and not config.checksums:
                # Mid-flush at the cut and no way to verify what landed.
                continue
            try:
                payload = store.read(rid, 0, config.region_size)
            except (DeviceError, TranslationError):
                cache.regions.quarantine(rid)
                cache.stats.quarantined_regions += 1
                quarantined.append(rid)
                continue
            entries, torn = EntryCodec.scan_region(
                payload, salt=salt, require_checksum=config.checksums
            )
            if torn:
                cache.stats.torn_items_dropped += 1
            keys: Set[bytes] = set()
            sizes: Dict[bytes, int] = {}
            for offset, length, entry in entries:
                previous_rid = key_region.get(entry.key)
                if previous_rid is not None and previous_rid != rid:
                    cache.regions.note_key_removed(
                        previous_rid, entry.key, "overwritten"
                    )
                cache.index.put(entry.key, EntryLocation(rid, offset, length))
                key_region[entry.key] = rid
                keys.add(entry.key)
                sizes[entry.key] = length
                if entry.expiry_ns:
                    cache.lifecycle.note_ttl(entry.key, entry.expiry_ns)
                cache.stats.recovered_items += 1
            meta = RegionMeta(
                rid,
                keys=keys,
                salt=salt,
                entry_bytes=sizes,
                live_bytes=sum(sizes.values()),
            )
            cache.regions.seal(meta)
            replayed.append((rid, salt))
        in_use = {rid for rid, _ in replayed} | set(quarantined)
        cache.regions._free = [
            rid for rid in range(config.num_regions) if rid not in in_use
        ]
        # Rebuild the journal to describe the recovered layout,
        # including the namespace generations (so a second crash still
        # refuses pre-bump reads).
        for rid, salt in replayed:
            cache._journal("seal", rid, salt)
        for rid in quarantined:
            cache._journal("quarantine", rid)
        for token, gen in cache.lifecycle.namespaces.tokens():
            cache._journal("nsbump", token, gen)
        cache._generation = max(
            [salt for _, salt in replayed] + [cache._generation]
        )
        cache._buffer = cache._open_fresh_region()
        cache._open_keys = set()
        cache._open_sizes = {}
        cache.stats.recovery_ns = clock.now - start_ns
        return cache

    # --- internals -----------------------------------------------------------------------

    def _open_fresh_region(self) -> RegionBuffer:
        # The new buffer's fill window opens *before* the eviction work so
        # that index-teardown stalls show up in region fill times — the
        # Figure 3(a) jump "caused by eviction operations in other threads".
        opened_at = self._clock.now
        while True:
            region_id, evicted = self.regions.allocate()
            self._clock.advance(
                self.config.cpu.region_alloc_ns
                + self.config.cpu.buffer_alloc_ns_per_mib
                * self.config.region_size
                // (1024 * 1024)
            )
            if evicted:
                self._evict_keys(region_id, evicted)
            # Invalidation may have discovered the region's media is dead
            # (e.g. the zone refused its reset) — take another one.
            if not self.regions.is_quarantined(region_id):
                break
        self._generation += 1
        return RegionBuffer(
            region_id,
            self.config.region_size,
            opened_at,
            checksums=self.config.checksums,
            salt=self._generation,
        )

    def _seal_and_rotate(self) -> None:
        self._purge_due()
        buffer = self._buffer
        fill_ns = self._clock.now - buffer.opened_at_ns
        self.stats.region_fill_durations_ns.append(fill_ns)
        self._journal("flush", buffer.region_id, buffer.salt)
        region_id = self._flush_payload(buffer.region_id, buffer.finalize())
        self.stats.flushes += 1
        sizes = dict(self._open_sizes)
        meta = RegionMeta(
            region_id,
            keys=set(self._open_keys),
            salt=buffer.salt,
            entry_bytes=sizes,
            live_bytes=sum(sizes.values()),
        )
        meta.fill_duration_ns = fill_ns
        self.regions.seal(meta)
        self._journal("seal", region_id, buffer.salt)
        self._open_keys = set()
        self._open_sizes = {}
        self._buffer = self._open_fresh_region()

    def _purge_due(self) -> None:
        """Lazy TTL sweep at region rotation.

        Without it expiry is access-only: an expired-but-never-reread
        item's bytes stay in its region's key set forever, so eviction
        ordering never sees TTL decay.  Rotation is a natural epoch —
        frequent under write pressure, free when no TTLs are in use.
        """
        if not self.lifecycle.config.sweep_expired or not self._expiry:
            return
        due = list(self.lifecycle.due(self._clock.now))
        for key in due:
            self._purge_expired(key)

    def _flush_payload(self, region_id: int, payload: bytes) -> int:
        """Write a sealed region with retries; returns where it landed.

        Transient errors back off and retry per ``config.retry``.  When
        the target region's media is gone (fatal error, or transient
        errors past the budget) the region is quarantined and the
        in-flight flush re-routes to a freshly allocated region — the
        graceful-degradation path: the cache shrinks, it does not crash.
        """
        last_error: Optional[BaseException] = None
        for _ in range(4):
            try:
                self._write_region_with_retries(region_id, payload)
                return region_id
            except PowerCutError:
                raise
            except (FatalDeviceError, RetryableError) as error:
                last_error = error
                region_id = self._reroute_flush(region_id)
        assert last_error is not None
        raise last_error

    def _write_region_with_retries(self, region_id: int, payload: bytes) -> None:
        policy = self.config.retry
        attempt = 0
        while True:
            try:
                self.store.write_region(region_id, payload)
                return
            except PowerCutError:
                raise
            except FatalDeviceError:
                self.stats.io_errors += 1
                raise
            except RetryableError:
                attempt += 1
                self.stats.retries += 1
                if attempt >= policy.max_attempts:
                    self.stats.io_errors += 1
                    raise
                self._clock.advance(policy.backoff_for(attempt - 1))

    def _reroute_flush(self, dead_region_id: int) -> int:
        """Quarantine a dead flush target and point the open keys at a
        fresh region id so the retried flush lands somewhere healthy."""
        self._quarantine_region(dead_region_id)
        while True:
            new_region_id, evicted = self.regions.allocate()
            if evicted:
                self._evict_keys(new_region_id, evicted)
            if not self.regions.is_quarantined(new_region_id):
                break
        for key in self._open_keys:
            location = self.index.get(key)
            if location is not None and location.region_id == dead_region_id:
                self.index.put(
                    key,
                    EntryLocation(new_region_id, location.offset, location.length),
                )
        self.store.tracer.emit_event(
            "engine.fault", "reroute_flush", offset=new_region_id
        )
        return new_region_id

    def _quarantine_region(self, region_id: int) -> None:
        """Permanently retire a region whose media died; drop its items."""
        if self.regions.is_quarantined(region_id):
            return
        meta = self.regions.meta(region_id)
        if meta is not None:
            for key in list(meta.keys):
                location = self.index.get(key)
                if location is not None and location.region_id == region_id:
                    self.index.remove(key)
                    self.stats.dropped_items += 1
        self.regions.quarantine(region_id)
        self.stats.quarantined_regions += 1
        self._journal("quarantine", region_id)
        self.store.tracer.emit_event("engine.fault", "quarantine", offset=region_id)

    def _purge_region(self, region_id: int) -> None:
        """Forget a region's items after the backend lost its mapping
        (e.g. its zone died under GC).  Unlike quarantine, the region id
        itself stays usable — the store can write it again later."""
        meta = self.regions.meta(region_id)
        if meta is None:
            return
        ns = self.lifecycle.namespaces
        for key in list(meta.keys):
            location = self.index.get(key)
            if location is not None and location.region_id == region_id:
                self.index.remove(key)
                self.stats.dropped_items += 1
            reason = (
                "invalidated"
                if self._versioning and not ns.is_current(key)
                else "dropped"
            )
            self.regions.note_key_removed(region_id, key, reason)

    def _evict_keys(self, region_id: int, evicted: Set[bytes]) -> None:
        """Tear down index entries of a reclaimed region (lock-convoy model)."""
        self.store.tracer.emit_event(
            "reclaim.cache", "evict", offset=region_id, length=len(evicted)
        )
        self._clock.advance(self.config.cpu.eviction_teardown_ns(len(evicted)))
        ns = self.lifecycle.namespaces if self._versioning else None
        ledger = self.regions.ledger
        for key in evicted:
            location = self.index.get(key)
            if location is not None and location.region_id == region_id:
                self.index.remove(key)
                if ns is not None and not ns.is_current(key):
                    # Dead-generation bytes discovered at eviction: the
                    # bump never scanned, so this is where they are
                    # finally accounted.
                    ledger.note_dead(location.length, "invalidated")
        self._journal("invalidate", region_id)
        try:
            self.store.invalidate_region(region_id)
        except PowerCutError:
            raise
        except RetryableError:
            # Invalidation is advisory (the region will be overwritten
            # anyway); skip it this round rather than stall the reclaim.
            self.stats.retries += 1
        except FatalDeviceError:
            self._quarantine_region(region_id)

    def _read_entry(self, key: bytes, location: EntryLocation) -> Optional[bytes]:
        if (
            location.region_id == self._buffer.region_id
            and self.config.read_from_buffer
        ):
            blob = self._buffer.read(location.offset, location.length)
            salt = self._buffer.salt
        else:
            blob = self._read_location(location)
            if blob is None:
                return None
            meta = self.regions.meta(location.region_id)
            salt = meta.salt if meta is not None else 0
        try:
            entry = EntryCodec.decode_entry(blob, salt=salt)
        except (ValueError, EntryCorruptError):
            # Torn or corrupt on-flash bytes: drop the item, serve a miss.
            self.stats.corrupt_reads += 1
            self._drop_flash_copy(key)
            return None
        if entry.key != key:
            # Stale index entry (should not happen; counted defensively).
            self.stats.stale_index_reads += 1
            self.index.remove(key)
            return None
        if entry.is_expired(self._clock.now):
            self.stats.expired_reads += 1
            self._purge_expired(key)
            return None
        return entry.value

    def _read_location(self, location: EntryLocation) -> Optional[bytes]:
        """Ranged backend read with retry/degradation; None means miss."""
        policy = self.config.retry
        attempt = 0
        while True:
            try:
                return self.store.read(
                    location.region_id, location.offset, location.length
                )
            except PowerCutError:
                raise
            except RetryableError:
                attempt += 1
                self.stats.retries += 1
                if attempt >= policy.max_attempts:
                    # Past the budget: degrade to a miss but keep the
                    # mapping — a transient fault may yet heal.
                    self.stats.io_errors += 1
                    self.stats.degraded_misses += 1
                    return None
                self._clock.advance(policy.backoff_for(attempt - 1))
            except FatalDeviceError:
                self.stats.io_errors += 1
                self.stats.degraded_misses += 1
                self._quarantine_region(location.region_id)
                return None
            except TranslationError:
                # The middle layer dropped the region (its zone died
                # under GC): purge the stale mappings, count misses.
                self.stats.io_errors += 1
                self.stats.degraded_misses += 1
                self._purge_region(location.region_id)
                return None

    def _journal(self, event: str, region_id: int, salt: int = 0) -> None:
        self._journal_seq += 1
        self.seal_journal.append((event, region_id, self._journal_seq, salt))

    def _is_expired(self, key: bytes) -> bool:
        expiry = self._expiry.get(key)
        return expiry is not None and self._clock.now >= expiry

    def _note_removed(self, location: EntryLocation, key: bytes, reason: str) -> None:
        """Shared removal accounting: open-buffer keys leave the seal
        set, sealed keys report to the region's liveness ledger."""
        if location.region_id == self._buffer.region_id:
            self._open_keys.discard(key)
            if self._open_sizes.pop(key, None) is not None:
                self.regions.ledger.note_dead(location.length, reason)
        else:
            self.regions.note_key_removed(location.region_id, key, reason)

    def _purge_expired(self, key: bytes) -> None:
        self.lifecycle.clear_ttl(key)
        self.ram.remove(key)
        location = self.index.remove(key)
        if location is not None:
            self._note_removed(location, key, "expired")

    def _discard_stale(self, key: bytes) -> None:
        """Purge a key whose namespace generation was bumped past."""
        self.lifecycle.clear_ttl(key)
        self.ram.remove(key)
        location = self.index.remove(key)
        if location is not None:
            self._note_removed(location, key, "invalidated")

    def _drop_flash_copy(self, key: bytes) -> None:
        """An unadmitted overwrite supersedes any flash copy."""
        location = self.index.remove(key)
        if location is not None:
            self._note_removed(location, key, "overwritten")

    def _finish_lookup(self, start_ns: int, hit: bool) -> None:
        self.stats.lookups.record(hit)
        self.stats.get_latency.record(self._clock.now - start_ns)
        self.stats.finished_at_ns = self._clock.now

    def _finish_mutation(self, start_ns: int, recorder) -> None:
        recorder.record(self._clock.now - start_ns)
        self.stats.finished_at_ns = self._clock.now

    def __repr__(self) -> str:
        return (
            f"HybridCache({self.store.scheme_name}, regions="
            f"{self.config.num_regions}×{self.config.region_size}B, "
            f"items={len(self.index)})"
        )
