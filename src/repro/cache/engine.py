"""The hybrid cache engine (CacheLib stand-in).

``HybridCache`` composes the DRAM tier, the sharded index, the region
manager and a scheme backend into the get/set/delete API the paper's
workloads drive.  The data path mirrors CacheLib's log-structured
engine:

* **set** — the entry is packed into the open region's in-memory buffer;
  when the buffer cannot fit the next entry it is flushed to the backend
  and a fresh region is allocated, *evicting an entire sealed region*
  (LRU by default) if the pool is exhausted.  Evicting a region tears
  down one index entry per live item, charged at
  ``cpu.evict_index_per_item_ns`` each — with zone-sized regions this is
  the lock-contention stall of Figure 3(a).
* **get** — DRAM first, then the open buffer (read-from-buffer), then a
  ranged backend read; flash hits promote the region in the LRU.
* **delete** — drops the index entry; space is reclaimed lazily when the
  region is eventually evicted (log-structured semantics).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.cache.admission import AdmissionPolicy, AdmitAll
from repro.cache.backends.base import RegionStore, WafBreakdown
from repro.cache.config import CacheConfig
from repro.cache.index import ShardedIndex
from repro.cache.item import EntryCodec, EntryLocation
from repro.cache.ram_cache import RamCache
from repro.cache.region import RegionBuffer, RegionMeta
from repro.cache.region_manager import RegionManager
from repro.cache.stats import CacheStats
from repro.errors import CacheConfigError, ObjectTooLargeError
from repro.sim.clock import SimClock


class HybridCache:
    """DRAM + log-structured flash cache over one scheme backend."""

    def __init__(
        self,
        clock: SimClock,
        store: RegionStore,
        config: CacheConfig,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        if config.region_size != store.region_size:
            raise CacheConfigError(
                f"config region_size {config.region_size} != backend region "
                f"size {store.region_size}"
            )
        if config.num_regions > store.num_regions:
            raise CacheConfigError(
                f"config num_regions {config.num_regions} exceeds backend's "
                f"{store.num_regions}"
            )
        self._clock = clock
        self.store = store
        self.config = config
        self.admission = admission if admission is not None else AdmitAll()
        self.ram = RamCache(config.ram_bytes)
        self.index = ShardedIndex(config.index_shards)
        # The reclaim window may not exceed an eighth of the region pool:
        # wider windows randomize reuse order enough that zone-level
        # garbage never concentrates and backend GC degenerates.
        effective_window = max(1, min(config.reclaim_window, config.num_regions // 8))
        self.regions = RegionManager(
            config.num_regions, config.eviction_policy, effective_window
        )
        self.stats = CacheStats(started_at_ns=clock.now)
        self._waf_window_start = store.waf_raw()
        self._buffer: RegionBuffer = self._open_fresh_region()
        self._open_keys: Set[bytes] = set()
        # TTL bookkeeping for items whose set() carried an expiry; the
        # authoritative copy also travels in the on-flash entry header.
        self._expiry: dict = {}

    # --- public API -----------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Look up a key across DRAM, the open buffer, and flash.

        Expired items (TTL) read as misses and are purged on access.
        """
        start_ns = self._clock.now
        with self.store.tracer.span("engine", "get"):
            self._clock.advance(self.config.cpu.get_ns)
            if self._is_expired(key):
                self._purge_expired(key)
                self.stats.ram_lookups.record(False)
                self._finish_lookup(start_ns, hit=False)
                return None
            value = self.ram.get(key)
            if value is not None:
                self.stats.ram_lookups.record(True)
                self._finish_lookup(start_ns, hit=True)
                return value
            self.stats.ram_lookups.record(False)
            location = self.index.get(key)
            if location is None:
                self._finish_lookup(start_ns, hit=False)
                return None
            value = self._read_entry(key, location)
            if value is None:
                self.stats.flash_lookups.record(False)
                self._finish_lookup(start_ns, hit=False)
                return None
            self.stats.flash_lookups.record(True)
            self.regions.touch(location.region_id)
            if self.config.populate_ram_on_flash_hit:
                self.ram.put(key, value)
            self._finish_lookup(start_ns, hit=True)
            return value

    def set(self, key: bytes, value: bytes, ttl_seconds: Optional[float] = None) -> bool:
        """Insert/replace an item; returns True if it reached flash.

        ``ttl_seconds`` sets an expiry relative to the simulated clock;
        expired items read as misses.
        """
        start_ns = self._clock.now
        with self.store.tracer.span("engine", "set"):
            self._clock.advance(self.config.cpu.set_per_item_ns)
            self.stats.sets += 1
            entry_size = EntryCodec.entry_size(key, value)
            if entry_size > self.config.region_size:
                raise ObjectTooLargeError(
                    f"entry of {entry_size}B exceeds region size "
                    f"{self.config.region_size}"
                )
            expiry_ns = 0
            if ttl_seconds is not None:
                if ttl_seconds <= 0:
                    raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
                expiry_ns = self._clock.now + int(ttl_seconds * 1e9)
                self._expiry[key] = expiry_ns
            else:
                self._expiry.pop(key, None)
            self.ram.put(key, value)
            if not self.admission.admit(key, value):
                self._drop_flash_copy(key)
                self._finish_mutation(start_ns, self.stats.set_latency)
                return False
            if not self._buffer.fits(entry_size):
                self._seal_and_rotate()
            self._clock.advance(
                self.config.cpu.buffer_copy_ns_per_kib * (entry_size // 1024)
            )
            location = self._buffer.append(key, value, expiry_ns)
            old = self.index.put(key, location)
            if old is not None and old.region_id != self._buffer.region_id:
                self.regions.note_key_removed(old.region_id, key)
            self._open_keys.add(key)
            self.stats.sets_admitted += 1
            self._finish_mutation(start_ns, self.stats.set_latency)
            return True

    def delete(self, key: bytes) -> bool:
        """Remove a key from every tier; returns True if it existed."""
        start_ns = self._clock.now
        self._clock.advance(self.config.cpu.delete_ns)
        self.stats.deletes += 1
        self._expiry.pop(key, None)
        in_ram = self.ram.remove(key)
        location = self.index.remove(key)
        if location is not None:
            if location.region_id == self._buffer.region_id:
                self._open_keys.discard(key)
            else:
                self.regions.note_key_removed(location.region_id, key)
        self._finish_mutation(start_ns, self.stats.delete_latency)
        return in_ram or location is not None

    def contains(self, key: bytes) -> bool:
        """Index/DRAM membership probe without touching the device."""
        return key in self.ram or key in self.index

    def flush(self) -> None:
        """Force-seal the open region (tests and shutdown paths)."""
        if self._buffer.used > 0:
            self._seal_and_rotate()

    def waf(self) -> WafBreakdown:
        """Cumulative scheme write-amplification breakdown."""
        return self.store.waf()

    def waf_window(self) -> WafBreakdown:
        """WAF since the last :meth:`reset_stats` (Table 1's metric is a
        steady-state quantity, so the population transient is excluded)."""
        return self._waf_window_start.window_to(self.store.waf_raw())

    def item_count(self) -> int:
        """Distinct keys reachable via flash index (DRAM may add more)."""
        return len(self.index)

    def reset_stats(self) -> None:
        """Start a fresh measurement window (e.g. after warm-up)."""
        self.stats = CacheStats(started_at_ns=self._clock.now)
        self._waf_window_start = self.store.waf_raw()

    # --- warm restart -------------------------------------------------------------

    def shutdown(self) -> dict:
        """Clean shutdown: flush the open buffer and snapshot the state a
        warm restart needs (index, region metadata, eviction order).

        CacheLib's navy engine persists exactly this so flash contents
        survive process restarts; the cached *data* already lives on the
        (persistent) backend device.
        """
        self.flush()
        sealed = []
        # sealed_seq preserves the eviction order across the restart.
        for rid, meta in sorted(
            self.regions._sealed.items(), key=lambda kv: kv[1].sealed_seq
        ):
            sealed.append(
                {
                    "region_id": rid,
                    "sealed_seq": meta.sealed_seq,
                    "keys": sorted(meta.keys),
                }
            )
        index = {}
        for key in self.index.keys():
            location = self.index.get(key)
            index[key] = (location.region_id, location.offset, location.length)
        return {
            "config": {
                "region_size": self.config.region_size,
                "num_regions": self.config.num_regions,
            },
            "sealed": sealed,
            "free": list(self.regions._free),
            "index": index,
            "expiry": dict(self._expiry),
            "open_region_id": self._buffer.region_id,
        }

    @classmethod
    def warm_restart(
        cls,
        clock: SimClock,
        store: RegionStore,
        config: CacheConfig,
        state: dict,
        admission: Optional[AdmissionPolicy] = None,
    ) -> "HybridCache":
        """Rebuild a cache over the same (persistent) backend.

        DRAM contents are gone (it was a restart); the flash index and
        region metadata come back, so flash hits resume immediately.
        """
        if state["config"]["region_size"] != config.region_size:
            raise CacheConfigError("warm restart with a different region size")
        if state["config"]["num_regions"] != config.num_regions:
            raise CacheConfigError("warm restart with a different region count")
        cache = cls(clock, store, config, admission)
        # Discard the constructor's fresh region and rebuild exactly the
        # persisted layout.
        cache.regions = RegionManager(
            config.num_regions, config.eviction_policy,
            max(1, min(config.reclaim_window, config.num_regions // 8)),
        )
        cache.regions._free = [
            rid for rid in state["free"] if rid != state["open_region_id"]
        ]
        for entry in state["sealed"]:
            meta = RegionMeta(entry["region_id"], keys=set(entry["keys"]))
            cache.regions.seal(meta)
        cache._buffer = RegionBuffer(
            state["open_region_id"], config.region_size, clock.now
        )
        cache._open_keys = set()
        for key, (region_id, offset, length) in state["index"].items():
            cache.index.put(key, EntryLocation(region_id, offset, length))
        cache._expiry = dict(state["expiry"])
        return cache

    # --- internals -----------------------------------------------------------------------

    def _open_fresh_region(self) -> RegionBuffer:
        # The new buffer's fill window opens *before* the eviction work so
        # that index-teardown stalls show up in region fill times — the
        # Figure 3(a) jump "caused by eviction operations in other threads".
        opened_at = self._clock.now
        region_id, evicted = self.regions.allocate()
        self._clock.advance(
            self.config.cpu.region_alloc_ns
            + self.config.cpu.buffer_alloc_ns_per_mib
            * self.config.region_size
            // (1024 * 1024)
        )
        if evicted:
            self._evict_keys(region_id, evicted)
        return RegionBuffer(region_id, self.config.region_size, opened_at)

    def _seal_and_rotate(self) -> None:
        buffer = self._buffer
        fill_ns = self._clock.now - buffer.opened_at_ns
        self.stats.region_fill_durations_ns.append(fill_ns)
        self.store.write_region(buffer.region_id, buffer.finalize())
        self.stats.flushes += 1
        meta = RegionMeta(buffer.region_id, keys=set(self._open_keys))
        meta.fill_duration_ns = fill_ns
        self.regions.seal(meta)
        self._open_keys = set()
        self._buffer = self._open_fresh_region()

    def _evict_keys(self, region_id: int, evicted: Set[bytes]) -> None:
        """Tear down index entries of a reclaimed region (lock-convoy model)."""
        self._clock.advance(self.config.cpu.eviction_teardown_ns(len(evicted)))
        for key in evicted:
            location = self.index.get(key)
            if location is not None and location.region_id == region_id:
                self.index.remove(key)
        self.store.invalidate_region(region_id)

    def _read_entry(self, key: bytes, location: EntryLocation) -> Optional[bytes]:
        if (
            location.region_id == self._buffer.region_id
            and self.config.read_from_buffer
        ):
            blob = self._buffer.read(location.offset, location.length)
        else:
            blob = self.store.read(location.region_id, location.offset, location.length)
        entry = EntryCodec.decode_entry(blob)
        if entry.key != key:
            # Stale index entry (should not happen; counted defensively).
            self.stats.stale_index_reads += 1
            self.index.remove(key)
            return None
        if entry.is_expired(self._clock.now):
            self.stats.expired_reads += 1
            self._purge_expired(key)
            return None
        return entry.value

    def _is_expired(self, key: bytes) -> bool:
        expiry = self._expiry.get(key)
        return expiry is not None and self._clock.now >= expiry

    def _purge_expired(self, key: bytes) -> None:
        self._expiry.pop(key, None)
        self.ram.remove(key)
        location = self.index.remove(key)
        if location is not None:
            if location.region_id == self._buffer.region_id:
                self._open_keys.discard(key)
            else:
                self.regions.note_key_removed(location.region_id, key)

    def _drop_flash_copy(self, key: bytes) -> None:
        """An unadmitted overwrite supersedes any flash copy."""
        location = self.index.remove(key)
        if location is not None:
            if location.region_id == self._buffer.region_id:
                self._open_keys.discard(key)
            else:
                self.regions.note_key_removed(location.region_id, key)

    def _finish_lookup(self, start_ns: int, hit: bool) -> None:
        self.stats.lookups.record(hit)
        self.stats.get_latency.record(self._clock.now - start_ns)
        self.stats.finished_at_ns = self._clock.now

    def _finish_mutation(self, start_ns: int, recorder) -> None:
        recorder.record(self._clock.now - start_ns)
        self.stats.finished_at_ns = self._clock.now

    def __repr__(self) -> str:
        return (
            f"HybridCache({self.store.scheme_name}, regions="
            f"{self.config.num_regions}×{self.config.region_size}B, "
            f"items={len(self.index)})"
        )
