"""CacheLib-like hybrid (DRAM + flash) log-structured cache.

This package reproduces the cache architecture the paper builds on
(§2.1): a small DRAM item cache in front of a log-structured flash cache
whose space "is partitioned into regions, and each region is used to
package cache objects with different sizes ... CacheLib evicts entire
regions rather than individual cache objects".

The flash layer talks to storage through a narrow
:class:`~repro.cache.backends.RegionStore` interface with four
implementations — the paper's four schemes:

* ``BlockRegionStore`` — regions at fixed offsets on a conventional SSD
  (**Block-Cache**, the baseline).
* ``FileRegionStore`` — regions inside one large file on the F2FS-like
  filesystem over ZNS (**File-Cache**, Figure 1a).
* ``ZoneRegionStore`` — one region per zone, written directly to the ZNS
  SSD, reset on eviction, zero WA (**Zone-Cache**, Figure 1b).
* ``ZtlRegionStore`` — flexible region size through the zone translation
  middle layer (**Region-Cache**, Figure 1c).

``HybridCache`` is the public facade: ``get``/``set``/``delete`` plus a
:class:`CacheStats` block with hit ratio, throughput inputs, latency
percentiles, and per-layer write-amplification.
"""

from repro.cache.config import CacheConfig, CpuCosts
from repro.cache.item import EntryCodec, EntryLocation
from repro.cache.index import ShardedIndex
from repro.cache.region import RegionBuffer, RegionMeta
from repro.cache.eviction import EvictionPolicyKind, make_eviction_policy
from repro.cache.region_manager import RegionManager
from repro.cache.ram_cache import RamCache
from repro.cache.admission import (
    AdmissionConfig,
    AdmissionPolicy,
    AdmitAll,
    ProbabilisticAdmission,
    SizeThresholdAdmission,
    TinyLfuAdmission,
    build_admission,
)
from repro.cache.stats import CacheStats
from repro.cache.engine import HybridCache
from repro.cache.backends import (
    BlockRegionStore,
    FileRegionStore,
    RegionStore,
    ZoneRegionStore,
    ZtlRegionStore,
)

__all__ = [
    "CacheConfig",
    "CpuCosts",
    "EntryCodec",
    "EntryLocation",
    "ShardedIndex",
    "RegionBuffer",
    "RegionMeta",
    "EvictionPolicyKind",
    "make_eviction_policy",
    "RegionManager",
    "RamCache",
    "AdmissionConfig",
    "AdmissionPolicy",
    "AdmitAll",
    "ProbabilisticAdmission",
    "SizeThresholdAdmission",
    "TinyLfuAdmission",
    "build_admission",
    "CacheStats",
    "HybridCache",
    "RegionStore",
    "BlockRegionStore",
    "FileRegionStore",
    "ZoneRegionStore",
    "ZtlRegionStore",
]
