"""DRAM item cache (CacheLib's LRU memory tier).

A byte-budgeted LRU over whole key/value items.  The paper sets it small
on purpose ("the DRAM size is set to 32 MiB, the minimal DRAM size which
allows the cache to work well", §4.2) so the flash tier dominates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class RamCache:
    """Byte-budgeted LRU of key → value."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._items: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._used = 0
        self.evictions = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: bytes) -> bool:
        return key in self._items

    def get(self, key: bytes) -> Optional[bytes]:
        """LRU-promoting lookup."""
        value = self._items.get(key)
        if value is not None:
            self._items.move_to_end(key)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        """Insert/replace; silently skips items larger than the whole tier."""
        size = len(key) + len(value)
        if size > self.capacity_bytes:
            return
        old = self._items.pop(key, None)
        if old is not None:
            self._used -= len(key) + len(old)
        self._items[key] = value
        self._used += size
        while self._used > self.capacity_bytes:
            evicted_key, evicted_value = self._items.popitem(last=False)
            self._used -= len(evicted_key) + len(evicted_value)
            self.evictions += 1

    def remove(self, key: bytes) -> bool:
        value = self._items.pop(key, None)
        if value is None:
            return False
        self._used -= len(key) + len(value)
        return True

    def clear(self) -> None:
        self._items.clear()
        self._used = 0
