"""Flash admission policies.

Write-heavy cache workloads burn flash endurance; admission policies
decide which sets reach the flash log at all.  ``AdmitAll`` matches the
paper's configuration; ``ProbabilisticAdmission`` (CacheLib's "dynamic
random admission") is provided for the ablation benches, since rejecting
a fraction of sets directly reduces application-level write pressure.
"""

from __future__ import annotations

import abc

from repro.sim.rng import make_rng


class AdmissionPolicy(abc.ABC):
    """Decides whether a (key, value) is written to flash."""

    @abc.abstractmethod
    def admit(self, key: bytes, value: bytes) -> bool: ...


class AdmitAll(AdmissionPolicy):
    """Every set reaches flash (the paper's setup)."""

    def admit(self, key: bytes, value: bytes) -> bool:
        return True


class ProbabilisticAdmission(AdmissionPolicy):
    """Admit with fixed probability; deterministic given the seed."""

    def __init__(self, probability: float, seed: int = 42) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability
        self._rng = make_rng(seed, "admission")

    def admit(self, key: bytes, value: bytes) -> bool:
        return self._rng.random() < self.probability


class SizeThresholdAdmission(AdmissionPolicy):
    """Reject values larger than a threshold (protects region churn)."""

    def __init__(self, max_value_bytes: int) -> None:
        if max_value_bytes <= 0:
            raise ValueError("max_value_bytes must be positive")
        self.max_value_bytes = max_value_bytes

    def admit(self, key: bytes, value: bytes) -> bool:
        return len(value) <= self.max_value_bytes
