"""Flash admission policies.

Write-heavy cache workloads burn flash endurance; admission policies
decide which sets reach the flash log at all.  ``AdmitAll`` matches the
paper's configuration; ``ProbabilisticAdmission`` (CacheLib's "dynamic
random admission") is provided for the ablation benches, since rejecting
a fraction of sets directly reduces application-level write pressure.
``TinyLfuAdmission`` adds frequency-based admission (a seeded count-min
sketch with periodic aging, the W-TinyLFU filter idea): one-hit wonders
never reach flash, which matters for the multi-tenant serving sweep
where a scan-heavy tenant would otherwise wash a popularity-driven
tenant out of the log.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass
from typing import List

from repro.errors import CacheConfigError
from repro.sim.rng import make_rng


class AdmissionPolicy(abc.ABC):
    """Decides whether a (key, value) is written to flash."""

    @abc.abstractmethod
    def admit(self, key: bytes, value: bytes) -> bool: ...


class AdmitAll(AdmissionPolicy):
    """Every set reaches flash (the paper's setup)."""

    def admit(self, key: bytes, value: bytes) -> bool:
        return True


class ProbabilisticAdmission(AdmissionPolicy):
    """Admit with fixed probability; deterministic given the seed."""

    def __init__(self, probability: float, seed: int = 42) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability
        self._rng = make_rng(seed, "admission")

    def admit(self, key: bytes, value: bytes) -> bool:
        return self._rng.random() < self.probability


class SizeThresholdAdmission(AdmissionPolicy):
    """Reject values larger than a threshold (protects region churn)."""

    def __init__(self, max_value_bytes: int) -> None:
        if max_value_bytes <= 0:
            raise ValueError("max_value_bytes must be positive")
        self.max_value_bytes = max_value_bytes

    def admit(self, key: bytes, value: bytes) -> bool:
        return len(value) <= self.max_value_bytes


class CountMinSketch:
    """Fixed-size frequency sketch with conservative estimates.

    Hashing is CRC32 with per-row salts derived from the seed — never the
    builtin ``hash``, whose per-process salting would make admission
    decisions (and therefore golden benchmark rows) unrepeatable.
    """

    def __init__(self, width: int, depth: int, seed: int = 42) -> None:
        if width < 8:
            raise ValueError(f"width must be >= 8, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self._salts = [
            zlib.crc32(f"cms.{seed}.{row}".encode()) & 0xFFFFFFFF
            for row in range(depth)
        ]
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def _index(self, row: int, key: bytes) -> int:
        return zlib.crc32(key, self._salts[row]) % self.width

    def add(self, key: bytes) -> None:
        for row in range(self.depth):
            self._rows[row][self._index(row, key)] += 1

    def estimate(self, key: bytes) -> int:
        return min(
            self._rows[row][self._index(row, key)] for row in range(self.depth)
        )

    def halve(self) -> None:
        """Age every counter (TinyLFU's periodic reset keeps the sketch
        tracking *recent* popularity instead of all-time popularity)."""
        for row in self._rows:
            for i, value in enumerate(row):
                row[i] = value >> 1


class TinyLfuAdmission(AdmissionPolicy):
    """Frequency-based admission: only repeatedly-seen keys reach flash.

    Every set records the key in the sketch; the set is admitted once the
    key's estimated frequency (including the current access) reaches
    ``threshold``.  With the default threshold of 2 this is the classic
    "doorkeeper" behaviour — one-hit wonders are filtered, the second
    write within an aging window gets through.
    """

    def __init__(
        self,
        width: int = 2048,
        depth: int = 4,
        threshold: int = 2,
        decay_ops: int = 8192,
        seed: int = 42,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if decay_ops < 1:
            raise ValueError(f"decay_ops must be >= 1, got {decay_ops}")
        self.threshold = threshold
        self.decay_ops = decay_ops
        self.sketch = CountMinSketch(width, depth, seed)
        self._ops = 0

    def admit(self, key: bytes, value: bytes) -> bool:
        seen_before = self.sketch.estimate(key)
        self.sketch.add(key)
        self._ops += 1
        if self._ops % self.decay_ops == 0:
            self.sketch.halve()
        return seen_before + 1 >= self.threshold

    def frequency(self, key: bytes) -> int:
        """Frequency estimate without recording an access — the read-only
        probe Z-Cache's hot/cold classifier uses at region-flush time."""
        return self.sketch.estimate(key)


ADMISSION_POLICIES = ("admit-all", "probabilistic", "size-threshold", "tinylfu")


@dataclass(frozen=True)
class AdmissionConfig:
    """Declarative admission-policy choice for :class:`CacheConfig`.

    The default (``admit-all``) reproduces the paper's setup exactly;
    the other policies are selectable per cache instance, which is how
    the serving sweep gives individual shards/tenant fleets different
    admission behaviour without bespoke wiring.
    """

    policy: str = "admit-all"
    # probabilistic
    probability: float = 0.5
    # size-threshold
    max_value_bytes: int = 64 * 1024
    # tinylfu
    tinylfu_width: int = 2048
    tinylfu_depth: int = 4
    tinylfu_threshold: int = 2
    tinylfu_decay_ops: int = 8192
    seed: int = 42

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise CacheConfigError(
                f"unknown admission policy {self.policy!r}; expected one of "
                f"{ADMISSION_POLICIES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise CacheConfigError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_value_bytes <= 0:
            raise CacheConfigError("max_value_bytes must be positive")
        if self.tinylfu_threshold < 1 or self.tinylfu_decay_ops < 1:
            raise CacheConfigError(
                "tinylfu_threshold and tinylfu_decay_ops must be >= 1"
            )
        if self.tinylfu_width < 8 or self.tinylfu_depth < 1:
            raise CacheConfigError("tinylfu sketch must be at least 8 x 1")


def build_admission(config: AdmissionConfig) -> AdmissionPolicy:
    """Instantiate the policy an :class:`AdmissionConfig` describes."""
    if config.policy == "admit-all":
        return AdmitAll()
    if config.policy == "probabilistic":
        return ProbabilisticAdmission(config.probability, seed=config.seed)
    if config.policy == "size-threshold":
        return SizeThresholdAdmission(config.max_value_bytes)
    return TinyLfuAdmission(
        width=config.tinylfu_width,
        depth=config.tinylfu_depth,
        threshold=config.tinylfu_threshold,
        decay_ops=config.tinylfu_decay_ops,
        seed=config.seed,
    )
