"""Sharded hash index: key → flash location.

CacheLib shards its index to reduce lock contention; the simulation
keeps the sharding (hashing keys to shards) because the *number of
entries a region eviction must tear down per shard* is the contention
cost model used for Figure 3.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cache.item import EntryLocation


class ShardedIndex:
    """Hash index over ``num_shards`` dictionaries."""

    def __init__(self, num_shards: int = 16) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._shards: List[Dict[bytes, EntryLocation]] = [
            {} for _ in range(num_shards)
        ]

    def _shard_of(self, key: bytes) -> Dict[bytes, EntryLocation]:
        return self._shards[hash(key) % len(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: bytes) -> bool:
        return key in self._shard_of(key)

    def get(self, key: bytes) -> Optional[EntryLocation]:
        return self._shard_of(key).get(key)

    def put(self, key: bytes, location: EntryLocation) -> Optional[EntryLocation]:
        """Insert/replace; returns the previous location if any."""
        shard = self._shard_of(key)
        old = shard.get(key)
        shard[key] = location
        return old

    def remove(self, key: bytes) -> Optional[EntryLocation]:
        return self._shard_of(key).pop(key, None)

    def keys(self) -> Iterator[bytes]:
        for shard in self._shards:
            yield from shard

    def __repr__(self) -> str:
        return f"ShardedIndex(entries={len(self)}, shards={len(self._shards)})"
