"""Middle-layer garbage collection (the paper's §3.3 "Garbage Collection").

A background thread is simulated by invoking :meth:`ZoneGarbageCollector.
maybe_collect` after foreground writes: it checks "the empty zone number
and valid data size of the finished zones", and when empty zones fall
below ``min_empty_zones`` it selects a victim (preferring zones whose
valid fraction is below ``victim_valid_threshold``), migrates the valid
regions to the GC stream zone, and resets the victim.

The ``migration_hint`` hook is the co-design lever from §3.4: given a
region id it may return False to *drop* the region instead of migrating
it ("not all the valid regions are needed to be migrated"), trading a
little hit ratio for less GC work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import TranslationFullError
from repro.ztl.allocator import ZoneBook, ZoneRecord

# Returns True to migrate the region, False to drop it.
MigrationHint = Callable[[int], bool]
# Called with (region_id,) when GC drops a region so the owner can purge it.
DropCallback = Callable[[int], None]


@dataclass(frozen=True)
class GcConfig:
    """Thresholds from the paper, all configurable (§3.3).

    Below ``min_empty_zones`` empty zones, GC collects zones whose valid
    fraction is under ``victim_valid_threshold``.  If no zone qualifies,
    collection is *deferred* — rewrites keep concentrating dead regions
    into old zones, so waiting is what keeps WA low — unless the pool is
    critically low (``emergency_empty_zones``), where the least-valid
    zone is taken regardless to guarantee forward progress.
    """

    min_empty_zones: int = 2
    victim_valid_threshold: float = 0.20
    max_zones_per_run: int = 1
    emergency_empty_zones: int = 1
    # Regions migrated per background check: keeps each GC burst short so
    # foreground reads never queue behind a whole zone's migration.
    pace_regions: int = 8

    def __post_init__(self) -> None:
        if self.min_empty_zones < 1:
            raise ValueError("min_empty_zones must be >= 1")
        if not 0.0 <= self.victim_valid_threshold <= 1.0:
            raise ValueError("victim_valid_threshold must be in [0, 1]")
        if self.max_zones_per_run < 1:
            raise ValueError("max_zones_per_run must be >= 1")
        if not 0 <= self.emergency_empty_zones <= self.min_empty_zones:
            raise ValueError(
                "emergency_empty_zones must be in [0, min_empty_zones]"
            )
        if self.pace_regions < 1:
            raise ValueError("pace_regions must be >= 1")


class ZoneGarbageCollector:
    """Selects victims and migrates valid regions; owns no I/O itself.

    The actual data movement is delegated to the layer through the
    ``migrate`` and ``reset`` callables so this class stays a pure
    policy + orchestration object (easy to unit test).
    """

    def __init__(
        self,
        book: ZoneBook,
        config: GcConfig,
        migrate: Callable[[int, ZoneRecord], None],
        reset: Callable[[int], None],
        migration_hint: Optional[MigrationHint] = None,
        on_drop: Optional[DropCallback] = None,
        migrate_many: Optional[Callable[[List[int]], None]] = None,
    ) -> None:
        self._book = book
        self.config = config
        self._migrate = migrate
        self._migrate_many = migrate_many
        self._reset = reset
        self.migration_hint = migration_hint
        self.on_drop = on_drop
        self.zones_collected = 0
        self.regions_migrated = 0
        self.regions_dropped = 0
        self._victim: Optional[int] = None
        self._pending: List[int] = []

    # --- policy -------------------------------------------------------------------

    def needs_collection(self) -> bool:
        return self._book.empty_count < self.config.min_empty_zones

    def pick_victim(self) -> Optional[int]:
        """Finished zone with the least valid data, if it is worth taking.

        Only zones below the valid-data threshold qualify during normal
        background GC; when the empty pool is at the emergency level the
        least-valid zone is returned regardless so the device can always
        make forward progress.
        """
        candidates = self._book.finished_zones
        if not candidates:
            return None
        best = min(candidates, key=lambda z: self._book.record(z).valid_count)
        record = self._book.record(best)
        if record.valid_fraction <= self.config.victim_valid_threshold:
            return best
        if self._book.empty_count <= self.config.emergency_empty_zones:
            return best
        # Nothing cheap to collect and no emergency: defer — invalidations
        # keep accumulating in old zones, so patience lowers WA.
        return None

    # --- execution ------------------------------------------------------------------

    def maybe_collect(self) -> int:
        """Paced background check; returns regions processed this step.

        The collector keeps one victim "in progress" across calls and
        migrates at most ``pace_regions`` regions per call, so no single
        foreground operation queues behind a whole zone's migration.
        """
        if self._victim is None and not self.needs_collection():
            return 0
        return self._step(self.config.pace_regions)

    def collect(self, max_zones: int = 1) -> int:
        """Emergency foreground collection: finish whole victims now."""
        reclaimed = 0
        for _ in range(max_zones):
            before = self.zones_collected
            self._step(self._book.slots_per_zone + 1)
            while self._victim is not None:
                self._step(self._book.slots_per_zone + 1)
            if self.zones_collected == before:
                break
            reclaimed += 1
            if not self.needs_collection():
                break
        return reclaimed

    def _step(self, budget: int) -> int:
        if self._victim is None:
            self._victim = self.pick_victim()
            if self._victim is None:
                return 0
            record = self._book.record(self._victim)
            self._pending = list(record.bitmap.valid_slots())
        record = self._book.record(self._victim)
        processed = 0
        survivors: List[int] = []
        while self._pending and processed < budget:
            slot = self._pending.pop()
            if not record.bitmap.is_set(slot):
                continue  # invalidated since the victim was chosen
            region_id = self._region_at(self._victim, slot)
            if region_id is None:
                record.bitmap.clear(slot)
                continue
            keep = True
            if self.migration_hint is not None:
                keep = self.migration_hint(region_id)
            if keep:
                if self._migrate_many is not None:
                    # Batched path: the layer allocates targets itself so
                    # it can submit the copy loop as one pipelined batch.
                    survivors.append(region_id)
                else:
                    target = self._book.allocate_gc_slot()
                    self._migrate(region_id, target)
                self.regions_migrated += 1
            else:
                self.regions_dropped += 1
                self._drop(region_id)
            record.bitmap.clear(slot)
            processed += 1
        if survivors:
            assert self._migrate_many is not None
            self._migrate_many(survivors)
        if not self._pending:
            victim = self._victim
            self._victim = None
            self._reset(victim)
            self._book.mark_empty(victim)
            self.zones_collected += 1
        return processed

    # Wired by the layer: region lookup by location and drop handling.
    _region_lookup: Optional[Callable[[int, int], Optional[int]]] = None
    _drop_handler: Optional[Callable[[int], None]] = None

    def bind_lookup(
        self,
        region_lookup: Callable[[int, int], Optional[int]],
        drop_handler: Callable[[int], None],
    ) -> None:
        """Late-bind the layer's mapping accessors (avoids a ctor cycle)."""
        self._region_lookup = region_lookup
        self._drop_handler = drop_handler

    def _region_at(self, zone_index: int, slot: int) -> Optional[int]:
        if self._region_lookup is None:
            raise TranslationFullError("GC not bound to a translation layer")
        return self._region_lookup(zone_index, slot)

    def _drop(self, region_id: int) -> None:
        if self._drop_handler is not None:
            self._drop_handler(region_id)
        if self.on_drop is not None:
            self.on_drop(region_id)
