"""Middle-layer garbage collection (the paper's §3.3 "Garbage Collection").

A background thread is simulated by invoking :meth:`ZoneGarbageCollector.
maybe_collect` after foreground writes: it checks "the empty zone number
and valid data size of the finished zones", and when empty zones fall
below ``min_empty_zones`` it selects a victim (preferring zones whose
valid fraction is below ``victim_valid_threshold``), migrates the valid
regions to the GC stream zone, and resets the victim.

The selection/pacing/accounting loop itself lives in
:mod:`repro.reclaim`; this module supplies the zone-shaped
:class:`~repro.reclaim.ReclaimSource` and keeps the public
``ZoneGarbageCollector`` surface the layer and tests already use.

The ``migration_hint`` hook is the co-design lever from §3.4: given a
region id it may return False to *drop* the region instead of migrating
it ("not all the valid regions are needed to be migrated"), trading a
little hit ratio for less GC work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import TranslationFullError
from repro.reclaim import (
    AdaptivePacingConfig,
    GcHints,
    PacerConfig,
    ReclaimEngine,
    ReclaimPacer,
    ReclaimSource,
    UnitOutcome,
    VictimView,
    ensure_at_least,
    ensure_between,
    ensure_choice,
    ensure_fraction,
    make_victim_policy,
)
from repro.reclaim.policy import POLICY_NAMES
from repro.sim.io import NULL_TRACER, IoTracer
from repro.ztl.allocator import ZoneBook, ZoneRecord

# Returns True to migrate the region, False to drop it.
MigrationHint = Callable[[int], bool]
# Called with (region_id,) when GC drops a region so the owner can purge it.
DropCallback = Callable[[int], None]


@dataclass(frozen=True)
class GcConfig:
    """Thresholds from the paper, all configurable (§3.3).

    Below ``min_empty_zones`` empty zones, GC collects zones whose valid
    fraction is under ``victim_valid_threshold``.  If no zone qualifies,
    collection is *deferred* — rewrites keep concentrating dead regions
    into old zones, so waiting is what keeps WA low — unless the pool is
    critically low (``emergency_empty_zones``), where the least-valid
    zone is taken regardless to guarantee forward progress.

    ``policy`` picks the victim scorer from
    :data:`repro.reclaim.POLICY_NAMES`; greedy (fewest valid regions) is
    the paper's behavior and the default.
    """

    min_empty_zones: int = 2
    victim_valid_threshold: float = 0.20
    max_zones_per_run: int = 1
    emergency_empty_zones: int = 1
    # At or below this many empty zones GC steps run unbounded and the
    # pacer reports the "urgent" pressure level (-1 = disabled, the
    # historical behavior); see repro.reclaim.PacerConfig.urgent.
    urgent_empty_zones: int = -1
    # Regions migrated per background check: keeps each GC burst short so
    # foreground reads never queue behind a whole zone's migration.
    pace_regions: int = 8
    policy: str = "greedy"
    # Optional copy-bandwidth cap in bytes refilled per background check
    # (0 = unlimited); see repro.reclaim.PacerConfig.copy_tokens_per_step.
    copy_tokens_per_step: int = 0
    # Optional AIMD controller on pace/copy-tokens (None = static pacing);
    # see repro.reclaim.AdaptivePacingConfig.
    adaptive: Optional["AdaptivePacingConfig"] = None
    # Lifecycle integration: take zero-valid zones before the policy
    # order (see repro.reclaim.ReclaimEngine).  Off by default — the
    # golden rows lock the policy-ordered behavior.
    dead_first: bool = False

    def __post_init__(self) -> None:
        ensure_at_least("min_empty_zones", self.min_empty_zones, 1)
        ensure_fraction("victim_valid_threshold", self.victim_valid_threshold)
        ensure_at_least("max_zones_per_run", self.max_zones_per_run, 1)
        ensure_between(
            "emergency_empty_zones", self.emergency_empty_zones, 0, self.min_empty_zones
        )
        ensure_at_least("urgent_empty_zones", self.urgent_empty_zones, -1)
        ensure_at_least("pace_regions", self.pace_regions, 1)
        ensure_choice("policy", self.policy, POLICY_NAMES)
        ensure_at_least("copy_tokens_per_step", self.copy_tokens_per_step, 0)

    def pacer_config(self) -> PacerConfig:
        return PacerConfig(
            background=self.min_empty_zones,
            target=self.min_empty_zones,
            urgent=self.urgent_empty_zones,
            emergency=self.emergency_empty_zones,
            victim_valid_threshold=self.victim_valid_threshold,
            pace_units=self.pace_regions,
            copy_tokens_per_step=self.copy_tokens_per_step,
            adaptive=self.adaptive,
        )


class _ZoneReclaimSource(ReclaimSource):
    """Zone-shaped adapter the shared engine drives."""

    name = "ztl"

    def __init__(self, owner: "ZoneGarbageCollector", unit_bytes: int) -> None:
        self.owner = owner
        self.unit_bytes = unit_bytes
        # Batched-migration staging for the current step (cleared before
        # the migrate_many call so a raise loses them, as it always did).
        self._survivors: List[int] = []

    @property
    def book(self) -> ZoneBook:
        return self.owner._book

    def free_units(self) -> int:
        return self.book.empty_count

    def candidate_views(self) -> List[VictimView]:
        views = []
        for zone in self.book.finished_zones:
            record = self.book.record(zone)
            views.append(
                VictimView(
                    victim_id=zone,
                    valid_count=record.valid_count,
                    valid_fraction=record.valid_fraction,
                    age=self.book.tick - record.mtime,
                    group=record.group,
                )
            )
        return views

    def pending_units(self, victim_id: int) -> List[int]:
        return list(self.book.record(victim_id).bitmap.valid_slots())

    def migrate_unit(self, victim_id: int, slot: int) -> UnitOutcome:
        owner = self.owner
        record = self.book.record(victim_id)
        if not record.bitmap.is_set(slot):
            return UnitOutcome.SKIPPED  # invalidated since the victim was chosen
        region_id = owner._region_at(victim_id, slot)
        if region_id is None:
            record.bitmap.clear(slot)
            return UnitOutcome.SKIPPED
        keep = True
        if self.hints is not None:
            keep = self.hints.migration_worth(region_id)
        if keep:
            if owner._migrate_many is not None:
                # Batched path: the layer allocates targets itself so
                # it can submit the copy loop as one pipelined batch.
                self._survivors.append(region_id)
            else:
                target = self.book.allocate_gc_slot()
                owner._migrate(region_id, target)
            record.bitmap.clear(slot)
            return UnitOutcome.MIGRATED
        owner._drop(region_id)
        record.bitmap.clear(slot)
        return UnitOutcome.DROPPED

    def flush_step(self) -> None:
        if not self._survivors:
            return
        survivors = self._survivors
        self._survivors = []
        assert self.owner._migrate_many is not None
        self.owner._migrate_many(survivors)

    def release_victim(self, victim_id: int) -> None:
        self.owner._reset(victim_id)
        self.book.mark_empty(victim_id)


class ZoneGarbageCollector:
    """Selects victims and migrates valid regions; owns no I/O itself.

    The actual data movement is delegated to the layer through the
    ``migrate`` and ``reset`` callables so this class stays a pure
    policy + orchestration object (easy to unit test).  Selection,
    pacing, and counters are provided by a shared
    :class:`~repro.reclaim.ReclaimEngine`.
    """

    def __init__(
        self,
        book: ZoneBook,
        config: GcConfig,
        migrate: Callable[[int, ZoneRecord], None],
        reset: Callable[[int], None],
        migration_hint: Optional[MigrationHint] = None,
        on_drop: Optional[DropCallback] = None,
        migrate_many: Optional[Callable[[List[int]], None]] = None,
        tracer: IoTracer = NULL_TRACER,
        clock=None,
        unit_bytes: int = 0,
    ) -> None:
        self._book = book
        self.config = config
        self._migrate = migrate
        self._migrate_many = migrate_many
        self._reset = reset
        self._source = _ZoneReclaimSource(self, unit_bytes)
        self._migration_hint: Optional[MigrationHint] = None
        self._on_drop: Optional[DropCallback] = None
        self.migration_hint = migration_hint
        self.on_drop = on_drop
        self.engine = ReclaimEngine(
            self._source,
            make_victim_policy(config.policy),
            ReclaimPacer(config.pacer_config()),
            tracer=tracer,
            clock=clock,
            dead_first=config.dead_first,
        )

    # --- §3.4 hints (legacy attribute surface, GcHints-backed) ----------------------
    #
    # Builders and tests assign ``gc.migration_hint`` / ``gc.on_drop``
    # directly; the setters keep the source's first-class
    # :class:`~repro.reclaim.GcHints` in sync so drop accounting is
    # uniform across every layer on the shared engine.

    @property
    def migration_hint(self) -> Optional[MigrationHint]:
        return self._migration_hint

    @migration_hint.setter
    def migration_hint(self, hint: Optional[MigrationHint]) -> None:
        self._migration_hint = hint
        self._sync_hints()

    @property
    def on_drop(self) -> Optional[DropCallback]:
        return self._on_drop

    @on_drop.setter
    def on_drop(self, callback: Optional[DropCallback]) -> None:
        self._on_drop = callback
        self._sync_hints()

    def _sync_hints(self) -> None:
        if self._migration_hint is None:
            self._source.hints = None
            return
        on_drop = self._on_drop if self._on_drop is not None else lambda region: None
        self._source.hints = GcHints(self._migration_hint, on_drop)

    # --- counters (legacy names, engine-backed) -------------------------------------

    @property
    def zones_collected(self) -> int:
        return self.engine.stats.victims_reclaimed

    @property
    def regions_migrated(self) -> int:
        return self.engine.stats.units_migrated

    @property
    def regions_dropped(self) -> int:
        return self.engine.stats.units_dropped

    # The layer pokes these directly when zones die or state is restored.

    @property
    def _victim(self) -> Optional[int]:
        return self.engine.victim

    @_victim.setter
    def _victim(self, value: Optional[int]) -> None:
        if value is None:
            self.engine.abandon_victim()
        else:
            self.engine._victim = value

    @property
    def _pending(self) -> List[int]:
        return self.engine._pending

    @_pending.setter
    def _pending(self, value: List[int]) -> None:
        self.engine._pending = list(value)

    # --- policy -------------------------------------------------------------------

    def needs_collection(self) -> bool:
        return self.engine.needs_reclaim()

    def pick_victim(self) -> Optional[int]:
        """Finished zone the policy scores cheapest, if worth taking.

        Only zones below the valid-data threshold qualify during normal
        background GC; when the empty pool is at the emergency level the
        best-scoring zone is returned regardless so the device can
        always make forward progress.
        """
        return self.engine.pick_victim()

    # --- execution ------------------------------------------------------------------

    def maybe_collect(self) -> int:
        """Paced background check; returns regions processed this step.

        The collector keeps one victim "in progress" across calls and
        migrates at most ``pace_regions`` regions per call, so no single
        foreground operation queues behind a whole zone's migration.
        """
        return self.engine.background_step()

    def collect(self, max_zones: int = 1) -> int:
        """Emergency foreground collection: finish whole victims now."""
        return self.engine.collect(max_victims=max_zones)

    # Wired by the layer: region lookup by location and drop handling.
    _region_lookup: Optional[Callable[[int, int], Optional[int]]] = None
    _drop_handler: Optional[Callable[[int], None]] = None

    def bind_lookup(
        self,
        region_lookup: Callable[[int, int], Optional[int]],
        drop_handler: Callable[[int], None],
    ) -> None:
        """Late-bind the layer's mapping accessors (avoids a ctor cycle)."""
        self._region_lookup = region_lookup
        self._drop_handler = drop_handler

    def _region_at(self, zone_index: int, slot: int) -> Optional[int]:
        if self._region_lookup is None:
            raise TranslationFullError("GC not bound to a translation layer")
        return self._region_lookup(zone_index, slot)

    def _drop(self, region_id: int) -> None:
        if self._drop_handler is not None:
            self._drop_handler(region_id)
        if self.on_drop is not None:
            self.on_drop(region_id)
