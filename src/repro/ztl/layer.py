"""The region translation layer facade (Figure 1c).

``RegionTranslationLayer`` gives the cache a simple contract:

* ``write_region(region_id, data)`` — (re)write a fixed-size region;
  any previous copy of the same id becomes invalid.
* ``read_region(region_id, offset, length)`` — random read within a
  region ("compute the real physical address using the in-region offset
  and in-zone address").
* ``invalidate_region(region_id)`` — delete the mapping and clear the
  zone's bitmap bit, as happens "if CacheLib rewrites a region".

Internally it drives the ZNS device, keeps the region map and zone
bitmaps coherent, and runs the background GC check after each write.
Application-level write amplification — the metric of Table 1 — is
``(host + migrated region writes) / host region writes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import (
    PowerCutError,
    ReproError,
    RetryableError,
    TranslationFullError,
    ZoneDeadError,
    ZoneStateError,
)
from repro.flash.zone import ZoneState
from repro.flash.znsssd import ZnsSsd
from repro.sim.io import IoCompletion, IoTracer
from repro.ztl.allocator import ZoneBook, ZoneRecord
from repro.ztl.gc import GcConfig, MigrationHint, ZoneGarbageCollector
from repro.ztl.mapping import RegionLocation, RegionMap


@dataclass(frozen=True)
class ZtlConfig:
    """Middle-layer configuration.

    ``region_size`` must divide the device zone size; ``usable_zones``
    optionally restricts the layer to the first N zones (the paper's
    experiments carve 25 or 220 zones out of the device).
    """

    region_size: int
    host_open_zones: int = 2
    # Lifetime groups for host writes: each group gets its own pool of
    # ``host_open_zones`` open zones, so regions with different expected
    # lifetimes never share a zone (Z-Cache's hot/cold separation).
    # 1 = the historical single-stream layout.
    host_groups: int = 1
    usable_zones: int = 0  # 0 → all zones
    # Use the ZNS Zone Append command instead of positioned writes: the
    # device picks the in-zone offset, so the host never races the write
    # pointer (the interface advantage §2.2 describes; see also
    # "Zone append: a new way of writing to zoned storage" [3]).
    use_zone_append: bool = False
    gc: GcConfig = GcConfig()


@dataclass
class ZtlStats:
    """Middle-layer counters; ``app_write_amplification`` is Table 1's WAF."""

    host_region_writes: int = 0
    migrated_region_writes: int = 0
    dropped_regions: int = 0
    gc_zone_resets: int = 0
    host_reads: int = 0
    # Fault handling: zones the device declared dead, and GC I/O retries
    # absorbed by the layer (transient device errors during migration).
    dead_zones: int = 0
    gc_retries: int = 0

    @property
    def app_write_amplification(self) -> float:
        if self.host_region_writes == 0:
            return 1.0
        return (
            self.host_region_writes + self.migrated_region_writes
        ) / self.host_region_writes


class RegionTranslationLayer:
    """Region interface over a :class:`~repro.flash.ZnsSsd`."""

    def __init__(
        self,
        device: ZnsSsd,
        config: ZtlConfig,
        migration_hint: Optional[MigrationHint] = None,
        on_drop: Optional[Callable[[int], None]] = None,
    ) -> None:
        if config.region_size <= 0 or device.zone_size % config.region_size != 0:
            raise ValueError(
                f"region_size {config.region_size} must divide zone size "
                f"{device.zone_size}"
            )
        if config.region_size % device.block_size != 0:
            raise ValueError(
                f"region_size {config.region_size} must be a multiple of the "
                f"device page size {device.block_size}"
            )
        num_zones = config.usable_zones or device.num_zones
        if not 2 <= num_zones <= device.num_zones:
            raise ValueError(
                f"usable_zones {num_zones} must be in [2, {device.num_zones}]"
            )
        if config.host_groups < 1:
            raise ValueError(f"host_groups must be >= 1, got {config.host_groups}")
        # Host streams + the GC stream must fit in the device's open budget.
        if config.host_open_zones * config.host_groups + 1 > device.config.max_open_zones:
            raise ValueError(
                f"host_open_zones {config.host_open_zones} x host_groups "
                f"{config.host_groups} + 1 GC stream exceeds device "
                f"max_open_zones {device.config.max_open_zones}"
            )
        self.device = device
        # Plain attribute: shared with the underlying device, read per
        # operation by the backend above and by GC below.
        self.tracer = device.tracer
        self.config = config
        self._on_drop = on_drop
        self.region_size = config.region_size
        self.zone_size = device.zone_size
        self.slots_per_zone = device.zone_size // config.region_size
        self.num_zones = num_zones
        self.book = ZoneBook(
            num_zones,
            self.slots_per_zone,
            config.host_open_zones,
            num_groups=config.host_groups,
        )
        self.map = RegionMap()
        self.stats = ZtlStats()
        self.gc = ZoneGarbageCollector(
            self.book,
            config.gc,
            migrate=self._migrate_region,
            reset=self._reset_zone,
            migration_hint=migration_hint,
            on_drop=on_drop,
            migrate_many=self._migrate_regions,
            tracer=device.tracer,
            clock=device.pipeline.clock,
            unit_bytes=config.region_size,
        )
        self.gc.bind_lookup(self._region_at, self._drop_region)

    # --- capacity ------------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self.num_zones * self.slots_per_zone

    @property
    def live_regions(self) -> int:
        return len(self.map)

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity managed by the layer (cache size + OP headroom)."""
        return self.total_slots * self.region_size

    # --- region interface ------------------------------------------------------------

    def write_region(
        self, region_id: int, data: bytes, group: int = 0
    ) -> IoCompletion:
        """(Re)write one region; returns the device write completion.

        ``group`` selects the lifetime group whose open-zone pool the
        region lands in (only meaningful with ``host_groups > 1``).
        """
        if len(data) != self.region_size:
            raise ValueError(
                f"region write must be exactly {self.region_size}B, got {len(data)}"
            )
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("ztl", "write_region", length=len(data)):
                return self._write_region_impl(region_id, data, group)
        return self._write_region_impl(region_id, data, group)

    def _write_region_impl(
        self, region_id: int, data: bytes, group: int = 0
    ) -> IoCompletion:
        self.invalidate_region(region_id)
        last_error: Optional[ReproError] = None
        for _ in range(4):
            record = self._allocate_host_record(group)
            try:
                result = self._write_to_record(region_id, record, data)
                break
            except ZoneDeadError as error:
                # The open zone died under us: retire it and land the
                # region in another open zone.
                last_error = error
                zone = error.zone_index
                self._retire_zone(
                    zone if zone is not None else record.zone_index
                )
            except ZoneStateError as error:
                # Under finish_on_close the device may pad our open zone
                # to FULL behind our back (forced-close contention); the
                # positioned write then bounces off the FULL state.  The
                # zone's data is intact — take the book's view to FULL
                # and land the region in a fresh slot.  Anything else is
                # a real bug: re-raise.
                device_zone = self.device.zones[record.zone_index]
                if device_zone.state is not ZoneState.FULL:
                    raise
                last_error = error
                self.book.mark_finished(record.zone_index)
        else:
            assert last_error is not None
            raise last_error
        self.stats.host_region_writes += 1
        # Background thread check (paper: runs continuously; we piggyback).
        try:
            self.gc.maybe_collect()
        except PowerCutError:
            raise
        except RetryableError:
            # Transient device error on the GC stream: give up this
            # pace step, the next check resumes where it stopped.
            self.stats.gc_retries += 1
        return result

    def read_region(
        self, region_id: int, offset: int = 0, length: Optional[int] = None
    ) -> IoCompletion:
        """Read ``length`` bytes at ``offset`` within a live region."""
        location = self.map.lookup(region_id)
        if length is None:
            length = self.region_size - offset
        if offset < 0 or offset + length > self.region_size:
            raise ValueError(
                f"read (offset={offset}, length={length}) exceeds region size "
                f"{self.region_size}"
            )
        base = location.byte_offset(self.zone_size, self.region_size)
        self.stats.host_reads += 1
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("ztl", "read_region", offset=offset, length=length):
                return self.device.read(base + offset, length)
        return self.device.read(base + offset, length)

    def has_region(self, region_id: int) -> bool:
        return region_id in self.map

    def invalidate_region(self, region_id: int) -> bool:
        """Drop the mapping and clear the validity bit; True if it existed."""
        location = self.map.unbind(region_id)
        if location is None:
            return False
        self.book.record(location.zone_index).bitmap.clear(location.slot)
        return True

    # --- internals ----------------------------------------------------------------------

    def _allocate_host_record(self, group: int = 0) -> ZoneRecord:
        # Emergency foreground GC: the background thread fell behind.
        # Bounded retries: if repeated collections reclaim zones but the
        # pool never rises above the GC reserve, the layer is over-
        # committed (not enough OP for zone-granular garbage to
        # concentrate) and we fail loudly rather than livelock.
        for _ in range(4):
            try:
                return self.book.allocate_host_slot(group)
            except TranslationFullError:
                if self.gc.collect(max_zones=1) == 0:
                    raise
        raise TranslationFullError(
            "GC cannot free zones faster than the host consumes them; "
            "the layer needs more over-provisioning (see DESIGN.md)"
        )

    def _write_to_record(
        self, region_id: int, record: ZoneRecord, data: bytes, background: bool = False
    ) -> IoCompletion:
        if self.config.use_zone_append and not background:
            result = self.device.append(record.zone_index, data)
            slot = (result.offset % self.zone_size) // self.region_size
            location = RegionLocation(record.zone_index, slot)
        else:
            slot = record.next_slot
            location = RegionLocation(record.zone_index, slot)
            offset = location.byte_offset(self.zone_size, self.region_size)
            result = self.device.write(offset, data, background=background)
        record.bitmap.set(slot)
        self.map.bind(region_id, location)
        self.book.note_slot_written(record)
        return result

    def _migrate_region(self, region_id: int, target: ZoneRecord) -> None:
        """GC relocation on the background thread (§3.3): the device is
        kept busy — foreground I/O queues behind the migration — but the
        cache itself is not blocked."""
        old = self.map.lookup(region_id)
        offset = old.byte_offset(self.zone_size, self.region_size)
        data = self.device.read(offset, self.region_size, background=True).data
        assert data is not None
        self.book.record(old.zone_index).bitmap.clear(old.slot)
        self._write_to_record(region_id, target, data, background=True)
        self.stats.migrated_region_writes += 1

    def _migrate_regions(self, region_ids: List[int]) -> None:
        """Batched GC relocation: one read batch, one write batch.

        The copy loop is the GC hot path, so the reads for every
        surviving region in a pace step are submitted together (and
        likewise the rewrites) — with a multi-channel device pool the
        whole burst overlaps instead of serializing.  Mapping and slot
        bookkeeping stay strictly sequential, exactly as the one-region
        path, so allocation order (and therefore on-media layout) is
        unchanged.

        With fault injection armed the batched path is unsafe (a fault
        mid-batch would leave mappings bound to slots whose data never
        landed), so migration falls back to a per-region loop that only
        rebinds a mapping after its write succeeded.
        """
        if self.device.pipeline.faults is not None:
            self._migrate_regions_resilient(region_ids)
            return
        with self.tracer.span(
            "ztl.gc", "migrate", length=len(region_ids) * self.region_size
        ):
            olds = [self.map.lookup(region_id) for region_id in region_ids]
            extents: List[Tuple[int, int]] = [
                (old.byte_offset(self.zone_size, self.region_size), self.region_size)
                for old in olds
            ]
            reads = self.device.read_many(extents, background=True)
            items: List[Tuple[int, bytes]] = []
            for region_id, old, completion in zip(region_ids, olds, reads):
                assert completion.data is not None
                self.book.record(old.zone_index).bitmap.clear(old.slot)
                target = self.book.allocate_gc_slot()
                slot = target.next_slot
                location = RegionLocation(target.zone_index, slot)
                items.append(
                    (location.byte_offset(self.zone_size, self.region_size),
                     completion.data)
                )
                target.bitmap.set(slot)
                self.map.bind(region_id, location)
                self.book.note_slot_written(target)
                self.stats.migrated_region_writes += 1
            self.device.write_many(items, background=True)

    def _migrate_regions_resilient(self, region_ids: List[int]) -> None:
        with self.tracer.span(
            "ztl.gc", "migrate", length=len(region_ids) * self.region_size
        ):
            for region_id in region_ids:
                self._migrate_one_resilient(region_id)

    def _migrate_one_resilient(self, region_id: int) -> None:
        """Fault-tolerant single-region migration.

        Unreadable sources and unlandable rewrites *drop* the region (a
        cache can always re-fetch; stalling GC cannot be afforded); dead
        target zones are retired and the write retried elsewhere.
        """
        old = self.map.lookup(region_id)
        offset = old.byte_offset(self.zone_size, self.region_size)
        data: Optional[bytes] = None
        for _ in range(3):
            try:
                data = self.device.read(
                    offset, self.region_size, background=True
                ).data
                break
            except PowerCutError:
                raise
            except ZoneDeadError:
                break  # the source zone died: its bytes are gone
            except RetryableError:
                self.stats.gc_retries += 1
        self.book.record(old.zone_index).bitmap.clear(old.slot)
        if data is None:
            self._drop_region(region_id)
            if self._on_drop is not None:
                self._on_drop(region_id)
            return
        for _ in range(4):
            try:
                target = self.book.allocate_gc_slot()
            except TranslationFullError:
                break
            slot = target.next_slot
            location = RegionLocation(target.zone_index, slot)
            try:
                self.device.write(
                    location.byte_offset(self.zone_size, self.region_size),
                    data,
                    background=True,
                )
            except PowerCutError:
                raise
            except ZoneDeadError as error:
                zone = error.zone_index
                self._retire_zone(zone if zone is not None else target.zone_index)
                continue
            except RetryableError:
                self.stats.gc_retries += 1
                continue
            target.bitmap.set(slot)
            self.map.bind(region_id, location)
            self.book.note_slot_written(target)
            self.stats.migrated_region_writes += 1
            return
        # Nowhere to land the survivor: drop it rather than stall GC.
        self._drop_region(region_id)
        if self._on_drop is not None:
            self._on_drop(region_id)

    def _retire_zone(self, zone_index: int) -> None:
        """Take a dead zone out of service: drop its regions, tell the
        allocator, and abandon any in-progress GC on it."""
        record = self.book.record(zone_index)
        for slot in list(record.bitmap.valid_slots()):
            region_id = self._region_at(zone_index, slot)
            if region_id is not None:
                self._drop_region(region_id)
                if self._on_drop is not None:
                    self._on_drop(region_id)
        self.book.retire(zone_index)
        if self.gc._victim == zone_index:
            self.gc._victim = None
            self.gc._pending = []
        self.stats.dead_zones += 1
        self.tracer.emit_event("ztl.fault", "retire_zone", zone=zone_index)

    def _reset_zone(self, zone_index: int) -> None:
        try:
            self.device.reset_zone(zone_index)
        except ZoneDeadError:
            # The victim died before its reset: retire it instead of
            # returning it to the empty pool.
            self._retire_zone(zone_index)
            return
        self.stats.gc_zone_resets += 1

    def _region_at(self, zone_index: int, slot: int) -> Optional[int]:
        return self.map.region_at(RegionLocation(zone_index, slot))

    def _drop_region(self, region_id: int) -> None:
        self.map.unbind(region_id)
        self.stats.dropped_regions += 1

    # --- persistence (warm restart) -----------------------------------------------

    def to_state(self) -> dict:
        """Serializable snapshot of the mapping and zone bookkeeping.

        The data itself lives on the (persistent) ZNS device; this state
        is what a real middle layer would keep in a superblock so the
        region map survives restarts.
        """
        records = []
        for record in self.book.records:
            records.append(
                {
                    "zone": record.zone_index,
                    "use": record.use.value,
                    "next_slot": record.next_slot,
                    "valid_slots": list(record.bitmap.valid_slots()),
                    "group": record.group,
                }
            )
        mapping = {}
        for record in self.book.records:
            for slot in record.bitmap.valid_slots():
                region_id = self._region_at(record.zone_index, slot)
                if region_id is not None:
                    mapping[str(region_id)] = [record.zone_index, slot]
        return {
            "region_size": self.region_size,
            "num_zones": self.num_zones,
            "records": records,
            "mapping": mapping,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild mapping/bookkeeping from :meth:`to_state` output.

        The device must be the same one (or hold identical contents).
        """
        from repro.ztl.allocator import ZoneUse

        if state["region_size"] != self.region_size or state["num_zones"] != self.num_zones:
            raise ValueError("state does not match this layer's geometry")
        self.book = ZoneBook(
            self.num_zones,
            self.slots_per_zone,
            self.config.host_open_zones,
            num_groups=self.config.host_groups,
        )
        self.map = RegionMap()
        # Rebuild per-zone records and pool membership.
        self.book._empty = []
        self.book._host_open = [[] for _ in range(self.book.num_groups)]
        self.book._finished = []
        self.book._gc_open = None
        for entry in state["records"]:
            record = self.book.records[entry["zone"]]
            record.next_slot = entry["next_slot"]
            record.use = ZoneUse(entry["use"])
            # Pre-group snapshots restore into group 0 (the only pool).
            record.group = min(
                entry.get("group", 0), self.book.num_groups - 1
            )
            record.bitmap.clear_all()
            for slot in entry["valid_slots"]:
                record.bitmap.set(slot)
            if record.use is ZoneUse.EMPTY:
                self.book._empty.append(record.zone_index)
            elif record.use is ZoneUse.HOST_OPEN:
                self.book._host_open[record.group].append(record.zone_index)
            elif record.use is ZoneUse.GC_OPEN:
                self.book._gc_open = record.zone_index
            elif record.use is ZoneUse.DEAD:
                pass  # dead zones belong to no pool
            else:
                self.book._finished.append(record.zone_index)
        for region_id_str, (zone_index, slot) in state["mapping"].items():
            self.map.bind(int(region_id_str), RegionLocation(zone_index, slot))
        # Re-point the collector at the rebuilt book and clear any
        # in-progress victim from the previous life.
        self.gc._book = self.book
        self.gc._victim = None
        self.gc._pending = []
        self.gc.bind_lookup(self._region_at, self._drop_region)

    def __repr__(self) -> str:
        return (
            f"RegionTranslationLayer(zones={self.num_zones}, "
            f"slots/zone={self.slots_per_zone}, live={self.live_regions}, "
            f"waf={self.stats.app_write_amplification:.2f})"
        )
