"""Open-zone pool and per-zone slot accounting for the middle layer.

The paper's middle layer "supports concurrent writing of multiple zones
at the same time" and finishes a zone "when there is no space to write a
new region".  :class:`ZoneBook` tracks every zone's role (empty, open
for host writes, open for GC migration, finished) and hands out region
slots round-robin across the host-open zones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import TranslationFullError
from repro.ztl.bitmap import SlotBitmap


class ZoneUse(enum.Enum):
    """Role of a zone from the middle layer's perspective."""

    EMPTY = "empty"
    HOST_OPEN = "host_open"
    GC_OPEN = "gc_open"
    FINISHED = "finished"
    # The device flipped the zone READ_ONLY/OFFLINE: it left every pool
    # permanently and is never allocated or reset again.
    DEAD = "dead"


@dataclass
class ZoneRecord:
    """Middle-layer bookkeeping for one device zone."""

    zone_index: int
    slots_per_zone: int
    use: ZoneUse = ZoneUse.EMPTY
    bitmap: SlotBitmap = field(init=False)
    next_slot: int = 0
    # Book tick of the zone's most recent slot write; age = tick - mtime
    # feeds cost-benefit victim selection (repro.reclaim).
    mtime: int = 0
    # Lifetime group the zone was allocated from (0 = hottest stream).
    # Single-group books leave every record at 0.
    group: int = 0

    def __post_init__(self) -> None:
        self.bitmap = SlotBitmap(self.slots_per_zone)

    @property
    def is_full(self) -> bool:
        return self.next_slot >= self.slots_per_zone

    @property
    def valid_count(self) -> int:
        return self.bitmap.valid_count

    @property
    def valid_fraction(self) -> float:
        return self.bitmap.valid_fraction


class ZoneBook:
    """Tracks zone roles and allocates region slots across open zones."""

    def __init__(
        self,
        num_zones: int,
        slots_per_zone: int,
        host_open_target: int,
        reserved_for_gc: int = 1,
        num_groups: int = 1,
    ) -> None:
        if num_zones < 2:
            raise ValueError(f"need at least 2 zones, got {num_zones}")
        if slots_per_zone < 1:
            raise ValueError(f"slots_per_zone must be >= 1, got {slots_per_zone}")
        if host_open_target < 1:
            raise ValueError("host_open_target must be >= 1")
        if not 0 <= reserved_for_gc < num_zones:
            raise ValueError("reserved_for_gc must be in [0, num_zones)")
        if num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        self.slots_per_zone = slots_per_zone
        self.host_open_target = host_open_target
        # Host writes may not drain the empty pool below this: the GC
        # stream always has somewhere to migrate survivors.
        self.reserved_for_gc = reserved_for_gc
        # Lifetime groups: each group keeps its own host-open pool, so
        # regions with different expected lifetimes never share a zone
        # (Z-CacheLib's lifetime-grouped allocation).  Group 0 is the
        # hottest stream; the GC stream writes into the coldest group.
        self.num_groups = num_groups
        self.records: List[ZoneRecord] = [
            ZoneRecord(i, slots_per_zone) for i in range(num_zones)
        ]
        self._empty: List[int] = list(range(num_zones))
        self._host_open: List[List[int]] = [[] for _ in range(num_groups)]
        self._gc_open: Optional[int] = None
        self._finished: List[int] = []
        self._rr_cursor: List[int] = [0] * num_groups
        # Logical write clock: bumped once per slot write, never rewinds.
        self.tick = 0

    # --- pool state ---------------------------------------------------------------

    @property
    def empty_count(self) -> int:
        return len(self._empty)

    @property
    def host_open_zones(self) -> List[int]:
        return [z for pool in self._host_open for z in pool]

    def host_open_zones_in(self, group: int) -> List[int]:
        return list(self._host_open[group])

    @property
    def finished_zones(self) -> List[int]:
        return list(self._finished)

    @property
    def gc_zone(self) -> Optional[int]:
        return self._gc_open

    @property
    def dead_count(self) -> int:
        return sum(1 for r in self.records if r.use is ZoneUse.DEAD)

    def record(self, zone_index: int) -> ZoneRecord:
        return self.records[zone_index]

    # --- allocation -----------------------------------------------------------------

    def allocate_host_slot(self, group: int = 0) -> ZoneRecord:
        """Zone record to write the next host region into (round-robin
        within ``group``'s open pool).

        Raises :class:`TranslationFullError` when no open zone in the
        group has space and no empty zone can be opened — the caller
        must GC first.
        """
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} outside [0, {self.num_groups})")
        self._refill_host_open(group)
        pool = self._host_open[group]
        if not pool:
            raise TranslationFullError("no empty zones left for host writes")
        cursor = self._rr_cursor[group] % len(pool)
        record = self.records[pool[cursor]]
        self._rr_cursor[group] = (cursor + 1) % max(1, len(pool))
        return record

    def allocate_gc_slot(self) -> ZoneRecord:
        """Zone record for a GC migration write (separate stream).

        GC zones carry the coldest group label: their contents are
        migration survivors, which by construction outlived their
        original zone.
        """
        if self._gc_open is None or self.records[self._gc_open].is_full:
            if self._gc_open is not None:
                self.mark_finished(self._gc_open)
            if not self._empty:
                raise TranslationFullError("no empty zone for the GC stream")
            self._gc_open = self._empty.pop(0)
            record = self.records[self._gc_open]
            record.use = ZoneUse.GC_OPEN
            record.group = self.num_groups - 1
        return self.records[self._gc_open]

    def note_slot_written(self, record: ZoneRecord) -> None:
        """Advance the zone's slot cursor; finish the zone when full."""
        record.next_slot += 1
        self.tick += 1
        record.mtime = self.tick
        if record.is_full:
            self.mark_finished(record.zone_index)

    # --- transitions -----------------------------------------------------------------

    def mark_finished(self, zone_index: int) -> None:
        record = self.records[zone_index]
        if record.use is ZoneUse.DEAD:
            return
        if record.use == ZoneUse.HOST_OPEN:
            self._drop_host_open(zone_index)
        if record.use == ZoneUse.GC_OPEN and self._gc_open == zone_index:
            self._gc_open = None
        record.use = ZoneUse.FINISHED
        if zone_index not in self._finished:
            self._finished.append(zone_index)

    def retire(self, zone_index: int) -> None:
        """Permanently remove a dead zone from every pool.

        Called when the device reports the zone READ_ONLY/OFFLINE; the
        layer keeps running on the remaining zones (capacity shrinks).
        """
        record = self.records[zone_index]
        if record.use is ZoneUse.DEAD:
            return
        if zone_index in self._empty:
            self._empty.remove(zone_index)
        self._drop_host_open(zone_index)
        if zone_index in self._finished:
            self._finished.remove(zone_index)
        if self._gc_open == zone_index:
            self._gc_open = None
        record.use = ZoneUse.DEAD
        record.bitmap.clear_all()

    def mark_empty(self, zone_index: int) -> None:
        """Return a reset zone to the empty pool (after GC)."""
        record = self.records[zone_index]
        if record.use is ZoneUse.DEAD:
            return
        if zone_index in self._finished:
            self._finished.remove(zone_index)
        self._drop_host_open(zone_index)
        if self._gc_open == zone_index:
            self._gc_open = None
        record.use = ZoneUse.EMPTY
        record.bitmap.clear_all()
        record.next_slot = 0
        record.group = 0
        self._empty.append(zone_index)

    # --- internals ----------------------------------------------------------------------

    def _drop_host_open(self, zone_index: int) -> None:
        for pool in self._host_open:
            if zone_index in pool:
                pool.remove(zone_index)

    def _refill_host_open(self, group: int = 0) -> None:
        pool = [
            z for z in self._host_open[group] if not self.records[z].is_full
        ]
        self._host_open[group] = pool
        while (
            len(pool) < self.host_open_target
            and len(self._empty) > self.reserved_for_gc
        ):
            zone_index = self._empty.pop(0)
            record = self.records[zone_index]
            record.use = ZoneUse.HOST_OPEN
            record.group = group
            pool.append(zone_index)

    def __repr__(self) -> str:
        open_count = sum(len(pool) for pool in self._host_open)
        return (
            f"ZoneBook(empty={len(self._empty)}, open={open_count}, "
            f"finished={len(self._finished)}, gc={self._gc_open})"
        )
