"""Per-zone region-validity bitmap.

The paper: "The bitmap is a set of 0/1 bits, and it will indicate
whether the region is valid."  One bit per region slot in the zone.
"""

from __future__ import annotations

from typing import Iterator


class SlotBitmap:
    """Fixed-size validity bitmap with O(1) popcount tracking."""

    def __init__(self, num_slots: int) -> None:
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        self._bits = 0
        self._num_slots = num_slots
        self._valid_count = 0

    @property
    def num_slots(self) -> int:
        return self._num_slots

    @property
    def valid_count(self) -> int:
        return self._valid_count

    @property
    def valid_fraction(self) -> float:
        return self._valid_count / self._num_slots

    def is_set(self, slot: int) -> bool:
        self._check(slot)
        return bool(self._bits >> slot & 1)

    def set(self, slot: int) -> None:
        self._check(slot)
        if not self._bits >> slot & 1:
            self._bits |= 1 << slot
            self._valid_count += 1

    def clear(self, slot: int) -> None:
        self._check(slot)
        if self._bits >> slot & 1:
            self._bits &= ~(1 << slot)
            self._valid_count -= 1

    def clear_all(self) -> None:
        self._bits = 0
        self._valid_count = 0

    def valid_slots(self) -> Iterator[int]:
        """Iterate indices of set bits in ascending order."""
        bits = self._bits
        slot = 0
        while bits:
            if bits & 1:
                yield slot
            bits >>= 1
            slot += 1

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self._num_slots:
            raise IndexError(f"slot {slot} outside [0, {self._num_slots})")

    def __repr__(self) -> str:
        return f"SlotBitmap({self._valid_count}/{self._num_slots})"
