"""Region-id to zone-slot mapping.

The paper stores "the mapping between the region ID and the in-zone
address of ZNS SSDs ... in a mapping (e.g., an ordered map)"; reads
"look up the mapping by the region ID, and compute the real physical
address using the in-region offset and in-zone address".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import RegionNotMappedError


@dataclass(frozen=True)
class RegionLocation:
    """Physical placement of a region: which zone, which slot within it."""

    zone_index: int
    slot: int

    def byte_offset(self, zone_size: int, region_size: int) -> int:
        """Absolute device offset of the region's first byte."""
        return self.zone_index * zone_size + self.slot * region_size


class RegionMap:
    """Bidirectional region↔slot map (one entry per live region)."""

    def __init__(self) -> None:
        self._forward: Dict[int, RegionLocation] = {}
        self._reverse: Dict[RegionLocation, int] = {}

    def __len__(self) -> int:
        return len(self._forward)

    def __contains__(self, region_id: int) -> bool:
        return region_id in self._forward

    def lookup(self, region_id: int) -> RegionLocation:
        """Location of ``region_id``; raises if the region is not mapped."""
        try:
            return self._forward[region_id]
        except KeyError:
            raise RegionNotMappedError(f"region {region_id} has no mapping") from None

    def get(self, region_id: int) -> Optional[RegionLocation]:
        return self._forward.get(region_id)

    def region_at(self, location: RegionLocation) -> Optional[int]:
        """Region currently stored at ``location``, if any."""
        return self._reverse.get(location)

    def bind(self, region_id: int, location: RegionLocation) -> None:
        """Map ``region_id`` to ``location``, replacing any previous binding
        of either side (rewrite and relocation both funnel through here)."""
        old_location = self._forward.pop(region_id, None)
        if old_location is not None:
            self._reverse.pop(old_location, None)
        old_region = self._reverse.pop(location, None)
        if old_region is not None:
            self._forward.pop(old_region, None)
        self._forward[region_id] = location
        self._reverse[location] = region_id

    def unbind(self, region_id: int) -> Optional[RegionLocation]:
        """Remove ``region_id``'s mapping; returns the freed location."""
        location = self._forward.pop(region_id, None)
        if location is not None:
            self._reverse.pop(location, None)
        return location

    def __repr__(self) -> str:
        return f"RegionMap(live={len(self._forward)})"
