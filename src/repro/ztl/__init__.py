"""Zone Translation Layer — the paper's "simple middle layer" (§3.3).

Translates the cache's *region* interface (fixed-size, rewrite-in-place
identifiers) onto the ZNS SSD's *zone* interface (sequential-only,
reset-granular).  Key pieces, mirroring Figure 1(c):

* :class:`~repro.ztl.mapping.RegionMap` — region id → (zone, slot)
  mapping, one entry per live region (vs 4 KiB block maps in a
  filesystem: "less mapping overhead").
* :class:`~repro.ztl.bitmap.SlotBitmap` — per-zone validity bits ("for a
  zone with 1024 MiB and 16 MiB region, the bitmap will only cost 64
  bits").
* :class:`~repro.ztl.allocator.ZoneBook` — open-zone pool supporting
  concurrent writing of multiple zones; zones are finished when no space
  remains for another region.
* :class:`~repro.ztl.gc.ZoneGarbageCollector` — background collection
  driven by an empty-zone low watermark and a valid-data victim
  threshold, both configurable as the paper prescribes; supports
  cache-provided *hints* that drop cold regions instead of migrating
  them (the co-design direction in §3.4).
* :class:`~repro.ztl.layer.RegionTranslationLayer` — the facade the
  Region-Cache backend talks to.
"""

from repro.ztl.bitmap import SlotBitmap
from repro.ztl.mapping import RegionLocation, RegionMap
from repro.ztl.allocator import ZoneBook, ZoneUse
from repro.ztl.gc import GcConfig, ZoneGarbageCollector
from repro.ztl.layer import RegionTranslationLayer, ZtlConfig, ZtlStats

__all__ = [
    "SlotBitmap",
    "RegionLocation",
    "RegionMap",
    "ZoneBook",
    "ZoneUse",
    "GcConfig",
    "ZoneGarbageCollector",
    "RegionTranslationLayer",
    "ZtlConfig",
    "ZtlStats",
]
