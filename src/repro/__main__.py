"""``python -m repro`` entry point (see :mod:`repro.cli`)."""

import sys

from repro.cli import run

sys.exit(run())
