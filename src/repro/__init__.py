"""zns-cache: a reproduction of "Can ZNS SSDs be Better Storage Devices
for Persistent Cache?" (Yang et al., HotStorage '24).

The package builds the paper's entire stack as a deterministic
simulation — see README.md for the architecture and DESIGN.md for the
paper-to-simulator substitution map.  The most common entry points:

>>> from repro.sim import SimClock
>>> from repro.bench.schemes import SchemeScale, build_region_cache
>>> stack = build_region_cache(SimClock(), SchemeScale(),
...                            media_bytes=25 * 4 * 1024 * 1024,
...                            cache_bytes=20 * 4 * 1024 * 1024)
>>> stack.cache.set(b"key", b"value")
True
>>> stack.cache.get(b"key")
b'value'

Subpackages
-----------
``repro.sim``
    Virtual clock, RNG streams, statistics primitives.
``repro.flash``
    Simulated devices: conventional SSD (FTL + GC), ZNS SSD, nullblk,
    HDD, and I/O tracing.
``repro.f2fs``
    F2FS-like log-structured filesystem (File-Cache substrate).
``repro.ztl``
    Zone translation middle layer (Region-Cache substrate).
``repro.cache``
    CacheLib-like hybrid cache with the four scheme backends.
``repro.lsm``
    RocksDB-like LSM store with secondary-cache integration.
``repro.workloads``
    CacheBench- and db_bench-style drivers.
``repro.bench``
    One experiment function per paper table/figure, plus reporting.
``repro.cli``
    ``python -m repro`` — regenerate any paper result.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
