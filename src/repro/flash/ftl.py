"""Page-mapped Flash Translation Layer with greedy garbage collection.

This is the invisible machinery the paper blames for the block SSD's
write amplification and tail latency: the host sees a flat LBA space, the
FTL logs every page write into the current active block, and when the
free-block pool runs low it must *move valid pages* out of a victim block
before erasing it.  Those moves are the device-level WA; the erase+move
work stalls subsequent host commands, which is the device-GC tail latency
the paper measures in Figure 5(d).

The FTL is deliberately independent of timing: it reports *what work
happened* (pages programmed, pages moved, blocks erased) and
:class:`~repro.flash.BlockSsd` converts that into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import DeviceFullError
from repro.flash.nand import NandGeometry


@dataclass(frozen=True)
class FtlConfig:
    """FTL tuning knobs.

    ``op_ratio`` is the fraction of raw media reserved as over-
    provisioning (invisible to the host).  ``gc_low_watermark`` /
    ``gc_high_watermark`` bound the free-block pool: GC starts when free
    blocks drop below the low mark and runs until the high mark is
    restored.
    """

    op_ratio: float = 0.20
    gc_low_watermark: int = 4
    gc_high_watermark: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.op_ratio < 1.0:
            raise ValueError(f"op_ratio must be in [0, 1), got {self.op_ratio}")
        if self.gc_low_watermark < 1:
            raise ValueError("gc_low_watermark must be >= 1")
        if self.gc_high_watermark < self.gc_low_watermark:
            raise ValueError("gc_high_watermark must be >= gc_low_watermark")


@dataclass
class FtlWriteReport:
    """Work performed by the FTL to satisfy one host write."""

    host_pages: int = 0
    moved_pages: int = 0
    erased_blocks: int = 0
    gc_runs: int = 0

    @property
    def media_pages(self) -> int:
        """Total pages physically programmed (host + GC relocation)."""
        return self.host_pages + self.moved_pages


@dataclass
class _BlockInfo:
    """Per-erase-block bookkeeping."""

    index: int
    # lpns[i] is the logical page stored in physical page i, or None if
    # that slot is free/invalid.
    lpns: List[Optional[int]] = field(default_factory=list)
    valid_count: int = 0
    next_page: int = 0

    def is_full(self, pages_per_block: int) -> bool:
        return self.next_page >= pages_per_block


class PageMappedFtl:
    """Page-granularity log-structured FTL with a greedy GC victim policy."""

    def __init__(self, geometry: NandGeometry, config: FtlConfig) -> None:
        self.geometry = geometry
        self.config = config
        usable_pages = int(geometry.total_pages * (1.0 - config.op_ratio))
        # Keep at least gc_high_watermark + 1 blocks' worth of slack so the
        # device can always make forward progress.
        min_spare_pages = (config.gc_high_watermark + 1) * geometry.pages_per_block
        self.logical_pages = max(
            geometry.pages_per_block, min(usable_pages, geometry.total_pages - min_spare_pages)
        )
        # logical page -> (block index, page index)
        self._l2p: Dict[int, tuple] = {}
        self._blocks = [_BlockInfo(i, [None] * geometry.pages_per_block) for i in range(geometry.num_blocks)]
        self._free: List[int] = list(range(geometry.num_blocks))
        self._active: _BlockInfo = self._blocks[self._free.pop()]
        self._gc_active: Set[int] = {self._active.index}
        self.total_host_pages = 0
        self.total_moved_pages = 0
        self.total_erased_blocks = 0

    @property
    def logical_capacity_bytes(self) -> int:
        """Host-visible capacity in bytes."""
        return self.logical_pages * self.geometry.page_size

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    @property
    def write_amplification(self) -> float:
        if self.total_host_pages == 0:
            return 1.0
        return (self.total_host_pages + self.total_moved_pages) / self.total_host_pages

    def physical_of(self, lpn: int) -> Optional[tuple]:
        """Current physical (block, page) of a logical page, if mapped."""
        return self._l2p.get(lpn)

    def write_pages(self, lpns: List[int]) -> FtlWriteReport:
        """Log-write the given logical pages; runs GC if the pool is low.

        Returns the :class:`FtlWriteReport` describing all media work,
        including relocation performed by any GC this write triggered.
        """
        report = FtlWriteReport()
        for lpn in lpns:
            if not 0 <= lpn < self.logical_pages:
                raise DeviceFullError(
                    f"lpn {lpn} outside logical space of {self.logical_pages} pages"
                )
            self._maybe_gc(report)
            self._invalidate(lpn)
            self._program(lpn)
            report.host_pages += 1
        self.total_host_pages += report.host_pages
        return report

    def discard_pages(self, lpns: List[int]) -> None:
        """TRIM: drop mappings so GC does not relocate dead data."""
        for lpn in lpns:
            self._invalidate(lpn)
            self._l2p.pop(lpn, None)

    # --- internals -----------------------------------------------------------

    def _invalidate(self, lpn: int) -> None:
        loc = self._l2p.get(lpn)
        if loc is None:
            return
        block_idx, page_idx = loc
        block = self._blocks[block_idx]
        if block.lpns[page_idx] == lpn:
            block.lpns[page_idx] = None
            block.valid_count -= 1

    def _program(self, lpn: int) -> None:
        if self._active.is_full(self.geometry.pages_per_block):
            self._open_new_active()
        block = self._active
        page_idx = block.next_page
        block.lpns[page_idx] = lpn
        block.valid_count += 1
        block.next_page += 1
        self._l2p[lpn] = (block.index, page_idx)

    def _open_new_active(self) -> None:
        if not self._free:
            raise DeviceFullError("FTL has no free blocks and GC could not help")
        self._gc_active.discard(self._active.index)
        self._active = self._blocks[self._free.pop()]
        self._gc_active.add(self._active.index)

    def _maybe_gc(self, report: FtlWriteReport) -> None:
        if len(self._free) >= self.config.gc_low_watermark:
            return
        report.gc_runs += 1
        while len(self._free) < self.config.gc_high_watermark:
            victim = self._pick_victim()
            if victim is None:
                break
            self._collect(victim, report)

    def _pick_victim(self) -> Optional[_BlockInfo]:
        """Greedy: full block with the fewest valid pages."""
        best: Optional[_BlockInfo] = None
        for block in self._blocks:
            if block.index in self._gc_active:
                continue
            if not block.is_full(self.geometry.pages_per_block):
                continue
            if best is None or block.valid_count < best.valid_count:
                best = block
                if best.valid_count == 0:
                    break
        return best

    def _collect(self, victim: _BlockInfo, report: FtlWriteReport) -> None:
        """Relocate the victim's valid pages, erase it, return it to the pool."""
        for page_idx, lpn in enumerate(victim.lpns):
            if lpn is None:
                continue
            victim.lpns[page_idx] = None
            victim.valid_count -= 1
            self._program(lpn)
            report.moved_pages += 1
            self.total_moved_pages += 1
        victim.next_page = 0
        victim.valid_count = 0
        victim.lpns = [None] * self.geometry.pages_per_block
        self._free.append(victim.index)
        report.erased_blocks += 1
        self.total_erased_blocks += 1
