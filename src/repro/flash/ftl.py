"""Page-mapped Flash Translation Layer with pluggable garbage collection.

This is the invisible machinery the paper blames for the block SSD's
write amplification and tail latency: the host sees a flat LBA space, the
FTL logs every page write into the current active block, and when the
free-block pool runs low it must *move valid pages* out of a victim block
before erasing it.  Those moves are the device-level WA; the erase+move
work stalls subsequent host commands, which is the device-GC tail latency
the paper measures in Figure 5(d).

Victim selection and the drain loop come from :mod:`repro.reclaim`
(greedy by default, matching real FTL firmware); this module supplies
the block-shaped :class:`~repro.reclaim.ReclaimSource`.

The FTL is deliberately independent of timing: it reports *what work
happened* (pages programmed, pages moved, blocks erased) and
:class:`~repro.flash.BlockSsd` converts that into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ConfigError, DeviceFullError
from repro.flash.nand import NandGeometry
from repro.reclaim import (
    PacerConfig,
    ReclaimEngine,
    ReclaimPacer,
    ReclaimSource,
    UnitOutcome,
    VictimView,
    ensure_at_least,
    ensure_choice,
    make_victim_policy,
)
from repro.reclaim.policy import POLICY_NAMES


@dataclass(frozen=True)
class FtlConfig:
    """FTL tuning knobs.

    ``op_ratio`` is the fraction of raw media reserved as over-
    provisioning (invisible to the host).  ``gc_low_watermark`` /
    ``gc_high_watermark`` bound the free-block pool: GC starts when free
    blocks drop below the low mark and runs until the high mark is
    restored.  ``gc_policy`` picks the victim scorer from
    :data:`repro.reclaim.POLICY_NAMES` (greedy is what FTL firmware
    ships, and the default).
    """

    op_ratio: float = 0.20
    gc_low_watermark: int = 4
    gc_high_watermark: int = 8
    gc_policy: str = "greedy"
    # At or below this many free blocks the pacer reports the "urgent"
    # pressure level (-1 = disabled).  The FTL drains synchronously
    # either way; this watermark exists for the GC-aware routing signal.
    gc_urgent_watermark: int = -1

    def __post_init__(self) -> None:
        if not 0.0 <= self.op_ratio < 1.0:
            raise ConfigError(f"op_ratio must be in [0, 1), got {self.op_ratio}")
        ensure_at_least("gc_low_watermark", self.gc_low_watermark, 1)
        ensure_at_least(
            "gc_high_watermark", self.gc_high_watermark, self.gc_low_watermark
        )
        ensure_choice("gc_policy", self.gc_policy, POLICY_NAMES)
        ensure_at_least("gc_urgent_watermark", self.gc_urgent_watermark, -1)

    def pacer_config(self) -> PacerConfig:
        return PacerConfig(
            background=self.gc_low_watermark,
            target=self.gc_high_watermark,
            urgent=self.gc_urgent_watermark,
        )


@dataclass
class FtlWriteReport:
    """Work performed by the FTL to satisfy one host write."""

    host_pages: int = 0
    moved_pages: int = 0
    erased_blocks: int = 0
    gc_runs: int = 0

    @property
    def media_pages(self) -> int:
        """Total pages physically programmed (host + GC relocation)."""
        return self.host_pages + self.moved_pages


@dataclass
class _BlockInfo:
    """Per-erase-block bookkeeping."""

    index: int
    # lpns[i] is the logical page stored in physical page i, or None if
    # that slot is free/invalid.
    lpns: List[Optional[int]] = field(default_factory=list)
    valid_count: int = 0
    next_page: int = 0
    # FTL tick of the block's most recent program; age = tick - mtime
    # feeds the cost-benefit victim policy.
    mtime: int = 0

    def is_full(self, pages_per_block: int) -> bool:
        return self.next_page >= pages_per_block


class _FtlReclaimSource(ReclaimSource):
    """Erase-block adapter the shared engine drives."""

    name = "ftl"

    def __init__(self, ftl: "PageMappedFtl") -> None:
        self.ftl = ftl
        self.unit_bytes = ftl.geometry.page_size

    def free_units(self) -> int:
        return len(self.ftl._free)

    def candidate_views(self) -> List[VictimView]:
        ftl = self.ftl
        pages = ftl.geometry.pages_per_block
        views = []
        for block in ftl._blocks:
            if block.index in ftl._gc_active:
                continue
            if not block.is_full(pages):
                continue
            views.append(
                VictimView(
                    victim_id=block.index,
                    valid_count=block.valid_count,
                    valid_fraction=block.valid_count / pages,
                    age=ftl._tick - block.mtime,
                )
            )
        return views

    def pending_units(self, block_index: int) -> List[int]:
        # The engine pops from the end; reversed so pages relocate in
        # ascending physical order, exactly like the historical loop.
        return list(range(self.ftl.geometry.pages_per_block - 1, -1, -1))

    def migrate_unit(self, block_index: int, page_idx: int) -> UnitOutcome:
        ftl = self.ftl
        block = ftl._blocks[block_index]
        lpn = block.lpns[page_idx]
        if lpn is None:
            return UnitOutcome.SKIPPED
        hints = self.hints
        if hints is not None and ftl._hint_region_pages:
            region_id = lpn // ftl._hint_region_pages
            if region_id < ftl._hint_num_regions and not hints.migration_worth(
                region_id
            ):
                # §3.4 discard-ahead: the cache condemned this page's
                # region, so TRIM the whole region's logical range
                # instead of relocating it page by page.  The region's
                # other pages in this (or any) victim become SKIPPED
                # once their mappings clear — no media programs happen.
                start = region_id * ftl._hint_region_pages
                ftl.discard_pages(range(start, start + ftl._hint_region_pages))
                hints.on_drop(region_id)
                return UnitOutcome.DROPPED
        block.lpns[page_idx] = None
        block.valid_count -= 1
        ftl._program(lpn)
        ftl.total_moved_pages += 1
        if ftl._gc_report is not None:
            ftl._gc_report.moved_pages += 1
        return UnitOutcome.MIGRATED

    def release_victim(self, block_index: int) -> None:
        ftl = self.ftl
        block = ftl._blocks[block_index]
        block.next_page = 0
        block.valid_count = 0
        block.lpns = [None] * ftl.geometry.pages_per_block
        ftl._free.append(block.index)
        ftl.total_erased_blocks += 1
        if ftl._gc_report is not None:
            ftl._gc_report.erased_blocks += 1


class PageMappedFtl:
    """Page-granularity log-structured FTL over the shared reclaim engine."""

    def __init__(self, geometry: NandGeometry, config: FtlConfig) -> None:
        self.geometry = geometry
        self.config = config
        usable_pages = int(geometry.total_pages * (1.0 - config.op_ratio))
        # Keep at least gc_high_watermark + 1 blocks' worth of slack so the
        # device can always make forward progress.
        min_spare_pages = (config.gc_high_watermark + 1) * geometry.pages_per_block
        self.logical_pages = max(
            geometry.pages_per_block, min(usable_pages, geometry.total_pages - min_spare_pages)
        )
        # logical page -> (block index, page index)
        self._l2p: Dict[int, tuple] = {}
        self._blocks = [_BlockInfo(i, [None] * geometry.pages_per_block) for i in range(geometry.num_blocks)]
        self._free: List[int] = list(range(geometry.num_blocks))
        self._active: _BlockInfo = self._blocks[self._free.pop()]
        self._gc_active: Set[int] = {self._active.index}
        self._tick = 0
        self.total_host_pages = 0
        self.total_moved_pages = 0
        self.total_erased_blocks = 0
        # Report for the host write whose GC drain is in progress, if any.
        self._gc_report: Optional[FtlWriteReport] = None
        # §3.4 hint geometry (bind_hints): lpn // pages-per-region maps a
        # logical page to the cache region it backs.  0 = hints disabled.
        self._hint_region_pages = 0
        self._hint_num_regions = 0
        self.reclaim = ReclaimEngine(
            _FtlReclaimSource(self),
            make_victim_policy(config.gc_policy),
            ReclaimPacer(config.pacer_config()),
        )

    @property
    def logical_capacity_bytes(self) -> int:
        """Host-visible capacity in bytes."""
        return self.logical_pages * self.geometry.page_size

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    @property
    def write_amplification(self) -> float:
        if self.total_host_pages == 0:
            return 1.0
        return (self.total_host_pages + self.total_moved_pages) / self.total_host_pages

    def physical_of(self, lpn: int) -> Optional[tuple]:
        """Current physical (block, page) of a logical page, if mapped."""
        return self._l2p.get(lpn)

    def write_pages(self, lpns: List[int]) -> FtlWriteReport:
        """Log-write the given logical pages; runs GC if the pool is low.

        Returns the :class:`FtlWriteReport` describing all media work,
        including relocation performed by any GC this write triggered.
        """
        report = FtlWriteReport()
        for lpn in lpns:
            if not 0 <= lpn < self.logical_pages:
                raise DeviceFullError(
                    f"lpn {lpn} outside logical space of {self.logical_pages} pages"
                )
            self._maybe_gc(report)
            self._invalidate(lpn)
            self._program(lpn)
            report.host_pages += 1
        self.total_host_pages += report.host_pages
        return report

    def discard_pages(self, lpns: List[int]) -> None:
        """TRIM: drop mappings so GC does not relocate dead data."""
        for lpn in lpns:
            self._invalidate(lpn)
            self._l2p.pop(lpn, None)

    def bind_hints(self, hints, region_size: int, num_regions: int) -> None:
        """Wire the cache's §3.4 :class:`~repro.reclaim.GcHints`.

        ``region_size``/``num_regions`` describe the cache's region grid
        over the logical byte space (region ``i`` at byte offset
        ``i * region_size``), so GC can map a victim page back to the
        region it backs and discard-ahead condemned regions wholesale.
        """
        page_size = self.geometry.page_size
        if region_size <= 0 or region_size % page_size != 0:
            raise ConfigError(
                f"region_size {region_size} must be a positive multiple of the "
                f"page size {page_size}"
            )
        self.reclaim.source.hints = hints
        self._hint_region_pages = region_size // page_size
        self._hint_num_regions = num_regions

    # --- internals -----------------------------------------------------------

    def _invalidate(self, lpn: int) -> None:
        loc = self._l2p.get(lpn)
        if loc is None:
            return
        block_idx, page_idx = loc
        block = self._blocks[block_idx]
        if block.lpns[page_idx] == lpn:
            block.lpns[page_idx] = None
            block.valid_count -= 1

    def _program(self, lpn: int) -> None:
        if self._active.is_full(self.geometry.pages_per_block):
            self._open_new_active()
        block = self._active
        page_idx = block.next_page
        block.lpns[page_idx] = lpn
        block.valid_count += 1
        block.next_page += 1
        self._tick += 1
        block.mtime = self._tick
        self._l2p[lpn] = (block.index, page_idx)

    def _open_new_active(self) -> None:
        if not self._free:
            raise DeviceFullError("FTL has no free blocks and GC could not help")
        self._gc_active.discard(self._active.index)
        self._active = self._blocks[self._free.pop()]
        self._gc_active.add(self._active.index)

    def _maybe_gc(self, report: FtlWriteReport) -> None:
        if not self.reclaim.needs_reclaim():
            return
        report.gc_runs += 1
        self._gc_report = report
        try:
            self.reclaim.drain_to_target()
        finally:
            self._gc_report = None
