"""Conventional block-interface SSD (the paper's "regular SSD").

Combines :class:`~repro.flash.ftl.PageMappedFtl` with the shared NAND
timing model and an :class:`~repro.sim.io.IoPipeline`.  GC relocation and
erases are charged to the pipeline's resource pool *before* the host
command that triggered them is serviced, so a host write that lands
during device GC observes the multi-millisecond stall that produces the
paper's Block-Cache P99 spike (Figure 5d).  With the default serial pool
(``channels=1, queue_depth=1``) the timing is identical to the original
single-timeline model; wider pools let host commands slip past
background work on other channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.flash.device import BlockDevice, DeviceStats, check_alignment
from repro.flash.ftl import FtlConfig, PageMappedFtl
from repro.flash.nand import NandGeometry, NandTiming
from repro.sim.clock import SimClock
from repro.sim.faults import FaultInjector
from repro.sim.io import IoCompletion, IoOp, IoPipeline, IoRequest, IoTracer, PoolConfig


@dataclass(frozen=True)
class BlockSsdConfig:
    """Bundle of geometry, timing and FTL settings for a block SSD.

    ``ftl_cpu_ns_per_page`` models the controller work a page-mapped FTL
    does per host page (mapping lookup/update, wear accounting) — the
    paper credits ZNS SSDs' "simple internal operation logic" for their
    more stable performance, so the zoned device does not pay this.
    """

    geometry: NandGeometry = field(default_factory=NandGeometry)
    timing: NandTiming = field(default_factory=NandTiming)
    ftl: FtlConfig = field(default_factory=FtlConfig)
    ftl_cpu_ns_per_page: int = 4_000
    # Periodic internal housekeeping (wear levelling, read-disturb
    # scrubbing, background GC passes): for every
    # ``maintenance_interval_bytes`` of host writes the controller
    # occupies the media for ``maintenance_ns``.  This "uncontrollable
    # internal GC" is invisible at P50 but is exactly the regular-SSD
    # tail-latency source the paper highlights (§2.3, Figure 5d).  ZNS
    # SSDs have no equivalent ("simple internal operation logic").
    maintenance_interval_bytes: int = 4 * 1024 * 1024
    maintenance_ns: int = 12_000_000


class BlockSsd(BlockDevice):
    """Page-mapped conventional SSD with over-provisioning and device GC."""

    def __init__(
        self,
        clock: SimClock,
        config: BlockSsdConfig = BlockSsdConfig(),
        io: PoolConfig = PoolConfig(),
        tracer: Optional[IoTracer] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._clock = clock
        self.config = config
        self._ftl = PageMappedFtl(config.geometry, config.ftl)
        self.pipeline = IoPipeline(clock, "blockssd", io, tracer, faults=faults)
        self._stats = DeviceStats()
        self._pages: Dict[int, bytes] = {}
        self._bytes_since_maintenance = 0

    # --- BlockDevice interface -------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._ftl.logical_capacity_bytes

    @property
    def block_size(self) -> int:
        return self.config.geometry.page_size

    @property
    def stats(self) -> DeviceStats:
        return self._stats

    @property
    def ftl(self) -> PageMappedFtl:
        """The FTL, exposed for inspection in tests and benchmarks."""
        return self._ftl

    def read(self, offset: int, length: int) -> IoCompletion:
        check_alignment(offset, length, self.block_size, self.capacity_bytes)
        page_size = self.config.geometry.page_size
        first = offset // page_size
        count = length // page_size
        chunks = []
        for lpn in range(first, first + count):
            chunks.append(self._pages.get(lpn, b"\x00" * page_size))
        service = self.config.timing.read_ns(
            count, length, self.config.geometry.parallelism
        ) + self.config.ftl_cpu_ns_per_page * count
        completion = self.pipeline.submit(
            IoRequest(IoOp.READ, offset, length, layer="block"), service
        )
        self._stats.host_read_bytes += length
        self._stats.media_read_bytes += length
        self._stats.read_latency.record(completion.latency_ns)
        completion.data = b"".join(chunks)
        return completion

    def write(self, offset: int, data: bytes) -> IoCompletion:
        check_alignment(offset, len(data), self.block_size, self.capacity_bytes)
        request = IoRequest(IoOp.WRITE, offset, len(data), layer="block")
        service = self._write_service_ns(offset, len(data))
        # Gate before the FTL mutates its mapping: an injected fault
        # leaves the device untouched and the write can be retried.
        self.pipeline.fault_gate(request, service)
        self._maybe_tear(offset, data, service)
        self._store_pages(offset, data)
        completion = self.pipeline.submit(request, service)
        self._stats.write_latency.record(completion.latency_ns)
        return completion

    def write_many(self, items: List[Tuple[int, bytes]]) -> List[IoCompletion]:
        """Pipelined batch write: one submission, overlapped across channels.

        FTL bookkeeping (mapping updates, GC triggers, maintenance debt)
        still happens per extent, in order, before the batch is queued —
        the GC/maintenance reservations land on the pool first, exactly
        as in the synchronous path, so a serial pool reproduces the
        synchronous loop bit for bit.
        """
        batch: List[Tuple[IoRequest, int]] = []
        virtual_now = self._clock.now
        for offset, data in items:
            check_alignment(offset, len(data), self.block_size, self.capacity_bytes)
            request = IoRequest(IoOp.WRITE, offset, len(data), layer="block")
            service = self._write_service_ns(offset, len(data))
            self.pipeline.fault_gate(request, service)
            self._maybe_tear(offset, data, service, now=virtual_now, batch=batch)
            virtual_now += service
            self._store_pages(offset, data)
            batch.append((request, service))
        completions = self.pipeline.submit_many(batch)
        for completion in completions:
            self._stats.write_latency.record(completion.latency_ns)
        return completions

    def discard(self, offset: int, length: int) -> IoCompletion:
        """TRIM a range so the FTL stops relocating its dead pages."""
        check_alignment(offset, length, self.block_size, self.capacity_bytes)
        page_size = self.config.geometry.page_size
        first = offset // page_size
        count = length // page_size
        lpns = list(range(first, first + count))
        self._ftl.discard_pages(lpns)
        for lpn in lpns:
            self._pages.pop(lpn, None)
        return self.pipeline.submit(
            IoRequest(IoOp.DISCARD, offset, length, layer="block"),
            self.config.timing.command_overhead_ns,
        )

    # --- internals ---------------------------------------------------------------

    def _maybe_tear(
        self,
        offset: int,
        data: bytes,
        service_ns: int,
        now: Optional[int] = None,
        batch: Optional[List[Tuple[IoRequest, int]]] = None,
    ) -> None:
        """Power-cut landing inside this write: persist the page-aligned
        prefix, submit any already-validated batch, and raise."""
        faults = self.pipeline.faults
        if faults is None:
            return
        if now is None:
            now = self._clock.now
        keep = faults.torn_write_bytes(now, service_ns, len(data), self.block_size)
        if keep is None:
            return
        if keep:
            self._store_pages(offset, data[:keep])
        if batch:
            completions = self.pipeline.submit_many(batch)
            for completion in completions:
                self._stats.write_latency.record(completion.latency_ns)
        faults.trip_power()

    def _store_pages(self, offset: int, data: bytes) -> None:
        """FTL mapping update + page store + background GC/maintenance debt."""
        page_size = self.config.geometry.page_size
        first = offset // page_size
        count = len(data) // page_size
        lpns = list(range(first, first + count))
        report = self._ftl.write_pages(lpns)
        for i, lpn in enumerate(lpns):
            self._pages[lpn] = bytes(data[i * page_size : (i + 1) * page_size])
        # Background GC work the FTL had to do occupies the device first;
        # the host write then queues behind it.
        if report.moved_pages or report.erased_blocks:
            gc_service = self.config.timing.read_ns(
                report.moved_pages,
                report.moved_pages * page_size,
                self.config.geometry.parallelism,
            ) + self.config.timing.program_ns(
                report.moved_pages,
                report.moved_pages * page_size,
                self.config.geometry.parallelism,
            ) + self.config.timing.erase_ns(report.erased_blocks)
            with self.pipeline.tracer.span(
                "reclaim.ftl",
                "migrate",
                offset=offset,
                length=report.moved_pages * page_size,
            ):
                self.pipeline.submit(
                    IoRequest(
                        IoOp.GC,
                        offset,
                        report.moved_pages * page_size,
                        layer="ftl.gc",
                        background=True,
                    ),
                    gc_service,
                )
            # The host write queues behind this GC burst: charge it as
            # foreground stall so gc_stall_us_p99 covers device GC too.
            self._ftl.reclaim.stats.stall.record(gc_service)
            self._stats.media_read_bytes += report.moved_pages * page_size
            self._stats.gc_runs += report.gc_runs
        self._note_host_write(len(data))
        self._stats.host_write_bytes += len(data)
        self._stats.media_write_bytes += report.media_pages * page_size
        self._stats.erase_count += report.erased_blocks

    def _write_service_ns(self, offset: int, length: int) -> int:
        count = length // self.config.geometry.page_size
        return self.config.timing.program_ns(
            count, length, self.config.geometry.parallelism
        ) + self.config.ftl_cpu_ns_per_page * count

    def _note_host_write(self, num_bytes: int) -> None:
        """Accrue background maintenance debt proportional to write load."""
        if self.config.maintenance_interval_bytes <= 0:
            return
        self._bytes_since_maintenance += num_bytes
        while self._bytes_since_maintenance >= self.config.maintenance_interval_bytes:
            self._bytes_since_maintenance -= self.config.maintenance_interval_bytes
            self.pipeline.submit(
                IoRequest(IoOp.MAINTENANCE, layer="ftl", background=True),
                self.config.maintenance_ns,
            )

    def __repr__(self) -> str:
        return (
            f"BlockSsd(capacity={self.capacity_bytes}, "
            f"op={self.config.ftl.op_ratio:.0%}, waf={self._stats.write_amplification:.2f})"
        )
