"""Conventional block-interface SSD (the paper's "regular SSD").

Combines :class:`~repro.flash.ftl.PageMappedFtl` with the shared NAND
timing model and a serial :class:`~repro.sim.clock.ResourceTimeline`.
GC relocation and erases are charged to the timeline *before* the host
command that triggered them is serviced, so a host write that lands
during device GC observes the multi-millisecond stall that produces the
paper's Block-Cache P99 spike (Figure 5d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.flash.device import BlockDevice, DeviceStats, IoResult, check_alignment
from repro.flash.ftl import FtlConfig, PageMappedFtl
from repro.flash.nand import NandGeometry, NandTiming
from repro.sim.clock import ResourceTimeline, SimClock


@dataclass(frozen=True)
class BlockSsdConfig:
    """Bundle of geometry, timing and FTL settings for a block SSD.

    ``ftl_cpu_ns_per_page`` models the controller work a page-mapped FTL
    does per host page (mapping lookup/update, wear accounting) — the
    paper credits ZNS SSDs' "simple internal operation logic" for their
    more stable performance, so the zoned device does not pay this.
    """

    geometry: NandGeometry = field(default_factory=NandGeometry)
    timing: NandTiming = field(default_factory=NandTiming)
    ftl: FtlConfig = field(default_factory=FtlConfig)
    ftl_cpu_ns_per_page: int = 4_000
    # Periodic internal housekeeping (wear levelling, read-disturb
    # scrubbing, background GC passes): for every
    # ``maintenance_interval_bytes`` of host writes the controller
    # occupies the media for ``maintenance_ns``.  This "uncontrollable
    # internal GC" is invisible at P50 but is exactly the regular-SSD
    # tail-latency source the paper highlights (§2.3, Figure 5d).  ZNS
    # SSDs have no equivalent ("simple internal operation logic").
    maintenance_interval_bytes: int = 4 * 1024 * 1024
    maintenance_ns: int = 12_000_000


class BlockSsd(BlockDevice):
    """Page-mapped conventional SSD with over-provisioning and device GC."""

    def __init__(self, clock: SimClock, config: BlockSsdConfig = BlockSsdConfig()) -> None:
        self._clock = clock
        self.config = config
        self._ftl = PageMappedFtl(config.geometry, config.ftl)
        self._timeline = ResourceTimeline("blockssd")
        self._stats = DeviceStats()
        self._pages: Dict[int, bytes] = {}
        self._bytes_since_maintenance = 0

    # --- BlockDevice interface -------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._ftl.logical_capacity_bytes

    @property
    def block_size(self) -> int:
        return self.config.geometry.page_size

    @property
    def stats(self) -> DeviceStats:
        return self._stats

    @property
    def ftl(self) -> PageMappedFtl:
        """The FTL, exposed for inspection in tests and benchmarks."""
        return self._ftl

    def read(self, offset: int, length: int) -> IoResult:
        check_alignment(offset, length, self.block_size, self.capacity_bytes)
        page_size = self.config.geometry.page_size
        first = offset // page_size
        count = length // page_size
        chunks = []
        for lpn in range(first, first + count):
            chunks.append(self._pages.get(lpn, b"\x00" * page_size))
        service = self.config.timing.read_ns(
            count, length, self.config.geometry.parallelism
        ) + self.config.ftl_cpu_ns_per_page * count
        latency = self._complete(service)
        self._stats.host_read_bytes += length
        self._stats.media_read_bytes += length
        self._stats.read_latency.record(latency)
        return IoResult(latency_ns=latency, data=b"".join(chunks))

    def write(self, offset: int, data: bytes) -> IoResult:
        check_alignment(offset, len(data), self.block_size, self.capacity_bytes)
        page_size = self.config.geometry.page_size
        first = offset // page_size
        count = len(data) // page_size
        lpns = list(range(first, first + count))
        report = self._ftl.write_pages(lpns)
        for i, lpn in enumerate(lpns):
            self._pages[lpn] = bytes(data[i * page_size : (i + 1) * page_size])
        # Background GC work the FTL had to do occupies the device first;
        # the host write then queues behind it.
        if report.moved_pages or report.erased_blocks:
            gc_service = self.config.timing.read_ns(
                report.moved_pages,
                report.moved_pages * page_size,
                self.config.geometry.parallelism,
            ) + self.config.timing.program_ns(
                report.moved_pages,
                report.moved_pages * page_size,
                self.config.geometry.parallelism,
            ) + self.config.timing.erase_ns(report.erased_blocks)
            self._timeline.reserve_background(self._clock.now, gc_service)
            self._stats.media_read_bytes += report.moved_pages * page_size
            self._stats.gc_runs += report.gc_runs
        service = self.config.timing.program_ns(
            count, len(data), self.config.geometry.parallelism
        ) + self.config.ftl_cpu_ns_per_page * count
        self._note_host_write(len(data))
        latency = self._complete(service)
        self._stats.host_write_bytes += len(data)
        self._stats.media_write_bytes += report.media_pages * page_size
        self._stats.erase_count += report.erased_blocks
        self._stats.write_latency.record(latency)
        return IoResult(latency_ns=latency)

    def discard(self, offset: int, length: int) -> IoResult:
        """TRIM a range so the FTL stops relocating its dead pages."""
        check_alignment(offset, length, self.block_size, self.capacity_bytes)
        page_size = self.config.geometry.page_size
        first = offset // page_size
        count = length // page_size
        lpns = list(range(first, first + count))
        self._ftl.discard_pages(lpns)
        for lpn in lpns:
            self._pages.pop(lpn, None)
        return IoResult(latency_ns=self.config.timing.command_overhead_ns)

    # --- internals ---------------------------------------------------------------

    def _complete(self, service_ns: int) -> int:
        """Queue behind the device timeline and return total latency.

        I/O is synchronous: the shared clock is advanced to the completion
        time, so a command that queues behind device GC both *observes*
        and *spends* the stall.
        """
        start = self._clock.now
        done = self._timeline.acquire(start, service_ns)
        self._clock.advance_to(done)
        return done - start

    def _note_host_write(self, num_bytes: int) -> None:
        """Accrue background maintenance debt proportional to write load."""
        if self.config.maintenance_interval_bytes <= 0:
            return
        self._bytes_since_maintenance += num_bytes
        while self._bytes_since_maintenance >= self.config.maintenance_interval_bytes:
            self._bytes_since_maintenance -= self.config.maintenance_interval_bytes
            self._timeline.reserve_background(
                self._clock.now, self.config.maintenance_ns
            )

    def __repr__(self) -> str:
        return (
            f"BlockSsd(capacity={self.capacity_bytes}, "
            f"op={self.config.ftl.op_ratio:.0%}, waf={self._stats.write_amplification:.2f})"
        )
