"""Simulated storage devices.

This package provides the hardware substrate the paper's evaluation runs
on, re-implemented as deterministic simulators:

* :class:`BlockSsd` — a conventional block-interface SSD with a
  page-mapped FTL, over-provisioning, and greedy device-level garbage
  collection (the paper's WD SN540 stand-in).
* :class:`ZnsSsd` — a Zoned Namespace SSD with the full zone state
  machine, write pointers, append/reset/finish, and *no* device GC (the
  paper's WD ZN540 stand-in).
* :class:`NullBlkDevice` — a RAM-backed block device (the paper uses
  nullblk for F2FS's conventional metadata area).
* :class:`HddDevice` — a seek+rotation hard drive model used as the
  RocksDB backend in the end-to-end experiments.

All devices share one :class:`~repro.sim.SimClock` and account host vs
media writes so write amplification can be measured exactly.
"""

from repro.sim.io import IoCompletion, IoTracer, PoolConfig
from repro.flash.nand import NandGeometry, NandTiming
from repro.flash.device import BlockDevice, DeviceStats
from repro.flash.blockssd import BlockSsd, BlockSsdConfig
from repro.flash.ftl import PageMappedFtl, FtlConfig
from repro.flash.zone import Zone, ZoneState
from repro.flash.znsssd import ZnsSsd, ZnsConfig
from repro.flash.nullblk import NullBlkDevice
from repro.flash.hdd import HddDevice, HddConfig
from repro.flash.trace import IoEvent, IoTrace, TracingBlockDevice

__all__ = [
    "NandGeometry",
    "NandTiming",
    "BlockDevice",
    "DeviceStats",
    "IoCompletion",
    "IoTracer",
    "PoolConfig",
    "BlockSsd",
    "BlockSsdConfig",
    "PageMappedFtl",
    "FtlConfig",
    "Zone",
    "ZoneState",
    "ZnsSsd",
    "ZnsConfig",
    "NullBlkDevice",
    "HddDevice",
    "HddConfig",
    "IoEvent",
    "IoTrace",
    "TracingBlockDevice",
]
