"""Mechanical hard-drive model (the paper's Seagate ST6000NM0115).

The end-to-end RocksDB experiment (§4.2) keeps the database on an HDD so
that secondary-cache hit ratio dominates throughput — an HDD miss costs
milliseconds while a flash-cache hit costs microseconds.  The model
captures exactly what matters for that experiment: seek distance,
rotational latency, sequential-access detection, and transfer rate.

The actuator is modelled as the device's :class:`~repro.sim.io.ResourcePool`
— a single mechanical arm, so the pool stays serial regardless of the
configured channel count (an HDD cannot overlap seeks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.flash.device import BlockDevice, DeviceStats, check_alignment
from repro.sim.clock import SimClock
from repro.sim.faults import FaultInjector
from repro.sim.io import IoCompletion, IoOp, IoPipeline, IoRequest, IoTracer, PoolConfig
from repro.sim.rng import make_rng
from repro.units import GIB, KIB, msec


@dataclass(frozen=True)
class HddConfig:
    """7200 RPM enterprise-drive parameters."""

    capacity_bytes: int = 4 * GIB
    block_size: int = 4 * KIB
    avg_seek_ns: int = msec(4.2)
    full_stroke_seek_ns: int = msec(9.0)
    rotation_ns: int = msec(8.33)  # 7200 RPM
    transfer_bytes_per_ns: float = 0.2  # ~200 MB/s sustained
    sequential_window: int = 256 * KIB

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.capacity_bytes % self.block_size:
            raise ValueError("capacity must be a positive multiple of block_size")


class HddDevice(BlockDevice):
    """Seek + rotation + transfer latency model over a RAM data store."""

    def __init__(
        self,
        clock: SimClock,
        config: HddConfig = HddConfig(),
        seed: int = 7,
        tracer: Optional[IoTracer] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._clock = clock
        self.config = config
        self._stats = DeviceStats()
        self._blocks: Dict[int, bytes] = {}
        # One actuator: always a serial pool, whatever the scheme's
        # io PoolConfig says about its flash devices.
        self.pipeline = IoPipeline(clock, "hdd", PoolConfig(), tracer, faults=faults)
        self._head_pos = 0
        self._rng = make_rng(seed, "hdd.rotation")

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    @property
    def block_size(self) -> int:
        return self.config.block_size

    @property
    def stats(self) -> DeviceStats:
        return self._stats

    def read(self, offset: int, length: int) -> IoCompletion:
        check_alignment(offset, length, self.block_size, self.capacity_bytes)
        first = offset // self.block_size
        count = length // self.block_size
        chunks = [
            self._blocks.get(i, b"\x00" * self.block_size)
            for i in range(first, first + count)
        ]
        completion = self.pipeline.submit(
            IoRequest(IoOp.READ, offset, length, layer="hdd"),
            self._service_ns(offset, length),
        )
        self._stats.host_read_bytes += length
        self._stats.media_read_bytes += length
        self._stats.read_latency.record(completion.latency_ns)
        completion.data = b"".join(chunks)
        return completion

    def write(self, offset: int, data: bytes) -> IoCompletion:
        check_alignment(offset, len(data), self.block_size, self.capacity_bytes)
        first = offset // self.block_size
        for i in range(len(data) // self.block_size):
            self._blocks[first + i] = bytes(
                data[i * self.block_size : (i + 1) * self.block_size]
            )
        completion = self.pipeline.submit(
            IoRequest(IoOp.WRITE, offset, len(data), layer="hdd"),
            self._service_ns(offset, len(data)),
        )
        self._stats.host_write_bytes += len(data)
        self._stats.media_write_bytes += len(data)
        self._stats.write_latency.record(completion.latency_ns)
        return completion

    # --- internals ---------------------------------------------------------------

    def _service_ns(self, offset: int, length: int) -> int:
        """Mechanical positioning plus transfer, serialized on the actuator."""
        cfg = self.config
        distance = abs(offset - self._head_pos)
        if distance <= cfg.sequential_window:
            positioning = 0
        else:
            # Seek time grows with the square root of distance (classic model),
            # plus a uniformly random rotational delay.
            frac = min(1.0, distance / cfg.capacity_bytes)
            seek = cfg.avg_seek_ns + int(
                (cfg.full_stroke_seek_ns - cfg.avg_seek_ns) * (frac ** 0.5)
            )
            rotation = int(self._rng.random() * cfg.rotation_ns)
            positioning = seek + rotation
        transfer = int(length / cfg.transfer_bytes_per_ns)
        self._head_pos = offset + length
        return positioning + transfer
