"""Abstract device interfaces and common statistics.

Two interfaces exist, mirroring the two device classes in the paper:

* :class:`BlockDevice` — random-access read/write at byte offsets
  (aligned to the logical block size).  Implemented by
  :class:`~repro.flash.BlockSsd`, :class:`~repro.flash.NullBlkDevice`,
  and :class:`~repro.flash.HddDevice`.
* Zoned devices expose the richer zone command set directly on
  :class:`~repro.flash.ZnsSsd` (read/write/append/reset/finish/open/
  close); there is no pretence of a common superclass because the whole
  point of the paper is that the interfaces differ.

Every implementation routes its media traffic through a
:class:`~repro.sim.io.IoPipeline` and returns the pipeline's typed
:class:`~repro.sim.io.IoCompletion` records (which replaced the old bare
``IoResult``).  All implementations share :class:`DeviceStats` so write
amplification (``media_write_bytes / host_write_bytes``) is computed
uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.io import IoCompletion, IoPipeline, IoTracer
from repro.sim.stats import LatencyRecorder


@dataclass
class DeviceStats:
    """Uniform accounting for every simulated device."""

    host_read_bytes: int = 0
    host_write_bytes: int = 0
    media_write_bytes: int = 0
    media_read_bytes: int = 0
    erase_count: int = 0
    gc_runs: int = 0
    read_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("device.read")
    )
    write_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("device.write")
    )

    @property
    def write_amplification(self) -> float:
        """Device-level WA factor; 1.0 when the device has seen no writes."""
        if self.host_write_bytes == 0:
            return 1.0
        return self.media_write_bytes / self.host_write_bytes

    def snapshot(self) -> Dict[str, float]:
        """Summary dict used by the benchmark reports."""
        return {
            "host_read_bytes": self.host_read_bytes,
            "host_write_bytes": self.host_write_bytes,
            "media_write_bytes": self.media_write_bytes,
            "media_read_bytes": self.media_read_bytes,
            "erase_count": self.erase_count,
            "gc_runs": self.gc_runs,
            "write_amplification": self.write_amplification,
            "read_p99_ns": self.read_latency.p99(),
            "write_p99_ns": self.write_latency.p99(),
        }


class BlockDevice(abc.ABC):
    """Random-access block device: read/write anywhere, device hides GC."""

    # Every concrete device assigns its IoPipeline here in __init__.
    pipeline: IoPipeline

    @property
    @abc.abstractmethod
    def capacity_bytes(self) -> int:
        """Usable (exported) capacity in bytes."""

    @property
    @abc.abstractmethod
    def block_size(self) -> int:
        """Required I/O alignment in bytes."""

    @property
    @abc.abstractmethod
    def stats(self) -> DeviceStats:
        """Cumulative device statistics."""

    @abc.abstractmethod
    def read(self, offset: int, length: int) -> IoCompletion:
        """Read ``length`` bytes at ``offset``.  Unwritten space reads as zeros."""

    @abc.abstractmethod
    def write(self, offset: int, data: bytes) -> IoCompletion:
        """Write ``data`` at ``offset`` (must be block-aligned)."""

    def write_many(self, items: List[Tuple[int, bytes]]) -> List[IoCompletion]:
        """Write several extents as one submission batch.

        The default is a synchronous loop; devices whose pipeline can
        overlap commands (see :meth:`~repro.sim.io.IoPipeline.submit_many`)
        override this to pipeline the batch across channels.
        """
        return [self.write(offset, data) for offset, data in items]

    @property
    def tracer(self) -> IoTracer:
        """The tracer shared by this device's pipeline."""
        return self.pipeline.tracer


def check_alignment(offset: int, length: int, block_size: int, capacity: int) -> None:
    """Validate a block-device I/O; raises the library's typed errors."""
    from repro.errors import AlignmentError, OutOfRangeError

    if offset % block_size != 0 or length % block_size != 0:
        raise AlignmentError(
            f"I/O (offset={offset}, length={length}) not aligned to {block_size}B"
        )
    if length <= 0:
        raise AlignmentError(f"I/O length must be positive, got {length}")
    if offset < 0 or offset + length > capacity:
        raise OutOfRangeError(
            f"I/O (offset={offset}, length={length}) exceeds capacity {capacity}"
        )
