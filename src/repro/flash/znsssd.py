"""Zoned Namespace SSD simulator.

The ZNS device shares the NAND geometry/timing of the block SSD but
replaces the FTL with the zone interface: sequential writes at each
zone's write pointer, zone append, reset, finish, and explicit
open/close with max-open / max-active limits.  Because the host performs
all cleaning, the device never relocates data — ``media_write_bytes``
always equals ``host_write_bytes`` and device WA is exactly 1.0, the
property the paper's Zone-Cache exploits (§3.2).

All media traffic flows through an :class:`~repro.sim.io.IoPipeline`;
``read_many``/``write_many`` expose batched submission so the ZTL's GC
copy loop and region flushes pipeline across pool channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AlignmentError, OutOfRangeError, ZoneResourceError
from repro.flash.device import DeviceStats
from repro.flash.nand import NandGeometry, NandTiming
from repro.flash.zone import Zone
from repro.sim.clock import SimClock
from repro.sim.io import IoCompletion, IoOp, IoPipeline, IoRequest, IoTracer, PoolConfig


@dataclass(frozen=True)
class ZnsConfig:
    """ZNS device shape.

    ``zone_size`` must be a multiple of the NAND block size; the WD ZN540
    in the paper has 904 zones of 1077 MiB — scaled geometries preserve
    the zone:region:cache ratios instead of the absolute sizes.
    """

    geometry: NandGeometry = field(default_factory=NandGeometry)
    timing: NandTiming = field(default_factory=NandTiming)
    zone_size: int = 0  # 0 → derive: 16 NAND blocks per zone
    max_open_zones: int = 14
    max_active_zones: int = 14

    def resolved_zone_size(self) -> int:
        if self.zone_size:
            return self.zone_size
        return 16 * self.geometry.block_size


class ZnsSsd:
    """ZNS SSD exposing the zone command set over simulated NAND."""

    def __init__(
        self,
        clock: SimClock,
        config: ZnsConfig = ZnsConfig(),
        io: PoolConfig = PoolConfig(),
        tracer: Optional[IoTracer] = None,
    ) -> None:
        self._clock = clock
        self.config = config
        zone_size = config.resolved_zone_size()
        if zone_size % config.geometry.block_size != 0:
            raise ValueError(
                f"zone_size {zone_size} is not a multiple of the NAND block "
                f"size {config.geometry.block_size}"
            )
        if config.max_open_zones < 1 or config.max_active_zones < config.max_open_zones:
            raise ValueError("need max_active_zones >= max_open_zones >= 1")
        self.zone_size = zone_size
        self.num_zones = config.geometry.total_bytes // zone_size
        if self.num_zones < 1:
            raise ValueError("geometry too small for even one zone")
        self.zones: List[Zone] = [
            Zone(index=i, start=i * zone_size, size=zone_size)
            for i in range(self.num_zones)
        ]
        self.pipeline = IoPipeline(clock, "znsssd", io, tracer)
        self._stats = DeviceStats()
        self._pages: Dict[int, bytes] = {}

    # --- capacity / bookkeeping ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Full media capacity: ZNS exports everything (no OP), per §2.2."""
        return self.num_zones * self.zone_size

    @property
    def block_size(self) -> int:
        """Write granularity (one NAND page)."""
        return self.config.geometry.page_size

    @property
    def stats(self) -> DeviceStats:
        return self._stats

    @property
    def tracer(self) -> IoTracer:
        """The tracer shared by this device's pipeline."""
        return self.pipeline.tracer

    @property
    def open_zone_count(self) -> int:
        return sum(1 for z in self.zones if z.is_open)

    @property
    def active_zone_count(self) -> int:
        return sum(1 for z in self.zones if z.is_active)

    def zone_of(self, offset: int) -> Zone:
        """Zone containing byte ``offset``."""
        if not 0 <= offset < self.capacity_bytes:
            raise OutOfRangeError(f"offset {offset} outside device of {self.capacity_bytes}B")
        return self.zones[offset // self.zone_size]

    def report_zones(self) -> List[Zone]:
        """The zone list (live objects), like a ZNS Zone Management Receive."""
        return self.zones

    # --- I/O -----------------------------------------------------------------------

    def read(self, offset: int, length: int, background: bool = False) -> IoCompletion:
        """Random read; unwritten space reads back as zeros.

        ``background=True`` models an internal housekeeping thread (e.g.
        the middle layer's GC): the transfer occupies the device pool
        — later foreground commands queue behind it — but the caller is
        not blocked and the shared clock does not advance.
        """
        data = self._load(offset, length)
        completion = self.pipeline.submit(
            IoRequest(IoOp.READ, offset, length, layer="zns", background=background),
            self._read_service_ns(length),
        )
        if not background:
            self._stats.read_latency.record(completion.latency_ns)
        self._stats.host_read_bytes += length
        self._stats.media_read_bytes += length
        completion.data = data
        return completion

    def read_many(
        self, extents: List[Tuple[int, int]], background: bool = False
    ) -> List[IoCompletion]:
        """Batched reads: one submission, overlapped across pool channels."""
        batch: List[Tuple[IoRequest, int]] = []
        payloads: List[bytes] = []
        for offset, length in extents:
            payloads.append(self._load(offset, length))
            batch.append(
                (
                    IoRequest(
                        IoOp.READ, offset, length, layer="zns", background=background
                    ),
                    self._read_service_ns(length),
                )
            )
        completions = self.pipeline.submit_many(batch)
        for completion, (offset, length), data in zip(completions, extents, payloads):
            if not background:
                self._stats.read_latency.record(completion.latency_ns)
            self._stats.host_read_bytes += length
            self._stats.media_read_bytes += length
            completion.data = data
        return completions

    def write(self, offset: int, data: bytes, background: bool = False) -> IoCompletion:
        """Sequential write: must land exactly on the zone's write pointer.

        ``background=True`` behaves as for :meth:`read`: the program time
        is reserved on the device pool without blocking the caller.
        """
        self._prepare_write(offset, data)
        completion = self.pipeline.submit(
            IoRequest(
                IoOp.WRITE,
                offset,
                len(data),
                zone=offset // self.zone_size,
                layer="zns",
                background=background,
            ),
            self._write_service_ns(len(data)),
        )
        self._account_write(len(data), completion, background)
        return completion

    def write_many(
        self, items: List[Tuple[int, bytes]], background: bool = False
    ) -> List[IoCompletion]:
        """Batched sequential writes: one submission across pool channels.

        Write-pointer checks and data stores happen per extent, in order,
        before the batch is queued — an invalid extent raises before any
        media time is charged for it.
        """
        batch: List[Tuple[IoRequest, int]] = []
        for offset, data in items:
            self._prepare_write(offset, data)
            batch.append(
                (
                    IoRequest(
                        IoOp.WRITE,
                        offset,
                        len(data),
                        zone=offset // self.zone_size,
                        layer="zns",
                        background=background,
                    ),
                    self._write_service_ns(len(data)),
                )
            )
        completions = self.pipeline.submit_many(batch)
        for completion, (offset, data) in zip(completions, items):
            self._account_write(len(data), completion, background)
        return completions

    def append(self, zone_index: int, data: bytes) -> "AppendResult":
        """Zone Append: device picks the offset (the current write pointer)."""
        self._check_zone_index(zone_index)
        self._check_aligned(0, len(data))
        zone = self.zones[zone_index]
        offset = zone.write_pointer
        zone.check_writable(offset, len(data))
        self._ensure_open_budget(zone)
        self._store(offset, data)
        zone.advance(len(data))
        completion = self.pipeline.submit(
            IoRequest(IoOp.APPEND, offset, len(data), zone=zone_index, layer="zns"),
            self._write_service_ns(len(data)),
        )
        self._account_write(len(data), completion, background=False)
        return AppendResult(
            latency_ns=completion.latency_ns,
            request=completion.request,
            submitted_ns=completion.submitted_ns,
            started_ns=completion.started_ns,
            completed_ns=completion.completed_ns,
            wait_ns=completion.wait_ns,
            service_ns=completion.service_ns,
            channel=completion.channel,
            offset=offset,
        )

    def reset_zone(self, zone_index: int) -> IoCompletion:
        """Reset: discard zone contents, write pointer back to start."""
        self._check_zone_index(zone_index)
        zone = self.zones[zone_index]
        had_data = zone.written_bytes > 0
        zone.reset()
        page_size = self.block_size
        first = zone.start // page_size
        for ppn in range(first, first + self.zone_size // page_size):
            self._pages.pop(ppn, None)
        # The reset command itself is fast; the media erase proceeds in the
        # background and *later* commands queue behind it.
        completion = self.pipeline.submit(
            IoRequest(IoOp.RESET, zone.start, zone=zone_index, layer="zns"),
            self.config.timing.command_overhead_ns,
        )
        if had_data:
            blocks = self.zone_size // self.config.geometry.block_size
            self.pipeline.submit(
                IoRequest(
                    IoOp.ERASE,
                    zone.start,
                    self.zone_size,
                    zone=zone_index,
                    layer="zns",
                    background=True,
                ),
                self.config.timing.erase_ns(blocks),
            )
            self._stats.erase_count += blocks
        return completion

    def finish_zone(self, zone_index: int) -> IoCompletion:
        """Finish: write pointer jumps to the zone end; state becomes FULL."""
        self._check_zone_index(zone_index)
        self.zones[zone_index].finish()
        return self._zone_command(IoOp.FINISH, zone_index)

    def open_zone(self, zone_index: int) -> IoCompletion:
        """Explicitly open a zone (counts against max-open)."""
        self._check_zone_index(zone_index)
        zone = self.zones[zone_index]
        if not zone.is_open:
            self._ensure_open_budget(zone)
        zone.open_explicit()
        return self._zone_command(IoOp.OPEN, zone_index)

    def close_zone(self, zone_index: int) -> IoCompletion:
        """Close an open zone (frees an open slot, keeps an active slot)."""
        self._check_zone_index(zone_index)
        self.zones[zone_index].close()
        return self._zone_command(IoOp.CLOSE, zone_index)

    # --- internals -------------------------------------------------------------------

    def _zone_command(self, op: IoOp, zone_index: int) -> IoCompletion:
        return self.pipeline.submit(
            IoRequest(op, self.zones[zone_index].start, zone=zone_index, layer="zns"),
            self.config.timing.command_overhead_ns,
        )

    def _load(self, offset: int, length: int) -> bytes:
        self._check_aligned(offset, length)
        if offset + length > self.capacity_bytes:
            raise OutOfRangeError(
                f"read (offset={offset}, length={length}) exceeds capacity"
            )
        page_size = self.block_size
        first = offset // page_size
        count = length // page_size
        return b"".join(
            self._pages.get(ppn, b"\x00" * page_size)
            for ppn in range(first, first + count)
        )

    def _prepare_write(self, offset: int, data: bytes) -> None:
        self._check_aligned(offset, len(data))
        zone = self.zone_of(offset)
        zone.check_writable(offset, len(data))
        self._ensure_open_budget(zone)
        self._store(offset, data)
        zone.advance(len(data))

    def _store(self, offset: int, data: bytes) -> None:
        page_size = self.block_size
        first = offset // page_size
        for i in range(len(data) // page_size):
            self._pages[first + i] = bytes(data[i * page_size : (i + 1) * page_size])

    def _read_service_ns(self, length: int) -> int:
        count = length // self.block_size
        return self.config.timing.read_ns(
            count, length, self.config.geometry.parallelism
        )

    def _write_service_ns(self, length: int) -> int:
        count = length // self.block_size
        return self.config.timing.program_ns(
            count, length, self.config.geometry.parallelism
        )

    def _account_write(
        self, length: int, completion: IoCompletion, background: bool
    ) -> None:
        if not background:
            self._stats.write_latency.record(completion.latency_ns)
        self._stats.host_write_bytes += length
        self._stats.media_write_bytes += length  # no device GC: WA == 1.0

    def _ensure_open_budget(self, zone: Zone) -> None:
        """Enforce max-open/max-active before a zone becomes (implicitly) open."""
        if zone.is_open:
            return
        if self.open_zone_count >= self.config.max_open_zones:
            raise ZoneResourceError(
                f"opening zone {zone.index} would exceed max_open_zones="
                f"{self.config.max_open_zones}"
            )
        if not zone.is_active and self.active_zone_count >= self.config.max_active_zones:
            raise ZoneResourceError(
                f"activating zone {zone.index} would exceed max_active_zones="
                f"{self.config.max_active_zones}"
            )

    def _check_zone_index(self, zone_index: int) -> None:
        if not 0 <= zone_index < self.num_zones:
            raise OutOfRangeError(
                f"zone index {zone_index} outside [0, {self.num_zones})"
            )

    def _check_aligned(self, offset: int, length: int) -> None:
        if offset % self.block_size or length % self.block_size:
            raise AlignmentError(
                f"ZNS I/O (offset={offset}, length={length}) must be aligned to "
                f"{self.block_size}B pages"
            )
        if length <= 0:
            raise AlignmentError(f"I/O length must be positive, got {length}")

    def __repr__(self) -> str:
        return (
            f"ZnsSsd(zones={self.num_zones}, zone_size={self.zone_size}, "
            f"open={self.open_zone_count}/{self.config.max_open_zones})"
        )


@dataclass
class AppendResult(IoCompletion):
    """Result of a Zone Append: includes the device-chosen offset."""

    offset: int = -1
