"""Zoned Namespace SSD simulator.

The ZNS device shares the NAND geometry/timing of the block SSD but
replaces the FTL with the zone interface: sequential writes at each
zone's write pointer, zone append, reset, finish, and explicit
open/close with max-open / max-active limits.  Because the host performs
all cleaning, the device never relocates data — ``media_write_bytes``
always equals ``host_write_bytes`` and device WA is exactly 1.0, the
property the paper's Zone-Cache exploits (§3.2).

All media traffic flows through an :class:`~repro.sim.io.IoPipeline`;
``read_many``/``write_many`` expose batched submission so the ZTL's GC
copy loop and region flushes pipeline across pool channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    AlignmentError,
    OutOfRangeError,
    ZoneDeadError,
    ZoneResourceError,
    ZoneStateError,
)
from repro.flash.device import DeviceStats
from repro.flash.nand import NandGeometry, NandTiming
from repro.flash.zone import Zone, ZoneCostConfig, ZoneMgmtStats, ZoneState
from repro.sim.clock import SimClock
from repro.sim.faults import FaultInjector, FaultKind
from repro.sim.io import IoCompletion, IoOp, IoPipeline, IoRequest, IoTracer, PoolConfig


@dataclass(frozen=True)
class ZnsConfig:
    """ZNS device shape.

    ``zone_size`` must be a multiple of the NAND block size; the WD ZN540
    in the paper has 904 zones of 1077 MiB — scaled geometries preserve
    the zone:region:cache ratios instead of the absolute sizes.
    """

    geometry: NandGeometry = field(default_factory=NandGeometry)
    timing: NandTiming = field(default_factory=NandTiming)
    zone_size: int = 0  # 0 → derive: 16 NAND blocks per zone
    max_open_zones: int = 14
    max_active_zones: int = 14
    # Per-transition service costs; all-zero default keeps the historical
    # free-transition model (and every golden) bit-identical.
    zone_costs: ZoneCostConfig = field(default_factory=ZoneCostConfig)

    def resolved_zone_size(self) -> int:
        if self.zone_size:
            return self.zone_size
        return 16 * self.geometry.block_size


class ZnsSsd:
    """ZNS SSD exposing the zone command set over simulated NAND."""

    def __init__(
        self,
        clock: SimClock,
        config: ZnsConfig = ZnsConfig(),
        io: PoolConfig = PoolConfig(),
        tracer: Optional[IoTracer] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._clock = clock
        self.config = config
        zone_size = config.resolved_zone_size()
        if zone_size % config.geometry.block_size != 0:
            raise ValueError(
                f"zone_size {zone_size} is not a multiple of the NAND block "
                f"size {config.geometry.block_size}"
            )
        if config.max_open_zones < 1 or config.max_active_zones < config.max_open_zones:
            raise ValueError("need max_active_zones >= max_open_zones >= 1")
        self.zone_size = zone_size
        self.num_zones = config.geometry.total_bytes // zone_size
        if self.num_zones < 1:
            raise ValueError("geometry too small for even one zone")
        self.zones: List[Zone] = [
            Zone(index=i, start=i * zone_size, size=zone_size)
            for i in range(self.num_zones)
        ]
        self.pipeline = IoPipeline(clock, "znsssd", io, tracer, faults=faults)
        # Plain attribute (not a property): the cache engine and the ZTL
        # read this once per operation on the hot path.
        self.tracer = self.pipeline.tracer
        self._stats = DeviceStats()
        self.zone_mgmt = ZoneMgmtStats()
        self._zone_costs = config.zone_costs
        # LRU clock over open zones: bumped on every write/append/open so
        # the forced-close victim is the least-recently-written open zone.
        self._open_touch: Dict[int, int] = {}
        self._touch_tick = 0
        self._pages: Dict[int, bytes] = {}
        self._page_size = config.geometry.page_size
        self._capacity_bytes = self.num_zones * zone_size
        # NAND timing is a pure function of the transfer length, and the
        # hot path re-reads a handful of window sizes over and over.
        self._read_ns_cache: Dict[int, int] = {}
        self._write_ns_cache: Dict[int, int] = {}

    # --- capacity / bookkeeping ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Full media capacity: ZNS exports everything (no OP), per §2.2."""
        return self._capacity_bytes

    @property
    def block_size(self) -> int:
        """Write granularity (one NAND page)."""
        return self.config.geometry.page_size

    @property
    def stats(self) -> DeviceStats:
        return self._stats

    @property
    def open_zone_count(self) -> int:
        return sum(1 for z in self.zones if z.is_open)

    @property
    def active_zone_count(self) -> int:
        return sum(1 for z in self.zones if z.is_active)

    def zone_of(self, offset: int) -> Zone:
        """Zone containing byte ``offset``."""
        if not 0 <= offset < self.capacity_bytes:
            raise OutOfRangeError(f"offset {offset} outside device of {self.capacity_bytes}B")
        return self.zones[offset // self.zone_size]

    def report_zones(self) -> List[Zone]:
        """The zone list (live objects), like a ZNS Zone Management Receive."""
        return self.zones

    # --- I/O -----------------------------------------------------------------------

    def read(self, offset: int, length: int, background: bool = False) -> IoCompletion:
        """Random read; unwritten space reads back as zeros.

        ``background=True`` models an internal housekeeping thread (e.g.
        the middle layer's GC): the transfer occupies the device pool
        — later foreground commands queue behind it — but the caller is
        not blocked and the shared clock does not advance.
        """
        pipeline = self.pipeline
        if pipeline.faults is None and not background and not self.tracer.enabled:
            # Fast path: no fault gate, no trace records, foreground —
            # arithmetically identical to the submit() path below but
            # without building an IoRequest or walking dispatch frames.
            self._check_readable(offset, length)
            data = self._load(offset, length)
            service_ns = self._read_service_ns(length)
            clock = self._clock
            now = clock.now
            done, wait, channel = pipeline.pool.acquire(now, service_ns, offset)
            if done > clock.now:
                clock.now = done
            stats = self._stats
            recorder = stats.read_latency
            recorder._samples.append(done - now)
            recorder._sorted = None
            stats.host_read_bytes += length
            stats.media_read_bytes += length
            return IoCompletion(
                latency_ns=done - now,
                data=data,
                submitted_ns=now,
                started_ns=done - service_ns,
                completed_ns=done,
                wait_ns=wait,
                service_ns=service_ns,
                channel=channel,
            )
        self._poll_zone_faults()
        self._check_readable(offset, length)
        data = self._load(offset, length)
        completion = self.pipeline.submit(
            IoRequest(IoOp.READ, offset, length, layer="zns", background=background),
            self._read_service_ns(length),
        )
        if not background:
            self._stats.read_latency.record(completion.latency_ns)
        self._stats.host_read_bytes += length
        self._stats.media_read_bytes += length
        completion.data = data
        return completion

    def read_many(
        self, extents: List[Tuple[int, int]], background: bool = False
    ) -> List[IoCompletion]:
        """Batched reads: one submission, overlapped across pool channels."""
        self._poll_zone_faults()
        batch: List[Tuple[IoRequest, int]] = []
        payloads: List[bytes] = []
        for offset, length in extents:
            self._check_readable(offset, length)
            payloads.append(self._load(offset, length))
            batch.append(
                (
                    IoRequest(
                        IoOp.READ, offset, length, layer="zns", background=background
                    ),
                    self._read_service_ns(length),
                )
            )
        completions = self.pipeline.submit_many(batch)
        for completion, (offset, length), data in zip(completions, extents, payloads):
            if not background:
                self._stats.read_latency.record(completion.latency_ns)
            self._stats.host_read_bytes += length
            self._stats.media_read_bytes += length
            completion.data = data
        return completions

    def write(self, offset: int, data: bytes, background: bool = False) -> IoCompletion:
        """Sequential write: must land exactly on the zone's write pointer.

        ``background=True`` behaves as for :meth:`read`: the program time
        is reserved on the device pool without blocking the caller.
        """
        self._poll_zone_faults()
        request, service_ns = self._gate_write(offset, data, background)
        self._prepare_write(offset, data)
        completion = self.pipeline.submit(request, service_ns)
        self._account_write(len(data), completion, background)
        return completion

    def write_many(
        self, items: List[Tuple[int, bytes]], background: bool = False
    ) -> List[IoCompletion]:
        """Batched sequential writes: one submission across pool channels.

        Write-pointer checks and data stores happen per extent, in order,
        before the batch is queued — an invalid extent raises before any
        media time is charged for it.
        """
        self._poll_zone_faults()
        batch: List[Tuple[IoRequest, int]] = []
        stored: List[Tuple[int, bytes]] = []
        # For torn-write modelling the extents service back-to-back, so
        # extent k's media window starts after the preceding services.
        virtual_now = self._clock.now
        for offset, data in items:
            request, service_ns = self._gate_write(
                offset, data, background, virtual_now=virtual_now, batch=batch,
                stored=stored,
            )
            self._prepare_write(offset, data)
            virtual_now += service_ns
            batch.append((request, service_ns))
            stored.append((offset, data))
        completions = self.pipeline.submit_many(batch)
        for completion, (offset, data) in zip(completions, stored):
            self._account_write(len(data), completion, background)
        return completions

    def append(self, zone_index: int, data: bytes) -> "AppendResult":
        """Zone Append: device picks the offset (the current write pointer)."""
        self._poll_zone_faults()
        self._check_zone_index(zone_index)
        self._check_aligned(0, len(data))
        zone = self.zones[zone_index]
        offset = zone.write_pointer
        request = IoRequest(IoOp.APPEND, offset, len(data), zone=zone_index, layer="zns")
        service_ns = self._write_service_ns(len(data))
        self.pipeline.fault_gate(request, service_ns)
        zone.check_writable(offset, len(data))
        self._ensure_open_budget(zone)
        self._note_write_open(zone)
        self._maybe_tear(zone, offset, data, service_ns)
        self._store(offset, data)
        zone.advance(len(data))
        completion = self.pipeline.submit(request, service_ns)
        self._account_write(len(data), completion, background=False)
        return AppendResult(
            latency_ns=completion.latency_ns,
            request=completion.request,
            submitted_ns=completion.submitted_ns,
            started_ns=completion.started_ns,
            completed_ns=completion.completed_ns,
            wait_ns=completion.wait_ns,
            service_ns=completion.service_ns,
            channel=completion.channel,
            offset=offset,
        )

    def reset_zone(self, zone_index: int) -> IoCompletion:
        """Reset: discard zone contents, write pointer back to start."""
        self._poll_zone_faults()
        self._check_zone_index(zone_index)
        zone = self.zones[zone_index]
        had_data = zone.written_bytes > 0
        request = IoRequest(IoOp.RESET, zone.start, zone=zone_index, layer="zns")
        self.pipeline.fault_gate(request, self.config.timing.command_overhead_ns)
        zone.reset()
        page_size = self.block_size
        first = zone.start // page_size
        for ppn in range(first, first + self.zone_size // page_size):
            self._pages.pop(ppn, None)
        # The reset command itself is fast; the media erase proceeds in the
        # background and *later* commands queue behind it.
        completion = self.pipeline.submit(
            request,
            self.config.timing.command_overhead_ns + self._zone_costs.reset_ns,
        )
        self.zone_mgmt.resets += 1
        self.zone_mgmt.reset_ns += completion.service_ns
        if had_data:
            blocks = self.zone_size // self.config.geometry.block_size
            self.pipeline.submit(
                IoRequest(
                    IoOp.ERASE,
                    zone.start,
                    self.zone_size,
                    zone=zone_index,
                    layer="zns",
                    background=True,
                ),
                self.config.timing.erase_ns(blocks),
            )
            self._stats.erase_count += blocks
        return completion

    def finish_zone(self, zone_index: int) -> IoCompletion:
        """Finish: write pointer jumps to the zone end; state becomes FULL."""
        self._poll_zone_faults()
        self._check_zone_index(zone_index)
        self.zones[zone_index].finish()
        completion = self._zone_command(
            IoOp.FINISH, zone_index, self._zone_costs.finish_ns
        )
        self.zone_mgmt.finishes += 1
        self.zone_mgmt.finish_ns += completion.service_ns
        return completion

    def open_zone(self, zone_index: int) -> IoCompletion:
        """Explicitly open a zone (counts against max-open)."""
        self._poll_zone_faults()
        self._check_zone_index(zone_index)
        zone = self.zones[zone_index]
        newly_open = not zone.is_open
        if newly_open:
            self._ensure_open_budget(zone)
        zone.open_explicit()
        completion = self._zone_command(
            IoOp.OPEN, zone_index, self._zone_costs.open_ns if newly_open else 0
        )
        if newly_open:
            self.zone_mgmt.explicit_opens += 1
            self._touch_tick += 1
            self._open_touch[zone_index] = self._touch_tick
        self.zone_mgmt.open_ns += completion.service_ns
        return completion

    def close_zone(self, zone_index: int) -> IoCompletion:
        """Close an open zone (frees an open slot, keeps an active slot).

        Under ``ZoneCostConfig.finish_on_close``, closing a zone that
        holds data pads it to FULL instead (a FINISH command at finish
        cost): the zone frees its *active* slot too, at the price of the
        unwritten tail.  An empty zone still just reverts to EMPTY.
        """
        self._check_zone_index(zone_index)
        zone = self.zones[zone_index]
        if self._zone_costs.finish_on_close and zone.written_bytes > 0:
            if not zone.is_open:
                raise ZoneStateError(
                    f"zone {zone_index} is {zone.state.value}; only open zones close"
                )
            zone.finish()
            completion = self._zone_command(
                IoOp.FINISH, zone_index, self._zone_costs.finish_ns
            )
            self.zone_mgmt.finishes += 1
            self.zone_mgmt.finish_ns += completion.service_ns
            return completion
        zone.close()
        completion = self._zone_command(
            IoOp.CLOSE, zone_index, self._zone_costs.close_ns
        )
        self.zone_mgmt.closes += 1
        self.zone_mgmt.close_ns += completion.service_ns
        return completion

    # --- fault handling --------------------------------------------------------------

    def _poll_zone_faults(self) -> None:
        """Apply scheduled zone-state flips that have come due."""
        faults = self.pipeline.faults
        if faults is None:
            return
        for event in faults.due_zone_faults(self._clock.now):
            if not 0 <= event.zone_index < self.num_zones:
                continue
            state = (
                ZoneState.OFFLINE
                if event.kind is FaultKind.ZONE_OFFLINE
                else ZoneState.READ_ONLY
            )
            self.zones[event.zone_index].die(state)
            faults.note_zone_fault(event)

    def _check_readable(self, offset: int, length: int) -> None:
        """OFFLINE zones fail reads too (READ_ONLY zones still serve them)."""
        if length <= 0:
            return
        first = self.zone_of(offset)
        last = self.zone_of(offset + length - 1)
        for zone in (first, last):
            if zone.state is ZoneState.OFFLINE:
                raise ZoneDeadError(
                    f"zone {zone.index} is offline; reads fail",
                    zone_index=zone.index,
                )

    def _gate_write(
        self,
        offset: int,
        data: bytes,
        background: bool,
        virtual_now: Optional[int] = None,
        batch: Optional[List[Tuple[IoRequest, int]]] = None,
        stored: Optional[List[Tuple[int, bytes]]] = None,
    ) -> Tuple[IoRequest, int]:
        """Build + fault-gate a write request before any state mutation.

        A raised fault (typed error or power cut) leaves the zone
        untouched, so the caller can retry safely.  On a power cut the
        torn prefix is persisted first, and any already-validated batch
        extents are submitted so their media time is charged.
        """
        self._check_aligned(offset, len(data))
        zone = self.zone_of(offset)
        request = IoRequest(
            IoOp.WRITE,
            offset,
            len(data),
            zone=zone.index,
            layer="zns",
            background=background,
        )
        service_ns = self._write_service_ns(len(data))
        self.pipeline.fault_gate(request, service_ns)
        zone.check_writable(offset, len(data))
        self._ensure_open_budget(zone)
        self._note_write_open(zone)
        if self.pipeline.faults is not None:
            now = self._clock.now if virtual_now is None else virtual_now
            torn = self._maybe_tear(zone, offset, data, service_ns, now=now,
                                    flush=(batch, stored, background))
            assert not torn  # _maybe_tear raises when the cut hits
        return request, service_ns

    def _maybe_tear(
        self,
        zone: Zone,
        offset: int,
        data: bytes,
        service_ns: int,
        now: Optional[int] = None,
        flush: Optional[tuple] = None,
    ) -> bool:
        """If the power cut lands inside this write's media window,
        persist the aligned prefix, flush any pending batch, and trip
        the power (raises :class:`PowerCutError`)."""
        faults = self.pipeline.faults
        if faults is None:
            return False
        if now is None:
            now = self._clock.now
        keep = faults.torn_write_bytes(now, service_ns, len(data), self.block_size)
        if keep is None:
            return False
        if keep:
            self._store(offset, data[:keep])
            zone.advance(keep)
            self._stats.host_write_bytes += keep
            self._stats.media_write_bytes += keep
        if flush is not None:
            batch, stored, background = flush
            if batch:
                completions = self.pipeline.submit_many(batch)
                for completion, (_, done_data) in zip(completions, stored):
                    self._account_write(len(done_data), completion, background)
        faults.trip_power()
        return True  # pragma: no cover - trip_power always raises

    # --- internals -------------------------------------------------------------------

    def _zone_command(
        self, op: IoOp, zone_index: int, extra_ns: int = 0
    ) -> IoCompletion:
        return self.pipeline.submit(
            IoRequest(op, self.zones[zone_index].start, zone=zone_index, layer="zns"),
            self.config.timing.command_overhead_ns + extra_ns,
        )

    def _load(self, offset: int, length: int) -> bytes:
        page_size = self._page_size
        if length == page_size and offset % page_size == 0:
            # Single-page read: the overwhelmingly common shape once the
            # cache reads aligned windows.  Skips the join machinery.
            if offset + length > self._capacity_bytes:
                raise OutOfRangeError(
                    f"read (offset={offset}, length={length}) exceeds capacity"
                )
            page = self._pages.get(offset // page_size)
            return page if page is not None else b"\x00" * page_size
        self._check_aligned(offset, length)
        if offset + length > self._capacity_bytes:
            raise OutOfRangeError(
                f"read (offset={offset}, length={length}) exceeds capacity"
            )
        first = offset // page_size
        count = length // page_size
        return b"".join(
            self._pages.get(ppn, b"\x00" * page_size)
            for ppn in range(first, first + count)
        )

    def _prepare_write(self, offset: int, data: bytes) -> None:
        self._check_aligned(offset, len(data))
        zone = self.zone_of(offset)
        zone.check_writable(offset, len(data))
        self._ensure_open_budget(zone)
        self._store(offset, data)
        zone.advance(len(data))

    def _store(self, offset: int, data: bytes) -> None:
        page_size = self.block_size
        first = offset // page_size
        for i in range(len(data) // page_size):
            self._pages[first + i] = bytes(data[i * page_size : (i + 1) * page_size])

    def _read_service_ns(self, length: int) -> int:
        ns = self._read_ns_cache.get(length)
        if ns is None:
            count = length // self.block_size
            ns = self.config.timing.read_ns(
                count, length, self.config.geometry.parallelism
            )
            self._read_ns_cache[length] = ns
        return ns

    def _write_service_ns(self, length: int) -> int:
        ns = self._write_ns_cache.get(length)
        if ns is None:
            count = length // self.block_size
            ns = self.config.timing.program_ns(
                count, length, self.config.geometry.parallelism
            )
            self._write_ns_cache[length] = ns
        return ns

    def _account_write(
        self, length: int, completion: IoCompletion, background: bool
    ) -> None:
        if not background:
            self._stats.write_latency.record(completion.latency_ns)
        self._stats.host_write_bytes += length
        self._stats.media_write_bytes += length  # no device GC: WA == 1.0

    def _ensure_open_budget(self, zone: Zone) -> None:
        """Enforce max-open/max-active before a zone becomes (implicitly) open.

        With ``zone_costs.forced_close`` enabled, exceeding the open cap
        closes the least-recently-written open zone (charged through the
        pipeline) instead of raising — the contention model real drives
        implement in firmware.  The active cap always raises: closing an
        open zone keeps it active, so forcing closes cannot free an
        active slot for a never-written zone.
        """
        if zone.is_open:
            return
        if self.open_zone_count >= self.config.max_open_zones:
            if not self._zone_costs.forced_close:
                raise ZoneResourceError(
                    f"opening zone {zone.index} would exceed max_open_zones="
                    f"{self.config.max_open_zones}"
                )
            self._force_close_lru()
        if not zone.is_active and self.active_zone_count >= self.config.max_active_zones:
            raise ZoneResourceError(
                f"activating zone {zone.index} would exceed max_active_zones="
                f"{self.config.max_active_zones}"
            )

    def _force_close_lru(self) -> None:
        """Close the least-recently-written open zone to free an open slot.

        With ``finish_on_close`` the eviction pads the victim to FULL
        (FINISH at finish cost — it frees an active slot as well);
        otherwise it parks the victim CLOSED at close cost.  Either way
        the forced transition is charged through the pipeline, so the
        hidden contention cost lands in foreground latency.
        """
        touch = self._open_touch
        victim = min(
            (z for z in self.zones if z.is_open),
            key=lambda z: touch.get(z.index, 0),
        )
        mgmt = self.zone_mgmt
        costs = self._zone_costs
        if costs.finish_on_close and victim.written_bytes > 0:
            victim.finish()
            completion = self.pipeline.submit(
                IoRequest(IoOp.FINISH, victim.start, zone=victim.index, layer="zns"),
                self.config.timing.command_overhead_ns + costs.finish_ns,
            )
            mgmt.forced_closes += 1
            mgmt.finishes += 1
            mgmt.finish_ns += completion.service_ns
            return
        victim.close()
        completion = self.pipeline.submit(
            IoRequest(IoOp.CLOSE, victim.start, zone=victim.index, layer="zns"),
            self.config.timing.command_overhead_ns + costs.close_ns,
        )
        mgmt.forced_closes += 1
        mgmt.close_ns += completion.service_ns

    def _note_write_open(self, zone: Zone) -> None:
        """Touch the LRU clock; charge the implicit open when costed.

        Zero-cost implicit opens are counted but charge nothing and emit
        no trace record — the historical free-transition model.
        """
        self._touch_tick += 1
        self._open_touch[zone.index] = self._touch_tick
        if zone.is_open:
            return
        mgmt = self.zone_mgmt
        mgmt.implicit_opens += 1
        cost = self._zone_costs.open_ns
        if cost:
            completion = self.pipeline.submit(
                IoRequest(IoOp.OPEN, zone.start, zone=zone.index, layer="zns"),
                cost,
            )
            mgmt.open_ns += completion.service_ns

    def _check_zone_index(self, zone_index: int) -> None:
        if not 0 <= zone_index < self.num_zones:
            raise OutOfRangeError(
                f"zone index {zone_index} outside [0, {self.num_zones})"
            )

    def _check_aligned(self, offset: int, length: int) -> None:
        if offset % self.block_size or length % self.block_size:
            raise AlignmentError(
                f"ZNS I/O (offset={offset}, length={length}) must be aligned to "
                f"{self.block_size}B pages"
            )
        if length <= 0:
            raise AlignmentError(f"I/O length must be positive, got {length}")

    def __repr__(self) -> str:
        return (
            f"ZnsSsd(zones={self.num_zones}, zone_size={self.zone_size}, "
            f"open={self.open_zone_count}/{self.config.max_open_zones})"
        )


class AppendResult(IoCompletion):
    """Result of a Zone Append: includes the device-chosen offset."""

    __slots__ = ("offset",)

    def __init__(self, *args, offset: int = -1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.offset = offset
