"""NAND flash geometry and timing model shared by both SSD types.

The paper's two devices (WD ZN540 ZNS and WD SN540 block SSD) are
"hardware compatible": same NAND, different interface.  We model that by
giving :class:`~repro.flash.BlockSsd` and :class:`~repro.flash.ZnsSsd`
the *same* :class:`NandGeometry`/:class:`NandTiming` and letting only the
translation layer differ — which is exactly the comparison the paper
makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KIB, usec


@dataclass(frozen=True)
class NandGeometry:
    """Physical layout of the flash array.

    ``parallelism`` collapses channels × dies × planes into a single
    width: a batch of N page programs takes ``ceil(N / parallelism)``
    serial program steps.
    """

    page_size: int = 4 * KIB
    pages_per_block: int = 64
    num_blocks: int = 1024
    parallelism: int = 8

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")
        if self.pages_per_block <= 0:
            raise ValueError(
                f"pages_per_block must be positive, got {self.pages_per_block}"
            )
        if self.num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {self.num_blocks}")
        if self.parallelism <= 0:
            raise ValueError(f"parallelism must be positive, got {self.parallelism}")

    @property
    def block_size(self) -> int:
        """Bytes per erase block."""
        return self.page_size * self.pages_per_block

    @property
    def total_bytes(self) -> int:
        """Raw media capacity in bytes."""
        return self.block_size * self.num_blocks

    @property
    def total_pages(self) -> int:
        return self.pages_per_block * self.num_blocks


@dataclass(frozen=True)
class NandTiming:
    """Latency parameters for the flash array.

    Defaults approximate mainstream TLC NAND: ~60 µs page read, ~600 µs
    page program, ~3 ms block erase, and a ~1.2 GB/s host transfer bus.
    """

    page_read_ns: int = usec(60)
    page_program_ns: int = usec(600)
    block_erase_ns: int = usec(3000)
    bus_ns_per_byte: float = 0.8  # ~1.2 GB/s
    command_overhead_ns: int = usec(8)

    def __post_init__(self) -> None:
        for field_name in ("page_read_ns", "page_program_ns", "block_erase_ns"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.bus_ns_per_byte < 0:
            raise ValueError("bus_ns_per_byte must be non-negative")

    def transfer_ns(self, num_bytes: int) -> int:
        """Host-interface transfer time for ``num_bytes``."""
        return int(num_bytes * self.bus_ns_per_byte)

    def read_ns(self, num_pages: int, num_bytes: int, parallelism: int) -> int:
        """Service time for reading ``num_pages`` pages (``num_bytes`` payload)."""
        if num_pages <= 0:
            return self.command_overhead_ns
        serial_steps = -(-num_pages // parallelism)
        return (
            self.command_overhead_ns
            + serial_steps * self.page_read_ns
            + self.transfer_ns(num_bytes)
        )

    def program_ns(self, num_pages: int, num_bytes: int, parallelism: int) -> int:
        """Service time for programming ``num_pages`` pages."""
        if num_pages <= 0:
            return self.command_overhead_ns
        serial_steps = -(-num_pages // parallelism)
        return (
            self.command_overhead_ns
            + serial_steps * self.page_program_ns
            + self.transfer_ns(num_bytes)
        )

    def erase_ns(self, num_blocks: int = 1) -> int:
        """Service time for erasing ``num_blocks`` blocks serially."""
        return self.command_overhead_ns + num_blocks * self.block_erase_ns
