"""Zone descriptor and state machine for the ZNS SSD.

Implements the NVMe ZNS zone states and the transitions driven by
write/append/reset/finish/open/close, as described in the ZNS spec and
the paper's background section (§2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WritePointerError, ZoneDeadError, ZoneStateError


class ZoneState(enum.Enum):
    """NVMe ZNS zone states (the simulator never uses READ_ONLY/OFFLINE,
    but they are modelled so failure-injection tests can force them)."""

    EMPTY = "empty"
    IMPLICIT_OPEN = "implicit_open"
    EXPLICIT_OPEN = "explicit_open"
    CLOSED = "closed"
    FULL = "full"
    READ_ONLY = "read_only"
    OFFLINE = "offline"


OPEN_STATES = (ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN)
ACTIVE_STATES = OPEN_STATES + (ZoneState.CLOSED,)
DEAD_STATES = (ZoneState.READ_ONLY, ZoneState.OFFLINE)


@dataclass(frozen=True)
class ZoneCostConfig:
    """Per-transition zone-management service costs, in nanoseconds.

    Real ZNS firmware charges every state transition: opening a zone
    allocates a write buffer and XOR context, closing persists partial
    parity, finishing pads the remainder of the stripe, and reset joins
    the erase queue ("Eliminating the Hidden Cost of Zone Management in
    ZNS SSDs", HotStorage'23).  The simulator's historical default —
    every cost zero — flatters the zone-heavy schemes, so all defaults
    stay 0 (bit-identical goldens) and :meth:`measured` supplies a
    preset in the range characterized for commodity ZNS drives.

    ``forced_close`` enables the contention model: when a write would
    implicitly open a zone beyond ``max_open_zones``, the device closes
    the least-recently-written open zone (charged through the I/O
    pipeline, so the tracer attributes the hidden cost) instead of
    failing the write.  Off by default: the historical behaviour is a
    hard :class:`~repro.errors.ZoneResourceError`.

    ``finish_on_close`` models firmware that pads a partially-written
    zone to FULL instead of parking it CLOSED: closing (explicitly or
    via forced-close contention) a zone with data becomes a FINISH —
    write pointer jumps to the zone end, the zone stops holding *active*
    resources, and the (expensive, ``finish_ns``) padding is charged
    through the pipeline.  The trade is real on drives whose closed
    zones pin XOR/parity context: finishing releases the resource but
    wastes the unwritten tail until reset.  Off by default; zero
    behaviour change for every pre-existing golden.
    """

    open_ns: int = 0
    close_ns: int = 0
    finish_ns: int = 0
    reset_ns: int = 0
    forced_close: bool = False
    finish_on_close: bool = False

    def __post_init__(self) -> None:
        for name in ("open_ns", "close_ns", "finish_ns", "reset_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")

    @property
    def any_nonzero(self) -> bool:
        return bool(self.open_ns or self.close_ns or self.finish_ns or self.reset_ns)

    @classmethod
    def measured(cls) -> "ZoneCostConfig":
        """Measured-cost preset (µs-scale, commodity ZNS characterization):
        open ~30µs, close ~20µs, finish ~1.5ms (stripe padding), reset
        ~1ms (erase-queue admission), with forced closes enabled."""
        return cls(
            open_ns=30_000,
            close_ns=20_000,
            finish_ns=1_500_000,
            reset_ns=1_000_000,
            forced_close=True,
        )


@dataclass
class ZoneMgmtStats:
    """Per-device counters for zone-management commands and their cost.

    The ``*_ns`` fields accumulate the *service time charged through the
    I/O pipeline* for each command family — including the baseline
    command overhead for explicit commands — so they reconcile exactly
    with the sum of ``service_ns`` over the tracer's OPEN/CLOSE/FINISH/
    RESET records.  Implicit opens only charge (and only emit a trace
    record) when ``ZoneCostConfig.open_ns`` is nonzero; the transition
    itself is always counted.
    """

    explicit_opens: int = 0
    implicit_opens: int = 0
    closes: int = 0
    forced_closes: int = 0
    finishes: int = 0
    resets: int = 0
    open_ns: int = 0
    close_ns: int = 0
    finish_ns: int = 0
    reset_ns: int = 0

    @property
    def total_ns(self) -> int:
        return self.open_ns + self.close_ns + self.finish_ns + self.reset_ns


@dataclass
class Zone:
    """One zone: fixed location, sequential write pointer, state."""

    index: int
    start: int
    size: int
    state: ZoneState = ZoneState.EMPTY
    write_pointer: int = field(default=0)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"zone size must be positive, got {self.size}")
        self.write_pointer = self.start

    @property
    def end(self) -> int:
        """First byte past the zone."""
        return self.start + self.size

    @property
    def written_bytes(self) -> int:
        return self.write_pointer - self.start

    @property
    def remaining_bytes(self) -> int:
        return self.end - self.write_pointer

    @property
    def is_open(self) -> bool:
        return self.state in OPEN_STATES

    @property
    def is_active(self) -> bool:
        """Open or closed — i.e. holds device write resources."""
        return self.state in ACTIVE_STATES

    def contains(self, offset: int, length: int = 1) -> bool:
        return self.start <= offset and offset + length <= self.end

    # --- transitions ------------------------------------------------------------

    @property
    def is_dead(self) -> bool:
        return self.state in DEAD_STATES

    def die(self, state: ZoneState) -> None:
        """Failure injection: force the zone to READ_ONLY or OFFLINE."""
        if state not in DEAD_STATES:
            raise ValueError(f"die() takes READ_ONLY or OFFLINE, got {state}")
        self.state = state

    def check_writable(self, offset: int, length: int) -> None:
        """Validate a write of ``length`` bytes at ``offset``."""
        if self.state in DEAD_STATES:
            raise ZoneDeadError(
                f"zone {self.index} is {self.state.value}; writes not allowed",
                zone_index=self.index,
            )
        if self.state == ZoneState.FULL:
            raise ZoneStateError(
                f"zone {self.index} is {self.state.value}; writes not allowed"
            )
        if offset != self.write_pointer:
            raise WritePointerError(
                f"zone {self.index}: write at {offset} but write pointer is "
                f"{self.write_pointer}"
            )
        if offset + length > self.end:
            raise ZoneStateError(
                f"zone {self.index}: write of {length}B at {offset} crosses the "
                f"zone boundary at {self.end}"
            )

    def advance(self, length: int) -> None:
        """Move the write pointer after a successful write/append."""
        self.write_pointer += length
        if self.write_pointer >= self.end:
            self.state = ZoneState.FULL
        elif self.state == ZoneState.EMPTY or self.state == ZoneState.CLOSED:
            self.state = ZoneState.IMPLICIT_OPEN

    def reset(self) -> None:
        if self.state in DEAD_STATES:
            raise ZoneDeadError(
                f"zone {self.index} is {self.state.value}; cannot reset",
                zone_index=self.index,
            )
        self.write_pointer = self.start
        self.state = ZoneState.EMPTY

    def finish(self) -> None:
        if self.state in DEAD_STATES:
            raise ZoneDeadError(
                f"zone {self.index} is {self.state.value}", zone_index=self.index
            )
        self.write_pointer = self.end
        self.state = ZoneState.FULL

    def open_explicit(self) -> None:
        if self.state in DEAD_STATES:
            raise ZoneDeadError(
                f"zone {self.index} is {self.state.value}", zone_index=self.index
            )
        if self.state == ZoneState.FULL:
            raise ZoneStateError(f"zone {self.index} is full; cannot open")
        self.state = ZoneState.EXPLICIT_OPEN

    def close(self) -> None:
        if self.state not in OPEN_STATES:
            raise ZoneStateError(
                f"zone {self.index} is {self.state.value}; only open zones close"
            )
        # A closed zone with nothing written reverts to empty per spec.
        if self.write_pointer == self.start:
            self.state = ZoneState.EMPTY
        else:
            self.state = ZoneState.CLOSED
