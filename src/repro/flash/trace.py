"""I/O tracing: record every command a device services.

Traces make device behaviour inspectable in tests and debuggable in
benchmarks: the access pattern a cache scheme produces (sequential
region writes vs scattered block updates) is exactly what the paper's
analysis hinges on.

``TracingBlockDevice`` wraps any :class:`~repro.flash.device.BlockDevice`.
It predates the pipeline-level :class:`~repro.sim.io.IoTracer` (which
captures cross-layer causality, not just device commands) and is kept
for flat offset/length trace analysis — see
``examples/io_trace_analysis.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.flash.device import BlockDevice, DeviceStats
from repro.sim.io import IoCompletion


@dataclass(frozen=True)
class IoEvent:
    """One traced device command."""

    timestamp_ns: int
    op: str  # "read" | "write" | "append" | "reset" | "discard"
    offset: int
    length: int
    latency_ns: int


@dataclass
class IoTrace:
    """Append-only command trace with summary helpers."""

    events: List[IoEvent] = field(default_factory=list)

    def record(self, event: IoEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def by_op(self, op: str) -> List[IoEvent]:
        return [e for e in self.events if e.op == op]

    def bytes_by_op(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.op] = out.get(event.op, 0) + event.length
        return out

    def sequential_fraction(self, op: str = "write") -> float:
        """Fraction of ``op`` events contiguous with their predecessor —
        the sequentiality a log-structured cache is supposed to produce."""
        events = self.by_op(op)
        if len(events) < 2:
            return 1.0
        sequential = sum(
            1
            for prev, cur in zip(events, events[1:])
            if cur.offset == prev.offset + prev.length
        )
        return sequential / (len(events) - 1)

    def to_csv(self) -> str:
        lines = ["timestamp_ns,op,offset,length,latency_ns"]
        for e in self.events:
            lines.append(
                f"{e.timestamp_ns},{e.op},{e.offset},{e.length},{e.latency_ns}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()


class TracingBlockDevice(BlockDevice):
    """Transparent tracing wrapper around any block device."""

    def __init__(self, inner: BlockDevice, trace: Optional[IoTrace] = None) -> None:
        self.inner = inner
        self.trace = trace if trace is not None else IoTrace()

    @property
    def capacity_bytes(self) -> int:
        return self.inner.capacity_bytes

    @property
    def block_size(self) -> int:
        return self.inner.block_size

    @property
    def stats(self) -> DeviceStats:
        return self.inner.stats

    def _now(self) -> int:
        clock = getattr(self.inner, "_clock", None)
        return clock.now if clock is not None else 0

    def read(self, offset: int, length: int) -> IoCompletion:
        result = self.inner.read(offset, length)
        self.trace.record(
            IoEvent(self._now(), "read", offset, length, result.latency_ns)
        )
        return result

    def write(self, offset: int, data: bytes) -> IoCompletion:
        result = self.inner.write(offset, data)
        self.trace.record(
            IoEvent(self._now(), "write", offset, len(data), result.latency_ns)
        )
        return result

    def __getattr__(self, name: str):
        # Delegate extras (e.g. BlockSsd.discard) to the wrapped device.
        return getattr(self.inner, name)
