"""RAM-backed block device, standing in for Linux ``nullblk``.

The paper's F2FS setup places the filesystem's conventional metadata
area on a 6 GiB nullblk device because F2FS on a purely zoned device has
nowhere to put randomly-updated metadata.  This simulator mirrors that:
constant sub-NAND latency, no write amplification, no GC.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.flash.device import BlockDevice, DeviceStats, check_alignment
from repro.sim.clock import SimClock
from repro.sim.faults import FaultInjector
from repro.sim.io import IoCompletion, IoOp, IoPipeline, IoRequest, IoTracer, PoolConfig
from repro.units import KIB, MIB, usec


class NullBlkDevice(BlockDevice):
    """Flat RAM block device with constant per-I/O latency."""

    def __init__(
        self,
        clock: SimClock,
        capacity_bytes: int = 64 * MIB,
        block_size: int = 4 * KIB,
        latency_ns: int = usec(12),
        tracer: Optional[IoTracer] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if capacity_bytes <= 0 or capacity_bytes % block_size != 0:
            raise ValueError(
                f"capacity {capacity_bytes} must be a positive multiple of "
                f"block_size {block_size}"
            )
        self._clock = clock
        self._capacity = capacity_bytes
        self._block_size = block_size
        self._latency_ns = latency_ns
        self._stats = DeviceStats()
        self._blocks: Dict[int, bytes] = {}
        self.pipeline = IoPipeline(clock, "nullblk", PoolConfig(), tracer, faults=faults)

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def stats(self) -> DeviceStats:
        return self._stats

    def read(self, offset: int, length: int) -> IoCompletion:
        check_alignment(offset, length, self._block_size, self._capacity)
        first = offset // self._block_size
        count = length // self._block_size
        chunks = [
            self._blocks.get(i, b"\x00" * self._block_size)
            for i in range(first, first + count)
        ]
        completion = self.pipeline.submit(
            IoRequest(IoOp.READ, offset, length, layer="nullblk"), self._latency_ns
        )
        self._stats.host_read_bytes += length
        self._stats.media_read_bytes += length
        self._stats.read_latency.record(completion.latency_ns)
        completion.data = b"".join(chunks)
        return completion

    def write(self, offset: int, data: bytes) -> IoCompletion:
        check_alignment(offset, len(data), self._block_size, self._capacity)
        first = offset // self._block_size
        for i in range(len(data) // self._block_size):
            self._blocks[first + i] = bytes(
                data[i * self._block_size : (i + 1) * self._block_size]
            )
        completion = self.pipeline.submit(
            IoRequest(IoOp.WRITE, offset, len(data), layer="nullblk"), self._latency_ns
        )
        self._stats.host_write_bytes += len(data)
        self._stats.media_write_bytes += len(data)
        self._stats.write_latency.record(completion.latency_ns)
        return completion
