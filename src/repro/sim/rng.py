"""Deterministic random number generation helpers.

All stochastic behaviour in the reproduction (workload key choice, value
sizes, latency jitter) flows through seeded generators created here so
that every experiment is exactly repeatable.
"""

from __future__ import annotations

import random


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Create an independent deterministic RNG.

    ``stream`` decorrelates multiple generators derived from one seed
    (e.g. the workload generator and the device jitter source) so that
    adding draws to one does not perturb the other.
    """
    if stream:
        seed = hash((seed, stream)) & 0x7FFF_FFFF_FFFF_FFFF
    return random.Random(seed)
