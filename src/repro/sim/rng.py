"""Deterministic random number generation helpers.

All stochastic behaviour in the reproduction (workload key choice, value
sizes, latency jitter) flows through seeded generators created here so
that every experiment is exactly repeatable.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Create an independent deterministic RNG.

    ``stream`` decorrelates multiple generators derived from one seed
    (e.g. the workload generator and the device jitter source) so that
    adding draws to one does not perturb the other.

    The stream mix-in uses :func:`zlib.crc32`, not the builtin ``hash``:
    string hashing is salted per process (``PYTHONHASHSEED``), which
    would silently make "deterministic" experiments unrepeatable across
    runs — and make golden-value regression tests impossible.
    """
    if stream:
        seed = (seed * 0x1_0000_0001 + zlib.crc32(stream.encode())) & (
            0x7FFF_FFFF_FFFF_FFFF
        )
    return random.Random(seed)
