"""Deterministic random number generation helpers.

All stochastic behaviour in the reproduction (workload key choice, value
sizes, latency jitter) flows through seeded generators created here so
that every experiment is exactly repeatable.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence

try:  # Optional: bulk draws vectorize through numpy when present.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Create an independent deterministic RNG.

    ``stream`` decorrelates multiple generators derived from one seed
    (e.g. the workload generator and the device jitter source) so that
    adding draws to one does not perturb the other.

    The stream mix-in uses :func:`zlib.crc32`, not the builtin ``hash``:
    string hashing is salted per process (``PYTHONHASHSEED``), which
    would silently make "deterministic" experiments unrepeatable across
    runs — and make golden-value regression tests impossible.
    """
    if stream:
        seed = (seed * 0x1_0000_0001 + zlib.crc32(stream.encode())) & (
            0x7FFF_FFFF_FFFF_FFFF
        )
    return random.Random(seed)


def bulk_random(rng: random.Random, n: int) -> Sequence[float]:
    """Draw ``n`` uniforms bit-identical to ``n`` calls of ``rng.random()``.

    CPython's ``random()`` and numpy's legacy ``RandomState.random_sample``
    run the *same* Mersenne-Twister ``genrand_res53`` recurrence, so the
    617-word state can be handed to numpy, drawn from in bulk, and handed
    back — the Python generator continues exactly where a scalar loop
    would have left it.  Falls back to a plain loop for tiny batches or
    when numpy is unavailable.

    Returns a float sequence (``numpy.ndarray`` of float64 or a list);
    element values are identical either way.
    """
    if n <= 0:
        return []
    if _np is None or n < 32:
        draw = rng.random
        return [draw() for _ in range(n)]
    version, internal, gauss = rng.getstate()
    bit_gen, state = _shared_state()
    # The MT19937 bit-generator ``state`` dict is ~2x faster to set/get
    # than the legacy ``RandomState.set_state`` tuple API and transfers
    # the identical 624-word key + position.
    bit_gen.state = {
        "bit_generator": "MT19937",
        "state": {
            "key": _np.array(internal[:-1], dtype=_np.uint32),
            "pos": internal[-1],
        },
    }
    out = state.random_sample(n)
    after = bit_gen.state["state"]
    rng.setstate(
        (version, tuple(after["key"].tolist()) + (after["pos"],), gauss)
    )
    return out


_SHARED_STATE = None


def _shared_state():
    """One reusable (MT19937, RandomState) pair: constructing fresh ones
    seeds from OS entropy (slow); the state hand-off overwrites the whole
    state anyway.  The RandomState wraps the *same* bit generator, so
    ``random_sample`` consumes exactly the words the state dict reports."""
    global _SHARED_STATE
    if _SHARED_STATE is None:
        bit_gen = _np.random.MT19937(0)
        _SHARED_STATE = (bit_gen, _np.random.RandomState(bit_gen))
    return _SHARED_STATE
