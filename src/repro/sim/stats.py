"""Lightweight statistics primitives used across the stack.

``LatencyRecorder`` keeps raw samples (the experiments are small enough
that exact percentiles are affordable and reproducible), ``Counter`` is a
named monotonic counter, and ``RatioStat`` tracks hit/miss style ratios.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """Named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class RatioStat:
    """Tracks successes over trials (e.g. cache hits over lookups)."""

    __slots__ = ("name", "hits", "total")

    def __init__(self, name: str = "ratio") -> None:
        self.name = name
        self.hits = 0
        self.total = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def misses(self) -> int:
        return self.total - self.hits

    @property
    def ratio(self) -> float:
        """Hit ratio in [0, 1]; 0.0 when no events were recorded."""
        if self.total == 0:
            return 0.0
        return self.hits / self.total

    def reset(self) -> None:
        self.hits = 0
        self.total = 0

    def __repr__(self) -> str:
        return f"RatioStat({self.name!r}, {self.hits}/{self.total})"


class LatencyRecorder:
    """Collects latency samples (ns) and reports exact percentiles.

    The fast paths append to ``_samples`` directly (and clear
    ``_sorted``) instead of calling :meth:`record`; keep any new
    bookkeeping inside those two fields so the inlined sites stay
    faithful.
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: List[int] = []
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total_ns(self) -> int:
        return sum(self._samples)

    def mean(self) -> float:
        """Mean latency in nanoseconds (0.0 with no samples)."""
        if not self._samples:
            return 0.0
        return self.total_ns / len(self._samples)

    def percentile(self, pct: float) -> int:
        """Exact percentile via the nearest-rank method.

        ``pct`` is in (0, 100].  Returns 0 when no samples were recorded
        so idle components report cleanly.
        """
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        if not self._samples:
            return 0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(1, math.ceil(pct / 100.0 * len(self._sorted)))
        return self._sorted[rank - 1]

    def p50(self) -> int:
        return self.percentile(50)

    def p90(self) -> int:
        return self.percentile(90)

    def p99(self) -> int:
        return self.percentile(99)

    def max(self) -> int:
        return max(self._samples) if self._samples else 0

    def min(self) -> int:
        return min(self._samples) if self._samples else 0

    def snapshot(self) -> Dict[str, float]:
        """Summary dict for reports: count, mean, p50/p90/p99/max in ns."""
        return {
            "count": self.count,
            "mean_ns": self.mean(),
            "p50_ns": self.p50(),
            "p90_ns": self.p90(),
            "p99_ns": self.p99(),
            "max_ns": self.max(),
        }

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None

    def __repr__(self) -> str:
        return f"LatencyRecorder({self.name!r}, n={self.count})"
