"""Run-list event scheduler for the serving loop's fast path.

The serving simulation keeps only a handful of events in flight at any
moment — one pending arrival per tenant plus one completion per busy
shard — so a binary heap pays ``O(log n)`` sift overhead (and heapq's
call dispatch) for ordering that a tiny sorted list provides with an
``O(1)`` ``list.pop()`` and a short ``bisect.insort`` memmove.

Events are stored as ``(-time_ns, -seq, kind, index)`` tuples kept in
ascending order, so the *end* of the list is always the earliest
``(time_ns, seq)`` event.  ``seq`` increments on every push and is
therefore unique: tuple comparison never reads past the second element,
and the dequeue order is exactly the ``(time_ns, seq)`` total order a
``heapq`` of ``(time_ns, seq, kind, index)`` tuples would produce —
:mod:`tests.test_engine_speed` property-checks that equivalence.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Tuple


class EventScheduler:
    """Deterministic ``(time, seq)``-ordered scheduler on a run-list.

    Hot loops may bind ``scheduler.events`` (the raw list) and pop
    negated tuples directly; :meth:`push`/:meth:`pop` are the readable
    wrappers with identical semantics.
    """

    __slots__ = ("events", "seq")

    def __init__(self) -> None:
        self.events: List[Tuple[int, int, int, int]] = []
        self.seq = 0

    def push(self, time_ns: int, kind: int, index: int) -> None:
        """Schedule an event; later pushes at equal times dequeue later."""
        self.seq += 1
        insort(self.events, (-time_ns, -self.seq, kind, index))

    def pop(self) -> Tuple[int, int, int, int]:
        """Remove and return the earliest event as (time_ns, seq, kind, index)."""
        neg_time, neg_seq, kind, index = self.events.pop()
        return (-neg_time, -neg_seq, kind, index)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __repr__(self) -> str:
        return f"EventScheduler(pending={len(self.events)}, seq={self.seq})"
