"""Virtual nanosecond clock shared by all simulated components.

The simulation is logically single-threaded: components *advance* the
clock by the latency of each operation instead of sleeping.  Background
activities (device GC, filesystem cleaning, middle-layer GC) are modelled
as *reservations*: they register busy intervals on a resource timeline so
foreground operations that collide with them observe queueing delay — this
is what produces realistic tail latency without real threads.
"""

from __future__ import annotations

from repro.units import to_seconds


class SimClock:
    """Monotonic virtual clock measured in integer nanoseconds.

    ``now`` is a plain slot attribute: the hot simulation paths read it
    several times per cache operation, and a property descriptor there
    is measurable overhead.  Mutate it only through :meth:`advance` /
    :meth:`advance_to` (or equivalent forward-only arithmetic in the
    audited fast paths) — simulated time never rewinds.
    """

    __slots__ = ("now",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError(f"start_ns must be non-negative, got {start_ns}")
        self.now = start_ns

    @property
    def now_seconds(self) -> float:
        """Current virtual time in float seconds."""
        return to_seconds(self.now)

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time.

        Negative deltas are rejected: simulated time never rewinds.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta_ns}")
        self.now += delta_ns
        return self.now

    def advance_to(self, timestamp_ns: int) -> int:
        """Move time forward to ``timestamp_ns`` if it is in the future."""
        if timestamp_ns > self.now:
            self.now = timestamp_ns
        return self.now

    def __repr__(self) -> str:
        return f"SimClock(now={self.now}ns)"


def check_service_time(service_ns: int) -> None:
    """Shared validation for every resource occupancy in the simulation."""
    if service_ns < 0:
        raise ValueError(f"service_ns must be non-negative, got {service_ns}")


class ResourceTimeline:
    """Serial resource that turns overlapping demands into queueing delay.

    Models one serial execution resource (a NAND die set, an HDD actuator,
    a GC thread's lock).  ``acquire(now, service_ns)`` returns the
    completion time: if the resource is still busy from earlier work the
    request waits, which is how background GC inflates foreground tail
    latency in this simulation.

    Data-path device traffic now flows through the N-channel
    :class:`~repro.sim.io.ResourcePool`; this serial primitive remains
    the single-resource building block (and the reference semantics a
    one-channel pool must reproduce).
    """

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self._busy_until = 0
        self.total_busy_ns = 0
        self.total_wait_ns = 0

    @property
    def busy_until(self) -> int:
        """Virtual time at which the resource becomes free."""
        return self._busy_until

    def wait_time(self, now_ns: int) -> int:
        """Queueing delay a request issued at ``now_ns`` would observe."""
        return max(0, self._busy_until - now_ns)

    def acquire(self, now_ns: int, service_ns: int) -> int:
        """Occupy the resource for ``service_ns`` starting at ``now_ns``.

        Returns the completion timestamp (wait + service).
        """
        return self._occupy(now_ns, service_ns, charge_wait=True)

    def reserve_background(self, now_ns: int, service_ns: int) -> int:
        """Schedule background work without a requester waiting on it.

        Identical to :meth:`acquire` except the wait is not charged to
        ``total_wait_ns`` (nobody is blocked *issuing* it); foreground
        requests that arrive while it runs still queue behind it.
        """
        return self._occupy(now_ns, service_ns, charge_wait=False)

    def _occupy(self, now_ns: int, service_ns: int, charge_wait: bool) -> int:
        check_service_time(service_ns)
        start = max(now_ns, self._busy_until)
        if charge_wait:
            self.total_wait_ns += start - now_ns
        self._busy_until = start + service_ns
        self.total_busy_ns += service_ns
        return self._busy_until

    def __repr__(self) -> str:
        return f"ResourceTimeline({self.name!r}, busy_until={self._busy_until})"
