"""Simulation kernel: virtual clock, deterministic RNG, and statistics.

Every device, filesystem, and cache component in this reproduction is
driven by a single shared :class:`SimClock`.  Devices *advance* the clock
by their modelled service time; the workload drivers read the clock to
compute throughput, so all reported numbers are deterministic functions of
the configuration and seed.
"""

from repro.sim.clock import SimClock
from repro.sim.stats import LatencyRecorder, Counter, RatioStat
from repro.sim.rng import make_rng

__all__ = [
    "SimClock",
    "LatencyRecorder",
    "Counter",
    "RatioStat",
    "make_rng",
]
