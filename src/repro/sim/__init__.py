"""Simulation kernel: virtual clock, I/O pipeline, RNG, and statistics.

Every device, filesystem, and cache component in this reproduction is
driven by a single shared :class:`SimClock`.  Devices *advance* the clock
by their modelled service time; the workload drivers read the clock to
compute throughput, so all reported numbers are deterministic functions of
the configuration and seed.

Device traffic is carried by the unified I/O pipeline in
:mod:`repro.sim.io`: typed :class:`IoRequest`/:class:`IoCompletion`
records, an N-channel :class:`ResourcePool`, and the :class:`IoTracer`
hook bus that links one cache operation to every device command it
caused.
"""

from repro.sim.clock import ResourceTimeline, SimClock, check_service_time
from repro.sim.faults import (
    FaultInjector,
    FaultKind,
    FaultRule,
    FaultStats,
    RetryPolicy,
    ZoneFault,
)
from repro.sim.io import (
    IoCompletion,
    IoOp,
    IoPipeline,
    IoRequest,
    IoTracer,
    NULL_TRACER,
    PoolConfig,
    ResourcePool,
    TraceRecord,
)
from repro.sim.rng import make_rng
from repro.sim.stats import Counter, LatencyRecorder, RatioStat

__all__ = [
    "SimClock",
    "ResourceTimeline",
    "check_service_time",
    "IoOp",
    "IoRequest",
    "IoCompletion",
    "IoPipeline",
    "IoTracer",
    "NULL_TRACER",
    "PoolConfig",
    "ResourcePool",
    "TraceRecord",
    "FaultInjector",
    "FaultKind",
    "FaultRule",
    "FaultStats",
    "RetryPolicy",
    "ZoneFault",
    "LatencyRecorder",
    "Counter",
    "RatioStat",
    "make_rng",
]
