"""Seeded, deterministic fault injection on the unified I/O pipeline.

The :class:`FaultInjector` hooks :class:`repro.sim.io.IoPipeline`'s
submission path (``IoPipeline.fault_gate``) — the single choke point PR 1
built — and can

* fail individual requests with typed errors (``TransientMediaError``,
  ``AppendFailedError``, ``ZoneResourceError``) via probability rules,
* inject latency spikes on matching requests,
* flip a ZNS zone to READ-ONLY or OFFLINE at a scheduled sim instant
  (devices poll :meth:`due_zone_faults` on entry to their public ops),
* simulate a power cut at an arbitrary sim-clock instant, tearing the
  write in flight at the cut (:meth:`torn_write_bytes`) and failing all
  subsequent I/O with :class:`PowerCutError` until
  :meth:`restore_power` is called.

Determinism: every rule owns an independent RNG stream derived from
``make_rng(seed, "fault.<i>.<kind>")``, so two runs with the same seed
and the same fault plan produce bit-identical error sequences and
traces regardless of how other seeded components draw.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    AppendFailedError,
    PowerCutError,
    TransientMediaError,
    ZoneResourceError,
)
from repro.sim.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (io imports us)
    from repro.sim.clock import SimClock
    from repro.sim.io import IoRequest, IoTracer


class FaultKind(enum.Enum):
    """What a :class:`FaultRule` or zone event does when it fires."""

    MEDIA_ERROR = "media_error"  # raise TransientMediaError
    APPEND_ERROR = "append_error"  # raise AppendFailedError (append ops only)
    ZONE_RESOURCE = "zone_resource"  # raise ZoneResourceError
    LATENCY = "latency"  # add extra_latency_ns to the service time
    ZONE_READONLY = "zone_readonly"  # scheduled zone-state flip
    ZONE_OFFLINE = "zone_offline"  # scheduled zone-state flip
    POWER_CUT = "power_cut"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Rule kinds evaluated per request at the gate (the rest are scheduled).
_REQUEST_KINDS = (
    FaultKind.MEDIA_ERROR,
    FaultKind.APPEND_ERROR,
    FaultKind.ZONE_RESOURCE,
    FaultKind.LATENCY,
)


@dataclass(frozen=True)
class FaultRule:
    """One probabilistic per-request fault.

    ``layer``/``pipeline`` are prefix matches (empty = match all);
    ``op`` matches the :class:`IoOp` value exactly (None = all ops).
    ``after_requests`` skips the first N matching requests and
    ``max_injections`` caps how many times the rule fires (0 = no cap).
    """

    kind: FaultKind
    probability: float = 1.0
    layer: str = ""
    op: Optional[str] = None
    pipeline: str = ""
    zone: Optional[int] = None
    after_requests: int = 0
    max_injections: int = 0
    extra_latency_ns: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _REQUEST_KINDS:
            raise ValueError(
                f"rule kind must be a per-request fault, got {self.kind}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.kind is FaultKind.LATENCY and self.extra_latency_ns <= 0:
            raise ValueError("LATENCY rules need extra_latency_ns > 0")
        if self.extra_latency_ns < 0:
            raise ValueError("extra_latency_ns must be >= 0")
        if self.after_requests < 0 or self.max_injections < 0:
            raise ValueError("after_requests/max_injections must be >= 0")


@dataclass(frozen=True)
class ZoneFault:
    """Scheduled zone-state flip: at ``at_ns`` the zone dies."""

    at_ns: int
    zone_index: int
    kind: FaultKind = FaultKind.ZONE_OFFLINE

    def __post_init__(self) -> None:
        if self.kind not in (FaultKind.ZONE_READONLY, FaultKind.ZONE_OFFLINE):
            raise ValueError(f"zone fault kind must flip zone state, got {self.kind}")
        if self.at_ns < 0:
            raise ValueError("at_ns must be >= 0")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff budget for :class:`RetryableError` handling."""

    max_attempts: int = 3
    backoff_ns: int = 200_000
    multiplier: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_ns < 0 or self.multiplier < 1:
            raise ValueError("backoff_ns >= 0 and multiplier >= 1 required")

    def backoff_for(self, attempt: int) -> int:
        """Delay before retry number ``attempt`` (0-based)."""
        return self.backoff_ns * self.multiplier**attempt


@dataclass
class FaultStats:
    """What the injector actually did, by kind."""

    injected: Dict[str, int] = field(default_factory=dict)
    latency_injected_ns: int = 0
    zone_faults_applied: int = 0
    torn_writes: int = 0
    torn_bytes_dropped: int = 0
    power_cuts: int = 0

    @property
    def total_injected(self) -> int:
        return (
            sum(self.injected.values())
            + self.zone_faults_applied
            + self.power_cuts
        )

    def count(self, kind: FaultKind) -> int:
        return self.injected.get(kind.value, 0)


class _RuleState:
    """Mutable per-rule counters + private RNG stream."""

    __slots__ = ("seen", "fired", "rng")

    def __init__(self, seed: int, index: int, rule: FaultRule) -> None:
        self.seen = 0
        self.fired = 0
        self.rng = make_rng(seed, f"fault.{index}.{rule.kind.value}")


class FaultInjector:
    """Deterministic fault source shared by every pipeline in a stack.

    Construct with a fault plan (rules, zone faults, power-cut instant),
    hand the instance to the device builders; each ``IoPipeline`` binds
    it to the clock/tracer and consults :meth:`inspect` before any
    device state changes — so a failed request can always be retried
    without tripping over a half-applied write.
    """

    def __init__(
        self,
        seed: int = 0,
        rules: Iterable[FaultRule] = (),
        zone_faults: Iterable[ZoneFault] = (),
        power_cut_at_ns: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.zone_faults: List[ZoneFault] = sorted(
            zone_faults, key=lambda fault: (fault.at_ns, fault.zone_index)
        )
        self.power_cut_at_ns = power_cut_at_ns
        self.enabled = True
        self.tripped = False  # power already cut
        self.stats = FaultStats()
        self._states = [
            _RuleState(seed, i, rule) for i, rule in enumerate(self.rules)
        ]
        self._zone_cursor = 0
        self._clock: Optional["SimClock"] = None
        self._tracer: Optional["IoTracer"] = None

    # --- wiring ---------------------------------------------------------------

    def bind(self, clock: "SimClock", tracer: Optional["IoTracer"]) -> None:
        """Attach clock and tracer (first binding wins, like IoTracer)."""
        if self._clock is None:
            self._clock = clock
        if self._tracer is None and tracer is not None:
            self._tracer = tracer

    def enable(self) -> "FaultInjector":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    @property
    def now(self) -> int:
        return self._clock.now if self._clock is not None else 0

    # --- the gate -------------------------------------------------------------

    def inspect(
        self, pipeline_name: str, request: "IoRequest", service_ns: int
    ) -> int:
        """Evaluate the fault plan against one request.

        Returns extra latency to add to the service time; raises the
        typed error of the first error rule that fires.  Called by
        ``IoPipeline.fault_gate`` *before* the owning device mutates
        any state for the request, so raising here is always safe to
        retry.
        """
        if not self.enabled:
            return 0
        if self.power_cut_at_ns is not None and (
            self.tripped or self.now >= self.power_cut_at_ns
        ):
            self.trip_power()
        extra = 0
        for rule, state in zip(self.rules, self._states):
            if not self._matches(rule, pipeline_name, request):
                continue
            state.seen += 1
            if state.seen <= rule.after_requests:
                continue
            if rule.max_injections and state.fired >= rule.max_injections:
                continue
            if rule.probability < 1.0 and state.rng.random() >= rule.probability:
                continue
            state.fired += 1
            kind = rule.kind
            self.stats.injected[kind.value] = self.stats.injected.get(kind.value, 0) + 1
            self._emit(f"inject.{kind.value}", request.offset, request.length,
                       request.zone)
            if kind is FaultKind.LATENCY:
                extra += rule.extra_latency_ns
                self.stats.latency_injected_ns += rule.extra_latency_ns
                continue
            if kind is FaultKind.MEDIA_ERROR:
                raise TransientMediaError(
                    f"injected media error on {pipeline_name} "
                    f"{request.op.value}@{request.offset}"
                )
            if kind is FaultKind.APPEND_ERROR:
                raise AppendFailedError(
                    f"injected append failure on {pipeline_name} "
                    f"zone {request.zone}"
                )
            raise ZoneResourceError(
                f"injected open-resource exhaustion on {pipeline_name}"
            )
        return extra

    @staticmethod
    def _matches(
        rule: FaultRule, pipeline_name: str, request: "IoRequest"
    ) -> bool:
        if rule.kind is FaultKind.APPEND_ERROR and request.op.value != "append":
            return False
        if rule.pipeline and not pipeline_name.startswith(rule.pipeline):
            return False
        if rule.layer and not request.layer.startswith(rule.layer):
            return False
        if rule.op is not None and request.op.value != rule.op:
            return False
        if rule.zone is not None and request.zone != rule.zone:
            return False
        return True

    # --- zone faults ----------------------------------------------------------

    def due_zone_faults(self, now_ns: int) -> List[ZoneFault]:
        """Scheduled zone flips that have come due; consumed once."""
        if not self.enabled:
            return []
        due: List[ZoneFault] = []
        while (
            self._zone_cursor < len(self.zone_faults)
            and self.zone_faults[self._zone_cursor].at_ns <= now_ns
        ):
            due.append(self.zone_faults[self._zone_cursor])
            self._zone_cursor += 1
        return due

    def note_zone_fault(self, fault: ZoneFault) -> None:
        """Device callback: the zone flip was applied to real zone state."""
        self.stats.zone_faults_applied += 1
        self._emit(f"inject.{fault.kind.value}", 0, 0, fault.zone_index)

    # --- power cut ------------------------------------------------------------

    def torn_write_bytes(
        self, now_ns: int, service_ns: int, length: int, align: int
    ) -> Optional[int]:
        """Bytes of a write that persist if the cut lands in its window.

        Returns None when the write is unaffected; otherwise the number
        of bytes (floored to ``align``) that reached the media before
        the lights went out.  The caller stores that prefix, then calls
        :meth:`trip_power` — which raises :class:`PowerCutError`.
        """
        if not self.enabled or self.power_cut_at_ns is None or self.tripped:
            return None
        if now_ns >= self.power_cut_at_ns:
            return 0
        if service_ns <= 0 or now_ns + service_ns <= self.power_cut_at_ns:
            return None
        fraction = (self.power_cut_at_ns - now_ns) / service_ns
        keep = int(length * fraction) // align * align
        self.stats.torn_writes += 1
        self.stats.torn_bytes_dropped += length - keep
        return keep

    def trip_power(self) -> None:
        """Cut the power: advance the clock to the cut instant (if it is
        still in the future) and raise :class:`PowerCutError`.  Every
        later :meth:`inspect` re-raises until :meth:`restore_power`."""
        if not self.tripped:
            self.tripped = True
            self.stats.power_cuts += 1
            if (
                self._clock is not None
                and self.power_cut_at_ns is not None
                and self._clock.now < self.power_cut_at_ns
            ):
                self._clock.advance_to(self.power_cut_at_ns)
            self._emit("inject.power_cut", 0, 0, None)
        raise PowerCutError(
            f"power lost at {self.power_cut_at_ns} ns (simulated)"
        )

    def restore_power(self) -> None:
        """Bring the device back so crash recovery can run."""
        self.tripped = False
        self.power_cut_at_ns = None

    # --- tracing --------------------------------------------------------------

    def _emit(
        self, op: str, offset: int, length: int, zone: Optional[int]
    ) -> None:
        if self._tracer is not None:
            self._tracer.emit_event("faults", op, offset, length, zone)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, rules={len(self.rules)}, "
            f"zone_faults={len(self.zone_faults)}, "
            f"power_cut_at_ns={self.power_cut_at_ns}, "
            f"injected={self.stats.total_injected})"
        )
