"""Unified I/O request pipeline shared by every simulated layer.

Every byte of device traffic in the reproduction — cache flushes,
filesystem cleaning, middle-layer GC migrations, FTL relocations, even
metadata journal writes — flows through one submission path built from
three pieces:

* :class:`IoRequest` / :class:`IoCompletion` — typed request records
  carrying the op kind, address, length, the layer that originated the
  request, and a parent id linking it to the higher-level operation that
  caused it.
* :class:`ResourcePool` — N parallel channels (dies) with a configurable
  per-channel queue depth, generalizing the old single serial
  ``ResourceTimeline``.  With ``channels=1, queue_depth=1`` it is
  bit-for-bit identical to the serial timeline, so the seed's latency
  and WAF numbers are preserved; wider configurations model the
  intra-device parallelism that ZNS characterization studies show
  dominates throughput and tail latency.
* :class:`IoTracer` — a span/record hook bus.  Layers open *spans*
  (engine → backend → ztl/f2fs/ftl) and device requests submitted inside
  a span are parented to it, so one cache ``set()`` yields a causally
  linked chain down to the NAND commands it produced.  Cross-layer WAF
  and tail-latency attribution become queries over one record stream.

:class:`IoPipeline` ties the three together per device and adds batched
submission (:meth:`IoPipeline.submit_many`): a batch is dispatched at one
virtual instant and pipelined across the pool's channels, which is how
region-sized flushes and GC copy loops become one pipelined batch instead
of a loop of synchronous calls.
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.clock import SimClock, check_service_time

if TYPE_CHECKING:  # pragma: no cover - avoids a runtime import cycle
    from repro.sim.faults import FaultInjector


class IoOp(enum.Enum):
    """Typed command kinds understood by the pipeline."""

    READ = "read"
    WRITE = "write"
    APPEND = "append"
    RESET = "reset"
    FINISH = "finish"
    OPEN = "open"
    CLOSE = "close"
    DISCARD = "discard"
    ERASE = "erase"
    GC = "gc"
    MAINTENANCE = "maintenance"
    SPAN = "span"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IoRequest:
    """One unit of device traffic.

    ``layer`` names the layer of origin (``"zns"``, ``"ftl.gc"``, …);
    ``parent_id`` links the request to the enclosing tracer span (filled
    in automatically at submission when a span is open).  ``background``
    requests occupy the pool without blocking the submitter — the model
    for GC/maintenance work the host never waits on directly.

    A hand-rolled ``__slots__`` class (not a dataclass): one request is
    built per simulated device command, so construction cost is on the
    engine's critical path.
    """

    __slots__ = (
        "op",
        "offset",
        "length",
        "zone",
        "layer",
        "parent_id",
        "background",
        "request_id",
        "fault_checked",
        "injected_latency_ns",
    )

    def __init__(
        self,
        op: IoOp,
        offset: int = 0,
        length: int = 0,
        zone: Optional[int] = None,
        layer: str = "device",
        parent_id: Optional[int] = None,
        background: bool = False,
        request_id: int = -1,
        fault_checked: bool = False,
        injected_latency_ns: int = 0,
    ) -> None:
        self.op = op
        self.offset = offset
        self.length = length
        self.zone = zone
        self.layer = layer
        self.parent_id = parent_id
        self.background = background
        self.request_id = request_id
        # Fault-injection bookkeeping: the gate runs at most once per
        # request (devices may pre-gate before mutating state), and any
        # injected latency spike is carried to dispatch here.
        self.fault_checked = fault_checked
        self.injected_latency_ns = injected_latency_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IoRequest({self.op}, offset={self.offset}, length={self.length}, "
            f"zone={self.zone}, layer={self.layer!r}, background={self.background})"
        )


class IoCompletion:
    """Outcome of a submitted request (successor of the old ``IoResult``).

    ``latency_ns`` is what the *submitter* observed: queueing plus
    service for foreground requests, 0 for background reservations.  The
    remaining timestamps describe what actually happened on the media so
    traces can attribute wait vs service per layer.  Slotted for the
    same reason as :class:`IoRequest`.
    """

    __slots__ = (
        "latency_ns",
        "data",
        "request",
        "submitted_ns",
        "started_ns",
        "completed_ns",
        "wait_ns",
        "service_ns",
        "channel",
    )

    def __init__(
        self,
        latency_ns: int,
        data: Optional[bytes] = None,
        request: Optional[IoRequest] = None,
        submitted_ns: int = 0,
        started_ns: int = 0,
        completed_ns: int = 0,
        wait_ns: int = 0,
        service_ns: int = 0,
        channel: int = 0,
    ) -> None:
        self.latency_ns = latency_ns
        self.data = data
        self.request = request
        self.submitted_ns = submitted_ns
        self.started_ns = started_ns
        self.completed_ns = completed_ns
        self.wait_ns = wait_ns
        self.service_ns = service_ns
        self.channel = channel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IoCompletion(latency_ns={self.latency_ns}, "
            f"completed_ns={self.completed_ns}, channel={self.channel})"
        )


@dataclass(frozen=True)
class PoolConfig:
    """Shape of a device's parallel command resources.

    ``channels`` models independent die groups; ``queue_depth`` is the
    number of commands one channel can have in flight (NVMe-style slot
    model).  ``stripe_bytes`` > 0 routes requests to ``(offset //
    stripe_bytes) % channels`` so addresses map to dies the way real
    flash striping does; 0 picks the earliest-free channel instead.
    """

    channels: int = 1
    queue_depth: int = 1
    stripe_bytes: int = 0

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.stripe_bytes < 0:
            raise ValueError(f"stripe_bytes must be >= 0, got {self.stripe_bytes}")

    @property
    def total_slots(self) -> int:
        return self.channels * self.queue_depth


class ResourcePool:
    """N-channel, queue-depth-aware generalization of ``ResourceTimeline``.

    Each channel owns ``queue_depth`` command slots; a request occupies
    the earliest-free slot of its channel, so overlapping demands turn
    into queueing delay only once every slot is busy.  With one channel
    and one slot the arithmetic reduces exactly to the serial timeline,
    which is what keeps the seed's golden numbers stable.
    """

    def __init__(self, name: str = "pool", config: PoolConfig = PoolConfig()) -> None:
        self.name = name
        self.config = config
        self._slots: List[List[int]] = [
            [0] * config.queue_depth for _ in range(config.channels)
        ]
        self.total_busy_ns = 0
        self.total_wait_ns = 0
        self.per_channel_busy_ns: List[int] = [0] * config.channels
        self.requests_served = 0

    @property
    def busy_until(self) -> int:
        """Virtual time at which the whole pool becomes idle."""
        return max(max(slots) for slots in self._slots)

    def wait_time(self, now_ns: int) -> int:
        """Queueing delay a request issued at ``now_ns`` would observe."""
        earliest = min(min(slots) for slots in self._slots)
        return max(0, earliest - now_ns)

    def acquire(
        self,
        now_ns: int,
        service_ns: int,
        offset: Optional[int] = None,
        charge_wait: bool = True,
    ) -> Tuple[int, int, int]:
        """Occupy a slot for ``service_ns``; returns (done, wait, channel).

        ``charge_wait=False`` is the background-reservation path: the
        pool fills up the same way but nobody is blocked issuing the
        request, so the wait is not charged to ``total_wait_ns``.
        """
        if service_ns < 0:
            check_service_time(service_ns)
        channel = 0 if self.config.channels == 1 else self._channel_for(offset)
        slots = self._slots[channel]
        slot = slots.index(min(slots))
        start = max(now_ns, slots[slot])
        wait = start - now_ns
        slots[slot] = start + service_ns
        self.total_busy_ns += service_ns
        self.per_channel_busy_ns[channel] += service_ns
        self.requests_served += 1
        if charge_wait:
            self.total_wait_ns += wait
        return start + service_ns, wait, channel

    def reserve_background(
        self, now_ns: int, service_ns: int, offset: Optional[int] = None
    ) -> Tuple[int, int, int]:
        """Schedule background work without a requester waiting on it."""
        return self.acquire(now_ns, service_ns, offset, charge_wait=False)

    def utilization(self, now_ns: int) -> float:
        """Mean fraction of channel-time spent servicing, up to ``now_ns``."""
        if now_ns <= 0:
            return 0.0
        return self.total_busy_ns / (now_ns * self.config.channels)

    def snapshot(self) -> Dict[str, float]:
        """Summary dict used by the benchmark reports."""
        return {
            "channels": self.config.channels,
            "queue_depth": self.config.queue_depth,
            "requests": self.requests_served,
            "total_busy_ns": self.total_busy_ns,
            "total_wait_ns": self.total_wait_ns,
        }

    def _channel_for(self, offset: Optional[int]) -> int:
        config = self.config
        if config.channels == 1:
            return 0
        if config.stripe_bytes > 0 and offset is not None:
            return (offset // config.stripe_bytes) % config.channels
        return min(
            range(config.channels), key=lambda c: min(self._slots[c])
        )

    def __repr__(self) -> str:
        return (
            f"ResourcePool({self.name!r}, channels={self.config.channels}, "
            f"qd={self.config.queue_depth}, busy_until={self.busy_until})"
        )


@dataclass(frozen=True)
class TraceRecord:
    """One entry on the trace stream: a span or a device request."""

    record_id: int
    parent_id: Optional[int]
    layer: str
    op: str
    offset: int
    length: int
    zone: Optional[int]
    background: bool
    submitted_ns: int
    completed_ns: int
    wait_ns: int
    service_ns: int
    channel: int

    @property
    def latency_ns(self) -> int:
        return self.completed_ns - self.submitted_ns


# Reusable no-op context for disabled tracers: span() on a disabled
# tracer must cost one attribute check, not a generator frame.
_NULL_SPAN = contextlib.nullcontext()


class IoTracer:
    """Hook bus every layer can tag and observe requests through.

    Disabled by default (zero overhead beyond one flag check); call
    :meth:`enable` to capture records, or :meth:`subscribe` to stream
    them to a callback.  Span ids and request ids share one counter, so
    parent links are unambiguous across layers and devices that share a
    tracer instance.
    """

    __slots__ = (
        "_clock",
        "records",
        "_subscribers",
        "_stack",
        "_next_id",
        "_capture",
        "enabled",
    )

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock
        self.records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._stack: List[int] = []
        self._next_id = 0
        self._capture = False
        # ``enabled`` is a plain attribute (not a property) maintained by
        # enable/disable/subscribe: every layer checks it per operation,
        # and that check must be a single attribute load so a disabled
        # tracer costs nothing on the hot path.
        self.enabled = False

    # --- lifecycle ------------------------------------------------------------

    def _refresh_enabled(self) -> None:
        self.enabled = self._capture or bool(self._subscribers)

    def enable(self) -> "IoTracer":
        """Start capturing records (returns self for chaining)."""
        self._capture = True
        self._refresh_enabled()
        return self

    def disable(self) -> None:
        self._capture = False
        self._refresh_enabled()

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Stream every record to ``callback`` (independent of capture)."""
        self._subscribers.append(callback)
        self._refresh_enabled()

    def bind_clock(self, clock: SimClock) -> None:
        """Attach the simulation clock (first binding wins)."""
        if self._clock is None:
            self._clock = clock

    def clear(self) -> None:
        self.records.clear()

    # --- spans ----------------------------------------------------------------

    @property
    def current_parent(self) -> Optional[int]:
        """Id of the innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def allocate_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def span(
        self,
        layer: str,
        op: str,
        offset: int = 0,
        length: int = 0,
        zone: Optional[int] = None,
    ):
        """Context manager marking a layer-level operation.

        Requests submitted (and spans opened) inside are parented to it.
        On a disabled tracer this returns a shared no-op context.
        """
        if not self.enabled or self._clock is None:
            return _NULL_SPAN
        return self._span(layer, op, offset, length, zone)

    @contextlib.contextmanager
    def _span(
        self, layer: str, op: str, offset: int, length: int, zone: Optional[int]
    ):
        record_id = self.allocate_id()
        parent_id = self.current_parent
        self._stack.append(record_id)
        start_ns = self._clock.now
        try:
            yield record_id
        finally:
            self._stack.pop()
            end_ns = self._clock.now
            self._emit(
                TraceRecord(
                    record_id=record_id,
                    parent_id=parent_id,
                    layer=layer,
                    op=op,
                    offset=offset,
                    length=length,
                    zone=zone,
                    background=False,
                    submitted_ns=start_ns,
                    completed_ns=end_ns,
                    wait_ns=0,
                    service_ns=end_ns - start_ns,
                    channel=-1,
                )
            )

    def on_completion(self, completion: IoCompletion) -> None:
        """Record a finished device request (called by the pipeline)."""
        request = completion.request
        assert request is not None
        self._emit(
            TraceRecord(
                record_id=request.request_id,
                parent_id=request.parent_id,
                layer=request.layer,
                op=request.op.value,
                offset=request.offset,
                length=request.length,
                zone=request.zone,
                background=request.background,
                submitted_ns=completion.submitted_ns,
                completed_ns=completion.completed_ns,
                wait_ns=completion.wait_ns,
                service_ns=completion.service_ns,
                channel=completion.channel,
            )
        )

    def emit_event(
        self,
        layer: str,
        op: str,
        offset: int = 0,
        length: int = 0,
        zone: Optional[int] = None,
    ) -> None:
        """Record an instantaneous out-of-band event (e.g. an injected
        fault or a recovery action) as a zero-duration record."""
        if not self.enabled or self._clock is None:
            return
        now = self._clock.now
        self._emit(
            TraceRecord(
                record_id=self.allocate_id(),
                parent_id=self.current_parent,
                layer=layer,
                op=op,
                offset=offset,
                length=length,
                zone=zone,
                background=False,
                submitted_ns=now,
                completed_ns=now,
                wait_ns=0,
                service_ns=0,
                channel=-1,
            )
        )

    def _emit(self, record: TraceRecord) -> None:
        if self._capture:
            self.records.append(record)
        for callback in self._subscribers:
            callback(record)

    # --- queries --------------------------------------------------------------

    def find(
        self, layer: Optional[str] = None, op: Optional[str] = None
    ) -> List[TraceRecord]:
        """Captured records filtered by layer prefix and/or op."""
        out = []
        for record in self.records:
            if layer is not None and not record.layer.startswith(layer):
                continue
            if op is not None and record.op != op:
                continue
            out.append(record)
        return out

    def record_by_id(self, record_id: int) -> Optional[TraceRecord]:
        for record in self.records:
            if record.record_id == record_id:
                return record
        return None

    def chain(self, record_id: int) -> List[TraceRecord]:
        """Ancestry of a record, root span first, the record itself last."""
        by_id = {record.record_id: record for record in self.records}
        out: List[TraceRecord] = []
        cursor = by_id.get(record_id)
        while cursor is not None:
            out.append(cursor)
            cursor = (
                by_id.get(cursor.parent_id) if cursor.parent_id is not None else None
            )
        out.reverse()
        return out

    def layer_chain(self, record_id: int) -> List[str]:
        """Layer names along the ancestry, root first (duplicates merged)."""
        layers: List[str] = []
        for record in self.chain(record_id):
            if not layers or layers[-1] != record.layer:
                layers.append(record.layer)
        return layers

    def bytes_written_by_layer(self) -> Dict[str, int]:
        """Media write bytes attributed to the layer that originated them.

        This is cross-layer WAF attribution as a query: host writes show
        up under the device layer, relocation traffic under ``*.gc``.
        """
        out: Dict[str, int] = {}
        for record in self.records:
            if record.op in ("write", "append", "gc"):
                out[record.layer] = out.get(record.layer, 0) + record.length
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"IoTracer(records={len(self.records)}, enabled={self.enabled})"


# Shared disabled tracer for components wired without one.  Never enable
# it: everything that did not get an explicit tracer reports here.
NULL_TRACER = IoTracer()


class IoPipeline:
    """Per-device submission path: clock + resource pool + tracer.

    Multiple devices in one stack may share a tracer (so request ids and
    parent links form one stream) while keeping their own pools.
    """

    def __init__(
        self,
        clock: SimClock,
        name: str = "device",
        config: PoolConfig = PoolConfig(),
        tracer: Optional[IoTracer] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.clock = clock
        self.name = name
        self.pool = ResourcePool(name, config)
        self.tracer = tracer if tracer is not None else IoTracer()
        self.tracer.bind_clock(clock)
        self.faults = faults
        if faults is not None:
            faults.bind(clock, self.tracer)

    def fault_gate(self, request: IoRequest, service_ns: int) -> None:
        """Run the fault injector against a request, at most once.

        Devices call this *before* mutating any state for the request
        (write-pointer advances, page stores) so that a raised fault
        leaves the device exactly as it was and the operation can be
        retried.  Requests not pre-gated are gated at dispatch.
        """
        if self.faults is None or request.fault_checked:
            return
        request.fault_checked = True
        request.injected_latency_ns = self.faults.inspect(
            self.name, request, service_ns
        )

    def submit(self, request: IoRequest, service_ns: int) -> IoCompletion:
        """Submit one request synchronously (or reserve, if background).

        Foreground submissions advance the shared clock to the completion
        time — the command both observes and spends any queueing delay.
        """
        completion = self._dispatch(request, service_ns, self.clock.now)
        if not request.background:
            clock = self.clock
            if completion.completed_ns > clock.now:
                clock.now = completion.completed_ns
        if self.tracer.enabled:
            self.tracer.on_completion(completion)
        return completion

    def submit_many(
        self, batch: Iterable[Tuple[IoRequest, int]]
    ) -> List[IoCompletion]:
        """Submit a batch at one virtual instant, pipelined across the pool.

        All requests are queued at the current time; the pool spreads
        them over its channels/slots, so a region-sized flush or a GC
        copy loop overlaps across dies instead of serializing.  The
        clock advances to the last *foreground* completion (the batch
        barrier); per-request latencies include intra-batch queueing.
        With a serial pool this is arithmetically identical to a loop of
        synchronous submissions.
        """
        now = self.clock.now
        completions: List[IoCompletion] = []
        barrier = now
        for request, service_ns in batch:
            completion = self._dispatch(request, service_ns, now)
            if not request.background:
                barrier = max(barrier, completion.completed_ns)
            completions.append(completion)
            if self.tracer.enabled:
                self.tracer.on_completion(completion)
        self.clock.advance_to(barrier)
        return completions

    def snapshot(self) -> Dict[str, float]:
        return {"name": self.name, **self.pool.snapshot()}

    def _dispatch(
        self, request: IoRequest, service_ns: int, now: int
    ) -> IoCompletion:
        if self.faults is not None:
            self.fault_gate(request, service_ns)
            if request.injected_latency_ns:
                service_ns += request.injected_latency_ns
        tracer = self.tracer
        if tracer.enabled:
            # Ids/parent links only matter to trace records; skipping the
            # allocation when tracing is off keeps the disabled tracer
            # truly free.  The shared counter stays monotonic, so a
            # tracer enabled mid-run still produces unambiguous ids.
            request.request_id = tracer.allocate_id()
            if request.parent_id is None:
                request.parent_id = tracer.current_parent
        if request.background:
            done, wait, channel = self.pool.reserve_background(
                now, service_ns, request.offset
            )
            observed = 0
        else:
            done, wait, channel = self.pool.acquire(now, service_ns, request.offset)
            observed = done - now
        return IoCompletion(
            latency_ns=observed,
            request=request,
            submitted_ns=now,
            started_ns=done - service_ns,
            completed_ns=done,
            wait_ns=wait,
            service_ns=service_ns,
            channel=channel,
        )

    def __repr__(self) -> str:
        return f"IoPipeline({self.name!r}, {self.pool!r})"
