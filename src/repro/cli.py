"""Command-line interface: regenerate any of the paper's results.

Examples::

    python -m repro fig2                  # Figure 2 at default scale
    python -m repro table1 --quick        # faster, smaller run
    python -m repro fig5 --csv out.csv    # also dump rows as CSV
    python -m repro all                   # every table and figure
    python -m repro profile serve --smoke # cProfile a run, top-N by cumtime
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.bench.reporting import format_table, rows_to_csv


def _fig2(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_fig2_overall

    return run_fig2_overall(num_ops=20_000 if quick else 60_000)


def _fig3(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_fig3_insertion_time

    series = run_fig3_insertion_time(num_sets=40_000 if quick else None)
    rows: List[dict] = []
    for label, points in series.items():
        for point in points:
            rows.append({"series": label, **point})
    return rows


def _fig4(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_fig4_op_sweep

    return run_fig4_op_sweep(num_ops=20_000 if quick else 60_000)


def _table1(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_table1_waf

    return run_table1_waf(num_ops=20_000 if quick else 60_000)


def _fig5(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_fig5_rocksdb

    if quick:
        return run_fig5_rocksdb(num_keys=40_000, num_reads=3_000, warmup_reads=6_000)
    return run_fig5_rocksdb()


def _table2(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_table2_cache_sizes

    if quick:
        return run_table2_cache_sizes(
            num_keys=40_000, num_reads=3_000, warmup_reads=6_000
        )
    return run_table2_cache_sizes()


def _serve(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_serving_sweep

    if quick:
        return run_serving_sweep(
            offered_kops=(40.0, 240.0), requests_per_tenant=1_500
        )
    return run_serving_sweep()


def _gc_sweep(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_gc_ablation

    if quick:
        return run_gc_ablation(
            policies=("greedy", "cost_benefit"),
            paces=(8,),
            requests_per_tenant=6_000,
        )
    return run_gc_ablation()


def _gc_qos(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_gc_qos_sweep

    if quick:
        return run_gc_qos_sweep(
            offered_kops=(12.0,), requests_per_tenant=4_000
        )
    return run_gc_qos_sweep()


def _zone_cost(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_zone_cost_ablation

    if quick:
        return run_zone_cost_ablation(requests_per_tenant=4_000)
    return run_zone_cost_ablation()


def _failover(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_failover_sweep

    if quick:
        return run_failover_sweep(requests_per_tenant=3_000)
    return run_failover_sweep()


def _invalidate(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_invalidation_sweep

    if quick:
        return run_invalidation_sweep(num_shards=2, requests_per_tenant=6_000)
    return run_invalidation_sweep()


def _hint_sweep(quick: bool) -> List[dict]:
    from repro.bench.experiments import run_hint_sweep

    if quick:
        return run_hint_sweep(num_shards=2, requests_per_tenant=6_000)
    return run_hint_sweep()


EXPERIMENTS: Dict[str, Callable[[bool], List[dict]]] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "table1": _table1,
    "fig5": _fig5,
    "table2": _table2,
    "serve": _serve,
    "gc-sweep": _gc_sweep,
    "gc-qos": _gc_qos,
    "zone-cost": _zone_cost,
    "failover": _failover,
    "invalidate": _invalidate,
    "hint-sweep": _hint_sweep,
}

TITLES = {
    "fig2": "Figure 2: four schemes — throughput and hit ratio",
    "fig3": "Figure 3: region buffer fill times (large vs small regions)",
    "fig4": "Figure 4: OP-ratio sweep",
    "table1": "Table 1: WA factor vs OP ratio",
    "fig5": "Figure 5: RocksDB with each scheme as secondary cache",
    "table2": "Table 2: Zone-Cache cache-size sweep",
    "serve": "Serving sweep: offered load vs p99 and shed rate per scheme",
    "gc-sweep": "GC ablation: victim policy x watermark x pacing per scheme",
    "gc-qos": "GC-QoS co-scheduling: adaptive pacing x GC-aware routing",
    "zone-cost": "Zone-cost ablation: {zero, measured} costs x {Region, Z}-Cache",
    "failover": "Failover sweep: kill a shard mid-diurnal load, R=1 vs R=2",
    "invalidate": "Invalidation storm: bump tenant namespaces mid-run, per scheme",
    "hint-sweep": "Hint ablation: cache->GC hints {off, ztl, full} per scheme",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Can ZNS SSDs be Better Storage "
            "Devices for Persistent Cache?' (HotStorage '24)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper result to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller/faster run (coarser numbers)"
    )
    parser.add_argument(
        "--csv", metavar="PATH", help="also write result rows to a CSV file"
    )
    parser.add_argument(
        "--max-rows", type=int, default=40,
        help="max rows to print per experiment (fig3 emits thousands)",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render an ASCII chart of each result's shape",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "with 'serve': tiny mixed-fleet run (2 shards, 2 tenants, "
            "~2k requests) used as the CI smoke test; with 'gc-sweep': "
            "two policies with tracing on, verifying reclaim spans; with "
            "'gc-qos': one scheme, all four pacing x routing combos; with "
            "'zone-cost': both schemes x both cost presets, short stream; "
            "with 'failover': one scheme, four shards, R in {1,2}, one kill; "
            "with 'invalidate': all five schemes, two shards, ~4k requests; "
            "with 'hint-sweep': the full hint ablation grid on two shards"
        ),
    )
    return parser


def _plot_for(name: str, rows: List[dict]) -> str:
    from repro.bench.plots import line_plot, scheme_bars

    if name in ("fig2", "fig4"):
        return scheme_bars(
            rows, "throughput_mops_per_min", title="throughput (Mops/min)"
        )
    if name == "fig5":
        return scheme_bars(rows, "kops_per_sec", title="throughput (kops/s)")
    if name == "table2":
        return scheme_bars(
            rows, "hit_ratio_pct", label_key="cache_zones", title="hit ratio (%)"
        )
    if name == "table1":
        return scheme_bars(rows, "waf", title="WA factor")
    if name == "fig3":
        large = [r["fill_time_us"] for r in rows if r["series"] == "large_region"]
        return line_plot(large, title="large-region fill time (us) per sequence")
    if name == "serve":
        web = [
            {**r, "load": f"{r['scheme']}@{r['offered_total_kops']:g}k"}
            for r in rows
            if r.get("tenant") == "web" and "offered_total_kops" in r
        ]
        if not web:
            return ""
        return scheme_bars(
            web, "p99_us", label_key="load", title="web tenant p99 (us)"
        )
    if name == "gc-qos":
        labeled = [
            {**r, "combo": f"{r['scheme'][:6]}/{r['pacing'][:4]}+{r['routing']}"}
            for r in rows
        ]
        return scheme_bars(
            labeled, "web_p99_us", label_key="combo", title="web tenant p99 (us)"
        )
    if name == "zone-cost":
        labeled = [
            {**r, "combo": f"{r['scheme'][:6]}/{r['cost_preset']}"}
            for r in rows
        ]
        return scheme_bars(
            labeled, "web_p99_us", label_key="combo", title="web tenant p99 (us)"
        )
    if name == "failover":
        labeled = [
            {**r, "combo": f"{r['scheme'][:6]}/R{r['replicas']}"} for r in rows
        ]
        return scheme_bars(
            labeled,
            "fleet_availability",
            label_key="combo",
            title="availability under shard loss",
        )
    if name == "invalidate":
        return scheme_bars(
            rows, "gc_copied_bytes", title="post-storm GC copied bytes"
        )
    if name == "hint-sweep":
        labeled = [{**r, "combo": f"{r['scheme']}/{r['hints']}"} for r in rows]
        return scheme_bars(
            labeled,
            "gc_copied_bytes",
            label_key="combo",
            title="GC copied bytes by hint coverage",
        )
    if name == "gc-sweep":
        labeled = [
            {**r, "combo": f"{r['scheme']}/{r['gc_policy']}@w{r['watermark_scale']}"}
            for r in rows
        ]
        return scheme_bars(
            labeled, "gc_copied_bytes", label_key="combo", title="GC copied bytes"
        )
    return ""


def _rows_for(name: str, smoke: bool, quick: bool) -> List[dict]:
    """One experiment run, honoring the smoke variants where they exist."""
    if name == "serve" and smoke:
        from repro.bench.experiments import run_serving_smoke

        return run_serving_smoke()
    if name == "gc-sweep" and smoke:
        from repro.bench.experiments import run_gc_smoke

        return run_gc_smoke()
    if name == "gc-qos" and smoke:
        from repro.bench.experiments import run_gc_qos_smoke

        return run_gc_qos_smoke()
    if name == "zone-cost" and smoke:
        from repro.bench.experiments import run_zone_cost_smoke

        return run_zone_cost_smoke()
    if name == "failover" and smoke:
        from repro.bench.experiments import run_failover_smoke

        return run_failover_smoke()
    if name == "invalidate" and smoke:
        from repro.bench.experiments import run_invalidation_smoke

        return run_invalidation_smoke()
    if name == "hint-sweep" and smoke:
        from repro.bench.experiments import run_hint_smoke

        return run_hint_smoke()
    return EXPERIMENTS[name](quick)


def _run_profile(argv: List[str]) -> int:
    """``repro profile <experiment> [--smoke]``: cProfile one run.

    Perf work should start from data, not guesses — this prints the
    top-N functions by cumulative time for exactly the code path the
    named experiment runs.
    """
    import cProfile
    import pstats

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run one experiment under cProfile and print hot functions.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="which experiment to profile",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="profile the smoke variant (serve / gc-sweep / gc-qos)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller/faster run"
    )
    parser.add_argument(
        "--top", type=int, default=25,
        help="how many functions to print (default 25)",
    )
    parser.add_argument(
        "--sort", choices=("cumulative", "tottime"), default="cumulative",
        help="stat ordering (default cumulative)",
    )
    args = parser.parse_args(argv)
    profiler = cProfile.Profile()
    started = time.time()
    profiler.enable()
    rows = _rows_for(args.experiment, args.smoke, args.quick)
    profiler.disable()
    elapsed = time.time() - started
    print(
        f"profiled {args.experiment}"
        f"{' --smoke' if args.smoke else ''}: "
        f"{len(rows)} result rows in {elapsed:.2f}s wall clock\n"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    return 0


def run(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "profile":
        return _run_profile(argv[1:])
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    all_rows: List[dict] = []
    for name in names:
        started = time.time()
        print(f"running {name} ...", flush=True)
        rows = _rows_for(name, args.smoke, args.quick)
        elapsed = time.time() - started
        shown = rows[: args.max_rows]
        print(format_table(shown, title=TITLES[name]))
        if len(rows) > len(shown):
            print(f"... ({len(rows) - len(shown)} more rows)")
        if args.plot:
            chart = _plot_for(name, rows)
            if chart:
                print()
                print(chart)
        print(f"({elapsed:.1f}s wall clock)\n")
        for row in rows:
            all_rows.append({"experiment": name, **row})
    if args.csv:
        columns = sorted({key for row in all_rows for key in row})
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(all_rows, columns=columns) + "\n")
        print(f"wrote {len(all_rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(run())
