"""Exception hierarchy shared by every subsystem in the reproduction.

Each substrate raises the most specific subclass it can so that tests and
callers can distinguish, e.g., an out-of-bounds I/O from a zone state
violation without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --- device layer -----------------------------------------------------------


class DeviceError(ReproError):
    """Base class for storage-device errors."""


class OutOfRangeError(DeviceError):
    """An I/O touched an LBA or offset outside the device capacity."""


class AlignmentError(DeviceError):
    """An I/O offset or length violated the device's alignment rules."""


class ZoneStateError(DeviceError):
    """A zone operation is invalid for the zone's current state."""


class WritePointerError(ZoneStateError):
    """A zone write did not land exactly on the zone's write pointer."""


class ZoneResourceError(DeviceError):
    """Opening a zone would exceed max-open or max-active zone limits."""


class DeviceFullError(DeviceError):
    """The device (or FTL free-space pool) has no room for the write."""


# --- filesystem layer --------------------------------------------------------


class FilesystemError(ReproError):
    """Base class for F2FS-like filesystem errors."""


class NoSpaceError(FilesystemError):
    """The filesystem ran out of free segments (ENOSPC)."""


class FileNotFoundInFsError(FilesystemError):
    """Named file does not exist in the filesystem."""


class FileExistsInFsError(FilesystemError):
    """Attempt to create a file whose name is already taken."""


# --- zone translation layer ---------------------------------------------------


class TranslationError(ReproError):
    """Base class for the region↔zone middle layer errors."""


class RegionNotMappedError(TranslationError):
    """Read of a region id that has no current mapping."""


class TranslationFullError(TranslationError):
    """No free or GC-reclaimable zone space for a new region."""


# --- cache layer --------------------------------------------------------------


class CacheError(ReproError):
    """Base class for cache-engine errors."""


class CacheConfigError(CacheError):
    """Invalid cache configuration (sizes, ratios, backend mismatch)."""


class ObjectTooLargeError(CacheError):
    """A value cannot fit in a single region/zone and was rejected."""


# --- LSM layer ---------------------------------------------------------------


class LsmError(ReproError):
    """Base class for LSM key-value store errors."""


class DbClosedError(LsmError):
    """Operation on a closed database."""
