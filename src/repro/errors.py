"""Exception hierarchy shared by every subsystem in the reproduction.

Each substrate raises the most specific subclass it can so that tests and
callers can distinguish, e.g., an out-of-bounds I/O from a zone state
violation without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration of any subsystem.

    Subclasses :class:`ValueError` so long-standing callers (and tests)
    that guard configuration mistakes with ``except ValueError`` keep
    working while new code can catch the typed error precisely.
    """


class RetryableError(ReproError):
    """Mixin marking transient failures.

    A handler that sees a ``RetryableError`` may retry the operation
    after a backoff; the underlying resource is expected to heal.  The
    class carries no state of its own — concrete errors subclass both
    this and their layer's base so ``except RetryableError`` composes
    with the existing hierarchy.
    """


# --- device layer -----------------------------------------------------------


class DeviceError(ReproError):
    """Base class for storage-device errors."""


class FatalDeviceError(DeviceError):
    """Permanent device failure: the media under the I/O is gone.

    Retrying cannot succeed; callers must degrade gracefully instead
    (quarantine the region, re-route the flush, count a miss).
    """


class OutOfRangeError(DeviceError):
    """An I/O touched an LBA or offset outside the device capacity."""


class AlignmentError(DeviceError):
    """An I/O offset or length violated the device's alignment rules."""


class ZoneStateError(DeviceError):
    """A zone operation is invalid for the zone's current state."""


class WritePointerError(ZoneStateError):
    """A zone write did not land exactly on the zone's write pointer."""


class ZoneDeadError(ZoneStateError, FatalDeviceError):
    """The zone transitioned to READ-ONLY or OFFLINE and cannot serve
    the request.  Subclasses :class:`ZoneStateError` so existing state
    checks keep working, and :class:`FatalDeviceError` because a dead
    zone never comes back."""

    def __init__(self, message: str, zone_index: "int | None" = None) -> None:
        super().__init__(message)
        self.zone_index = zone_index


class ZoneResourceError(DeviceError, RetryableError):
    """Opening a zone would exceed max-open or max-active zone limits.

    Retryable: closing or finishing another zone frees the budget."""


class TransientMediaError(DeviceError, RetryableError):
    """A command failed on the media but the location is still good
    (ECC hiccup, temporary die busy) — retry after a backoff."""


class AppendFailedError(DeviceError, RetryableError):
    """A zone-append command failed before assigning an offset; the
    zone's write pointer is unchanged, so the append can be reissued."""


class PowerCutError(DeviceError):
    """Simulated power loss: every I/O fails until power is restored.

    Deliberately neither retryable nor a :class:`FatalDeviceError` —
    no recovery action applies mid-cut; the error must propagate to
    the harness, which restores power and runs crash recovery."""


class DeviceFullError(DeviceError):
    """The device (or FTL free-space pool) has no room for the write."""


# --- filesystem layer --------------------------------------------------------


class FilesystemError(ReproError):
    """Base class for F2FS-like filesystem errors."""


class NoSpaceError(FilesystemError):
    """The filesystem ran out of free segments (ENOSPC)."""


class FileNotFoundInFsError(FilesystemError):
    """Named file does not exist in the filesystem."""


class FileExistsInFsError(FilesystemError):
    """Attempt to create a file whose name is already taken."""


# --- zone translation layer ---------------------------------------------------


class TranslationError(ReproError):
    """Base class for the region↔zone middle layer errors."""


class RegionNotMappedError(TranslationError):
    """Read of a region id that has no current mapping."""


class TranslationFullError(TranslationError):
    """No free or GC-reclaimable zone space for a new region."""


# --- cache layer --------------------------------------------------------------


class CacheError(ReproError):
    """Base class for cache-engine errors."""


class CacheConfigError(CacheError, ConfigError):
    """Invalid cache configuration (sizes, ratios, backend mismatch)."""


class ObjectTooLargeError(CacheError):
    """A value cannot fit in a single region/zone and was rejected."""


class EntryCorruptError(CacheError):
    """An on-flash entry failed its checksum (torn or stale bytes)."""


# --- LSM layer ---------------------------------------------------------------


class LsmError(ReproError):
    """Base class for LSM key-value store errors."""


class DbClosedError(LsmError):
    """Operation on a closed database."""
