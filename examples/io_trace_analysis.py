#!/usr/bin/env python3
"""Trace the device-level access pattern each scheme produces.

The paper's motivation (§2.3) is that caching workloads turn into
"small, intensive, random updates" at the device — unless the cache's
region design re-shapes them.  This example traces the conventional
SSD under Block-Cache and shows how log-structured region writes look
at the device: large, mostly-sequential bursts, exactly the pattern
that keeps WA low.

Run:  python examples/io_trace_analysis.py
"""

from repro.bench.schemes import SchemeScale, build_block_cache
from repro.flash import IoEvent, IoTrace
from repro.sim import SimClock
from repro.units import KIB


def main() -> None:
    scale = SchemeScale(
        zone_size=512 * KIB, region_size=32 * KIB, pages_per_block=32,
        ram_bytes=64 * KIB,
    )
    stack = build_block_cache(
        SimClock(), scale, media_bytes=32 * scale.zone_size,
        cache_bytes=24 * scale.zone_size,
    )
    cache = stack.cache
    device = stack.substrate["device"]

    # Attach a trace by monkey-free composition: record around the store.
    trace = IoTrace()
    store = stack.substrate["store"]
    original_write = store.write_region
    original_read = store.read

    def traced_write(region_id, payload):
        latency = original_write(region_id, payload)
        trace.record(IoEvent(0, "write", region_id * store.region_size,
                             len(payload), latency))
        return latency

    def traced_read(region_id, offset, length):
        data = original_read(region_id, offset, length)
        trace.record(IoEvent(0, "read", region_id * store.region_size + offset,
                             length, 0))
        return data

    store.write_region = traced_write
    store.read = traced_read

    # Drive a cache-like workload: small objects, heavy churn.
    for i in range(40_000):
        cache.set(f"obj:{i % 18000:08d}".encode(), b"d" * 1024)
    for i in range(0, 18000, 5):
        cache.get(f"obj:{i:08d}".encode())

    by_op = trace.bytes_by_op()
    writes = trace.by_op("write")
    reads = trace.by_op("read")
    print("What the device actually sees under a log-structured cache:\n")
    print(f"  object writes issued by the app : 40000 × 1 KiB (random keys)")
    print(f"  device write commands           : {len(writes)}")
    print(f"  device write size               : {writes[0].length // 1024} KiB each"
          if writes else "")
    print(f"  bytes written / read            : {by_op.get('write', 0):,} / "
          f"{by_op.get('read', 0):,}")
    print(f"  write sequentiality             : "
          f"{trace.sequential_fraction('write'):.1%} of writes contiguous")
    print(f"  device-level WAF                : "
          f"{device.stats.write_amplification:.3f}")
    print()
    print("40k random 1-KiB object writes became a few thousand large region")
    print("writes — the region indirection is what makes flash caching viable,")
    print("and matching regions to zones (the paper's Zone/Region-Cache) is")
    print("what removes the remaining device-level WA entirely.")


if __name__ == "__main__":
    main()
