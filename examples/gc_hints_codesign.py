#!/usr/bin/env python3
"""Cache/zone-GC co-design via migration hints (§3.4).

The paper's closing argument: "during the zone GC, not all the valid
regions are needed to be migrated.  By using the cache or upper
application information or hints, the GC overhead can be effectively
minimized without explicitly sacrificing the cache hit ratio."

This example wires exactly that: the middle layer's collector asks the
cache whether a region is worth keeping; cold regions are *dropped*
instead of migrated.  Compare WAF and hit ratio with and without hints.

Run:  python examples/gc_hints_codesign.py
"""

from repro.bench.schemes import SchemeScale, build_region_cache
from repro.sim import SimClock
from repro.workloads import CacheBenchConfig, CacheBenchDriver
from repro.ztl.gc import GcConfig


def run(use_hints: bool):
    clock = SimClock()
    scale = SchemeScale()
    media = 25 * scale.zone_size
    cache_bytes = 21 * scale.zone_size  # high utilization → GC pressure

    stack = build_region_cache(
        clock, scale, media, cache_bytes,
        gc=GcConfig(min_empty_zones=2, victim_valid_threshold=0.35),
    )
    cache = stack.cache
    layer = stack.substrate["layer"]

    if use_hints:
        # Co-design hook: drop regions the cache no longer indexes many
        # items for; the cache purges its index entries on drop.
        def migration_hint(region_id: int) -> bool:
            # Co-design: regions already near cache eviction are not
            # worth migrating — they will be reclaimed moments later.
            position = cache.regions.eviction_position(region_id)
            return position is not None and position > 0.35

        def on_drop(region_id: int) -> None:
            meta = cache.regions.meta(region_id)
            if meta is not None:
                for key in list(meta.keys):
                    cache.index.remove(key)
                    meta.note_removed(key)

        layer.gc.migration_hint = migration_hint
        layer.gc.on_drop = on_drop

    driver = CacheBenchDriver(
        CacheBenchConfig(
            num_ops=25_000, num_keys=45_000, zipf_theta=1.0,
            warmup_ops=50_000, set_on_miss=True,
        )
    )
    from repro.bench.experiments import _populate

    _populate(driver, stack)
    result = driver.run(cache)
    label = "hint-based GC " if use_hints else "migrate-all GC"
    print(
        f"{label}: WAF(app) {result.waf_app:.3f}   hit {result.hit_ratio:.4f}   "
        f"{result.ops_per_minute_m:.3f} Mops/min   "
        f"migrated {layer.gc.regions_migrated}   dropped {layer.gc.regions_dropped}"
    )


def main() -> None:
    print("Region-Cache at high utilization, with and without GC hints:\n")
    run(use_hints=False)
    run(use_hints=True)
    print()
    print("Hints trade a little hit ratio for less migration (lower WAF) —")
    print("the co-design the paper proposes as future work.")


if __name__ == "__main__":
    main()
