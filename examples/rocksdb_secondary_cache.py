#!/usr/bin/env python3
"""Use a ZNS flash cache as an LSM store's secondary cache (§4.2).

Loads a key-value store on a (simulated) HDD, then reads a skewed
workload twice: once with only the small DRAM block cache, once with a
Region-Cache flash tier behind it — showing why a persistent cache in
front of an HDD-backed RocksDB is worth an entire paper.

Run:  python examples/rocksdb_secondary_cache.py
"""

from repro.flash import HddConfig, HddDevice
from repro.lsm import CacheLibSecondaryCache, Db, DbConfig
from repro.bench.schemes import build_region_cache
from repro.sim import SimClock
from repro.units import GIB, KIB
from repro.workloads.dbbench import FIG5_SCALE
from repro.workloads.distributions import ExpRangeSampler

NUM_KEYS = 60_000
NUM_READS = 4_000


def build_db(with_secondary: bool):
    clock = SimClock()
    secondary = None
    stack = None
    if with_secondary:
        stack = build_region_cache(
            clock,
            FIG5_SCALE,
            media_bytes=8 * FIG5_SCALE.zone_size,
            cache_bytes=4 * FIG5_SCALE.zone_size,
        )
        secondary = CacheLibSecondaryCache(stack.cache)
    hdd = HddDevice(clock, HddConfig(capacity_bytes=1 * GIB))
    db = Db(
        clock,
        hdd,
        DbConfig(block_cache_bytes=128 * KIB),
        secondary_cache=secondary,
    )
    return db, clock, stack


def run(with_secondary: bool):
    db, clock, stack = build_db(with_secondary)
    for i in range(NUM_KEYS):
        db.put(f"user{i:012d}".encode(), f"value-{i}".encode().ljust(64, b"."))
    db.flush_memtable()
    sampler = ExpRangeSampler(NUM_KEYS, exp_range=25.0, seed=11)
    # Warm, then measure.
    for _ in range(NUM_READS):
        db.get(f"user{sampler.sample():012d}".encode())
    from repro.lsm.db import DbStats

    db.stats = DbStats()
    start = clock.now
    for _ in range(NUM_READS):
        db.get(f"user{sampler.sample():012d}".encode())
    elapsed = (clock.now - start) / 1e9
    label = "with flash secondary cache" if with_secondary else "DRAM block cache only  "
    print(
        f"{label}: {NUM_READS / elapsed:8.0f} reads/s   "
        f"p50 {db.stats.get_latency.p50() / 1e3:8.1f} us   "
        f"p99 {db.stats.get_latency.p99() / 1e6:6.2f} ms"
        + (
            f"   flash hit ratio {stack.cache.stats.hit_ratio:.3f}"
            if stack is not None
            else ""
        )
    )


def main() -> None:
    print(f"LSM store: {NUM_KEYS} keys on HDD; readrandom ER=25, {NUM_READS} reads\n")
    run(with_secondary=False)
    run(with_secondary=True)


if __name__ == "__main__":
    main()
