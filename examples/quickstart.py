#!/usr/bin/env python3
"""Quickstart: a ZNS-backed persistent cache in ~30 lines.

Builds the paper's Region-Cache scheme — a CacheLib-style hybrid cache
whose flash tier talks to a simulated ZNS SSD through the zone
translation middle layer — and exercises the public API.

Run:  python examples/quickstart.py
"""

from repro.bench.schemes import SchemeScale, build_region_cache
from repro.sim import SimClock
from repro.units import MIB, format_size


def main() -> None:
    clock = SimClock()
    scale = SchemeScale()  # 4 MiB zones, 64 KiB regions (scaled WD ZN540)
    stack = build_region_cache(
        clock,
        scale,
        media_bytes=25 * scale.zone_size,   # 25-zone device, like §4.1
        cache_bytes=20 * scale.zone_size,   # 20 zones of cache, 20% OP
    )
    cache = stack.cache

    # --- basic operations ---------------------------------------------------
    cache.set(b"user:1001", b"alice")
    cache.set(b"user:1002", b"bob")
    print("get user:1001 ->", cache.get(b"user:1001"))
    print("get user:9999 ->", cache.get(b"user:9999"))
    cache.delete(b"user:1002")
    print("after delete   ->", cache.get(b"user:1002"))

    # --- put it under some load (past capacity, so regions evict) ------------
    total = 100_000
    for i in range(total):
        cache.set(f"object:{i:08d}".encode(), b"x" * 1024)
    hits = sum(
        cache.get(f"object:{i:08d}".encode()) is not None for i in range(total)
    )

    waf = cache.waf()
    print()
    print(f"cache size        : {format_size(cache.config.flash_bytes)}")
    print(f"objects readable  : {hits} / {total} (older ones were region-evicted)")
    print(f"regions evicted   : {cache.regions.regions_evicted}")
    print(f"app-level WAF     : {waf.app:.3f}   (middle-layer GC)")
    print(f"device-level WAF  : {waf.device:.3f} (ZNS: always 1.0)")
    print(f"simulated time    : {clock.now_seconds:.2f} s")
    print(f"p99 set latency   : {cache.stats.set_latency.p99() / 1000:.0f} us")


if __name__ == "__main__":
    main()
