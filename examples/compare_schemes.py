#!/usr/bin/env python3
"""Compare the paper's four schemes under a CacheBench-style mix.

A miniature of Figure 2: same hardware budget for everyone, the
50/30/20 get/set/delete mix, and a report of throughput, hit ratio and
write amplification per scheme.

Run:  python examples/compare_schemes.py
"""

from repro.bench.experiments import _populate
from repro.bench.reporting import format_table
from repro.bench.schemes import (
    SchemeScale,
    build_block_cache,
    build_file_cache,
    build_region_cache,
    build_zone_cache,
)
from repro.sim import SimClock
from repro.workloads import CacheBenchConfig, CacheBenchDriver


def main() -> None:
    scale = SchemeScale()
    zones = 25
    media = zones * scale.zone_size
    cache_bytes = 20 * scale.zone_size
    # Working set slightly above the cache so eviction pressure is real
    # (with everything fitting, no scheme has anything to prove).
    workload = CacheBenchConfig(
        num_ops=20_000,
        num_keys=68_000,
        zipf_theta=1.0,
        warmup_ops=70_000,
        set_on_miss=True,
    )

    builders = {
        "Region-Cache": lambda c: build_region_cache(c, scale, media, cache_bytes),
        "Zone-Cache": lambda c: build_zone_cache(c, scale, media),
        "File-Cache": lambda c: build_file_cache(c, scale, 38 * scale.zone_size, cache_bytes),
        "Block-Cache": lambda c: build_block_cache(c, scale, media, cache_bytes),
    }

    rows = []
    for name, builder in builders.items():
        print(f"running {name} ...")
        stack = builder(SimClock())
        driver = CacheBenchDriver(workload)
        _populate(driver, stack)
        result = driver.run(stack.cache)
        rows.append(
            {
                "scheme": name,
                "Mops/min": round(result.ops_per_minute_m, 3),
                "hit_ratio": round(result.hit_ratio, 4),
                "WAF(app)": round(result.waf_app, 3),
                "WAF(dev)": round(result.waf_device, 3),
                "get_p99_us": round(result.get_p99_ns / 1000, 1),
            }
        )
    print()
    print(format_table(rows, title="CacheBench bc-mix, four schemes (mini Figure 2)"))
    print()
    print("Expected shape (paper §4.1): Zone-Cache has the best hit ratio")
    print("(largest cache, zero OP); Region-Cache and Block-Cache lead on")
    print("throughput; File-Cache trails on both.")


if __name__ == "__main__":
    main()
