"""Ablation — Zone-Cache on small-zone ZNS SSDs (§3.2).

The paper: "If the ZNS SSD is produced with a small zone size (e.g., 16
or 64 MiB), Zone-Cache might be a good design to avoid the overhead of
large region size."  Same cache capacity, two zone sizes: the small-zone
device avoids the whole-zone eviction/contention penalty.
"""

from conftest import run_once

from repro.bench.experiments import _populate
from repro.bench.reporting import format_table
from repro.bench.schemes import SchemeScale, build_zone_cache
from repro.sim import SimClock
from repro.units import KIB, MIB
from repro.workloads import CacheBenchConfig, CacheBenchDriver


def compare_zone_sizes():
    cache_bytes = 96 * MIB
    rows = []
    for label, zone_size in (("large (4 MiB)", 4 * MIB), ("small (512 KiB)", 512 * KIB)):
        # Same NAND (256 KiB erase blocks) for both devices; only the
        # zone size differs — the paper's small-zone ZNS SSD scenario.
        scale = SchemeScale(zone_size=zone_size, pages_per_block=64)
        stack = build_zone_cache(SimClock(), scale, cache_bytes)
        driver = CacheBenchDriver(
            CacheBenchConfig(
                num_ops=20_000,
                num_keys=int(1.05 * cache_bytes / 1568),
                zipf_theta=1.0,
                warmup_ops=int(1.2 * 1.05 * cache_bytes / 1568),
                set_on_miss=True,
            )
        )
        _populate(driver, stack)
        result = driver.run(stack.cache)
        rows.append(
            {
                "zone_size": label,
                "throughput_mops_per_min": result.ops_per_minute_m,
                "hit_ratio": result.hit_ratio,
                # Mean set latency exposes the amortized flush + eviction
                # teardown cost of zone-sized regions (their rare huge
                # stalls sit beyond P99 at this op count).
                "set_mean_us": stack.cache.stats.set_latency.mean() / 1000,
                "set_max_ms": stack.cache.stats.set_latency.max() / 1e6,
                "waf_total": result.waf_total,
            }
        )
    return rows


def test_small_zone_ablation(benchmark):
    rows = run_once(benchmark, compare_zone_sizes)
    print()
    print(format_table(rows, title="Ablation: Zone-Cache zone size"))
    large, small = rows
    # Small zones: better throughput (no huge-region contention), far
    # lower worst-case set stall; WA stays 1 either way.
    assert small["throughput_mops_per_min"] > large["throughput_mops_per_min"]
    assert small["set_max_ms"] < large["set_max_ms"]
    assert small["waf_total"] == 1.0 and large["waf_total"] == 1.0
    benchmark.extra_info["rows"] = rows
