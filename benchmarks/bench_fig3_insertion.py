"""Figure 3 — time to fill the region in-memory buffer.

Paper result (§3.2): with a large (zone-sized) region, per-region
insertion time jumps sharply once region eviction begins (the shared-
index lock contention); with a small region the series stays flat.
"""

from conftest import run_once

from repro.bench.experiments import run_fig3_insertion_time


def _mean(values):
    return sum(values) / len(values) if values else 0.0


def test_fig3_insertion_time(benchmark):
    series = run_once(benchmark, run_fig3_insertion_time)
    large = series["large_region"]
    small = series["small_region"]

    print()
    print(f"large regions: {len(large)} sealed; first/last fill times (us):")
    print("  head:", [round(p['fill_time_us'], 1) for p in large[:5]])
    print("  tail:", [round(p['fill_time_us'], 1) for p in large[-5:]])
    print(f"small regions: {len(small)} sealed")

    # The large-region series must show the eviction jump: fill times
    # after evictions begin exceed the pre-eviction fill times severalfold.
    num_regions_large = 25  # eviction begins once the region pool is used
    pre = [p["fill_time_us"] for p in large[: num_regions_large - 1]]
    post = [p["fill_time_us"] for p in large[num_regions_large + 1 :]]
    assert post, "workload did not reach eviction for large regions"
    assert _mean(post) > 2.5 * _mean(pre), (
        f"no eviction jump: pre={_mean(pre):.0f}us post={_mean(post):.0f}us"
    )

    # Small regions: same comparison shows no comparable jump.
    small_times = [p["fill_time_us"] for p in small]
    boundary = len(small_times) // 3
    small_pre = _mean(small_times[:boundary])
    small_post = _mean(small_times[boundary * 2 :])
    assert small_post < 2.5 * max(small_pre, 1e-9)

    benchmark.extra_info["large_mean_pre_us"] = _mean(pre)
    benchmark.extra_info["large_mean_post_us"] = _mean(post)
    benchmark.extra_info["small_mean_us"] = _mean(small_times)
