"""Ablation — cache/zone-GC co-design via migration hints (§3.4).

The paper: "By using the cache or upper application information or
hints, the GC overhead can be effectively minimized without explicitly
sacrificing the cache hit ratio."  With hints the collector drops
regions the cache barely indexes instead of migrating them.
"""

from conftest import run_once

from repro.bench.experiments import _populate
from repro.bench.reporting import format_table
from repro.bench.schemes import SchemeScale, build_region_cache
from repro.sim import SimClock
from repro.workloads import CacheBenchConfig, CacheBenchDriver
from repro.ztl.gc import GcConfig


def run_one(use_hints: bool):
    scale = SchemeScale()
    media = 25 * scale.zone_size
    cache_bytes = 21 * scale.zone_size
    stack = build_region_cache(
        SimClock(), scale, media, cache_bytes,
        gc=GcConfig(min_empty_zones=2, victim_valid_threshold=0.35),
    )
    cache = stack.cache
    layer = stack.substrate["layer"]
    if use_hints:
        def migration_hint(region_id: int) -> bool:
            # Co-design: regions already near cache eviction are not
            # worth migrating — they will be reclaimed moments later.
            position = cache.regions.eviction_position(region_id)
            return position is not None and position > 0.35

        def on_drop(region_id: int) -> None:
            meta = cache.regions.meta(region_id)
            if meta is not None:
                for key in list(meta.keys):
                    cache.index.remove(key)
                    meta.note_removed(key)

        layer.gc.migration_hint = migration_hint
        layer.gc.on_drop = on_drop
    driver = CacheBenchDriver(
        CacheBenchConfig(
            num_ops=20_000, num_keys=45_000, zipf_theta=1.0,
            warmup_ops=45_000, set_on_miss=True,
        )
    )
    _populate(driver, stack)
    result = driver.run(cache)
    return {
        "gc_mode": "hints (drop cold)" if use_hints else "migrate all",
        "waf_app": result.waf_app,
        "hit_ratio": result.hit_ratio,
        "throughput_mops_per_min": result.ops_per_minute_m,
        "migrated": layer.gc.regions_migrated,
        "dropped": layer.gc.regions_dropped,
    }


def sweep():
    return [run_one(False), run_one(True)]


def test_gc_hints_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, title="Ablation: GC with cache hints (§3.4 co-design)"))
    migrate_all, hints = rows
    # Hints reduce migration work (lower app WAF)...
    assert hints["waf_app"] <= migrate_all["waf_app"]
    # ...without collapsing the hit ratio (within a few points).
    assert hints["hit_ratio"] > migrate_all["hit_ratio"] - 0.05
    benchmark.extra_info["rows"] = rows
