"""Figure 4 — throughput and hit ratio under different OP ratios.

Paper result (§4.1): for Region-Cache and File-Cache "a larger OP ratio
will lead to higher throughput and lower hit ratio"; Zone-Cache (no OP)
holds the hit-ratio crown with mid-pack throughput.
"""

from conftest import run_once

from repro.bench.experiments import run_fig4_op_sweep
from repro.bench.reporting import format_table


def _series(rows, scheme):
    picked = [r for r in rows if r["scheme"] == scheme and r["op_ratio"] > 0]
    return sorted(picked, key=lambda r: r["op_ratio"])


def test_fig4_op_sweep(benchmark):
    rows = run_once(benchmark, run_fig4_op_sweep, num_ops=40_000)
    print()
    print(format_table(rows, title="Figure 4: OP-ratio sweep (Zone-Cache = no OP)"))

    for scheme in ("Region-Cache", "File-Cache"):
        series = _series(rows, scheme)
        assert len(series) == 3
        # Higher OP → lower hit ratio (smaller cache).
        assert series[0]["hit_ratio"] >= series[-1]["hit_ratio"], scheme
        # Higher OP → lower WAF (more GC headroom).
        assert series[0]["waf_app"] >= series[-1]["waf_app"] * 0.98, scheme

    zone = next(r for r in rows if r["scheme"] == "Zone-Cache")
    assert zone["hit_ratio"] == max(r["hit_ratio"] for r in rows)
    assert zone["waf_total"] == 1.0

    benchmark.extra_info["rows"] = rows
