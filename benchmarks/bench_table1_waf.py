"""Table 1 — WA factor under different OP ratios.

Paper result: Region-Cache 1.39 / 1.30 / 1.15 and File-Cache 1.25 /
1.19 / 1.11 at OP 10% / 15% / 20% — WAF strictly decreases as OP grows,
stays in the low-1.x range, and Zone-Cache (not shown in the table) is
always exactly 1.
"""

from conftest import run_once

from repro.bench.experiments import run_table1_waf
from repro.bench.reporting import format_table


def test_table1_waf(benchmark):
    rows = run_once(benchmark, run_table1_waf, num_ops=40_000)
    print()
    print(format_table(rows, title="Table 1: WA factor vs OP ratio"))

    for scheme in ("Region-Cache", "File-Cache"):
        series = sorted(
            (r for r in rows if r["scheme"] == scheme), key=lambda r: r["op_ratio"]
        )
        wafs = [r["waf"] for r in series]
        assert len(wafs) == 3
        # Monotone non-increasing with OP, as in the paper's table.
        assert wafs[0] >= wafs[1] >= wafs[2] * 0.98
        # Low-1.x range: above 1, far below the pathological regime.
        assert all(1.0 <= w < 2.5 for w in wafs), wafs

    benchmark.extra_info["rows"] = rows
