"""Shared helpers for the benchmark suite.

Every benchmark wraps one experiment function from
:mod:`repro.bench.experiments` (one per table/figure in the paper) with
``benchmark.pedantic(rounds=1)``: the experiments are deterministic
simulations, so a single round measures wall-clock cost without
perturbing the reported (simulated) results.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Callable, List


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def by_scheme(rows: List[dict], **filters) -> dict:
    """Index result rows by scheme name (optionally filtered)."""
    out = {}
    for row in rows:
        if all(row.get(k) == v for k, v in filters.items()):
            out[row["scheme"]] = row
    return out
