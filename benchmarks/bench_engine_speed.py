"""Engine speed microbenchmark on the serving smoke configuration.

Measures wall-clock ops/sec of the serving simulation — the same 2-shard
mixed fleet, 2 tenants, and 2000 offered ops as ``repro serve --smoke``
— and compares the fast path (pre-generated arrival/op arrays + run-list
scheduler) against the retained legacy event loop and against the
checked-in ``BENCH_engine.json`` snapshot.

This is NOT a pytest-benchmark test on purpose: CI runs it as a plain
script so the perf gate needs no extra dependencies, and the same script
runs unmodified on a pre-refactor checkout (it degrades gracefully when
``ServerConfig`` has no ``fast_path`` switch) to produce an honest
apples-to-apples baseline on the current machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speed.py
    PYTHONPATH=src python benchmarks/bench_engine_speed.py --json BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine_speed.py --check BENCH_engine.json

``--check`` fails (exit 1) when measured fast-path ops/sec regresses
more than 30% versus the snapshot, after normalizing by the legacy
loop's measured/snapshot ratio so a slower CI machine does not produce
false alarms.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Optional

OFFERED_OPS = 2_000  # 2 tenants x 1000 requests, as in run_serving_smoke
ROUNDS = 7
REGRESSION_TOLERANCE = 0.30


def _build_server(fast_path: Optional[bool]):
    """The run_serving_smoke cluster + tenants, run() not yet called.

    ``fast_path=None`` means "whatever the tree's default is" — on a
    pre-refactor checkout ServerConfig has no such switch at all.
    """
    import repro.bench.experiments as experiments
    from repro.serve import CacheCluster, ShardSpec
    from repro.serve.server import Server, ServerConfig

    scale = experiments._serving_scale()
    media = 12 * scale.zone_size
    specs = [
        ShardSpec(
            "Region-Cache",
            media_bytes=media,
            cache_bytes=9 * scale.zone_size,
            cache_overrides=(("eviction_policy", "fifo"), ("reclaim_window", 32)),
        ),
        ShardSpec(
            "Zone-Cache",
            media_bytes=media,
            cache_overrides=(("eviction_policy", "fifo"),),
        ),
    ]
    cluster = CacheCluster(specs, scale=scale)
    tenants = experiments._serving_tenants(
        total_rate=120_000.0, requests_per_tenant=1_000, num_keys=1_500, seed=7
    )
    if fast_path is None:
        config = ServerConfig(max_queue_depth=24)
    else:
        try:
            config = ServerConfig(max_queue_depth=24, fast_path=fast_path)
        except TypeError:  # pre-refactor tree: one loop, no switch
            if fast_path:
                return None
            config = ServerConfig(max_queue_depth=24)
    return Server(cluster, tenants, config)


def _measure_run(fast_path: Optional[bool], rounds: int = ROUNDS) -> Optional[float]:
    """Best-of-N wall seconds for Server.run() (construction excluded)."""
    best = None
    for _ in range(rounds):
        server = _build_server(fast_path)
        if server is None:
            return None
        started = time.perf_counter()
        server.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _measure_e2e(rounds: int = ROUNDS) -> float:
    """Best-of-N wall seconds for the full smoke (construction included)."""
    import repro.bench.experiments as experiments

    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        experiments.run_serving_smoke()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def measure() -> dict:
    fast_wall = _measure_run(True)
    legacy_wall = _measure_run(False)
    e2e_wall = _measure_e2e()
    peak_rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    result = {
        "config": "run_serving_smoke: 2 shards (Region-Cache + Zone-Cache), "
        "2 tenants, 2000 offered ops at 120k ops/s",
        "offered_ops": OFFERED_OPS,
        "rounds": ROUNDS,
        "e2e_wall_s": round(e2e_wall, 6),
        "e2e_ops_per_sec": round(OFFERED_OPS / e2e_wall, 1),
        "peak_rss_kib": peak_rss_kib,
    }
    if fast_wall is not None:
        result["fast"] = {
            "wall_s": round(fast_wall, 6),
            "ops_per_sec": round(OFFERED_OPS / fast_wall, 1),
        }
    if legacy_wall is not None:
        result["legacy_loop"] = {
            "wall_s": round(legacy_wall, 6),
            "ops_per_sec": round(OFFERED_OPS / legacy_wall, 1),
        }
    if fast_wall is not None and legacy_wall is not None:
        result["fast_vs_legacy_loop"] = round(legacy_wall / fast_wall, 2)
    return result


def check(result: dict, snapshot_path: str) -> int:
    """The CI gate: >30% fast-path ops/sec regression vs snapshot fails.

    The legacy loop runs the same simulation through the same lower
    layers, so its measured/snapshot ratio estimates how fast this
    machine is relative to the snapshot machine; the fast-path floor is
    scaled by that ratio before the tolerance is applied.
    """
    with open(snapshot_path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    measured_fast = result["fast"]["ops_per_sec"]
    snapshot_fast = snapshot["fast"]["ops_per_sec"]
    machine_scale = 1.0
    if "legacy_loop" in result and "legacy_loop" in snapshot:
        machine_scale = (
            result["legacy_loop"]["ops_per_sec"]
            / snapshot["legacy_loop"]["ops_per_sec"]
        )
    floor = snapshot_fast * machine_scale * (1.0 - REGRESSION_TOLERANCE)
    print(
        f"perf check: measured {measured_fast:,.0f} ops/s, snapshot "
        f"{snapshot_fast:,.0f} ops/s, machine scale {machine_scale:.2f}x, "
        f"floor {floor:,.0f} ops/s"
    )
    if measured_fast < floor:
        print(
            f"FAIL: fast-path ops/sec regressed more than "
            f"{REGRESSION_TOLERANCE:.0%} vs BENCH_engine.json"
        )
        return 1
    print("OK: fast path within tolerance of the snapshot")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the measurement as JSON (rebaseline)"
    )
    parser.add_argument(
        "--check", metavar="PATH",
        help="compare against a snapshot; exit 1 on >30%% regression",
    )
    args = parser.parse_args(argv)

    result = measure()
    print(json.dumps(result, indent=2))
    if "fast" in result and "legacy_loop" in result:
        print(
            f"\nfast {result['fast']['ops_per_sec']:,.0f} ops/s vs legacy loop "
            f"{result['legacy_loop']['ops_per_sec']:,.0f} ops/s "
            f"({result['fast_vs_legacy_loop']}x)"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        return check(result, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
