"""Ablation — middle-layer GC thresholds (§3.3).

The paper: "the GC threshold and the zone selection threshold are
configurable ... Exploring the thresholds can be the future work."
This bench sweeps the victim valid-data threshold at high cache
utilization and reports the WAF/throughput trade-off.
"""

from conftest import run_once

from repro.bench.experiments import _populate
from repro.bench.reporting import format_table
from repro.bench.schemes import SchemeScale, build_region_cache
from repro.sim import SimClock
from repro.workloads import CacheBenchConfig, CacheBenchDriver
from repro.ztl.gc import GcConfig


def sweep_thresholds(thresholds=(0.10, 0.30, 0.50)):
    scale = SchemeScale()
    media = 25 * scale.zone_size
    cache_bytes = 21 * scale.zone_size  # high utilization → GC pressure
    rows = []
    for threshold in thresholds:
        stack = build_region_cache(
            SimClock(), scale, media, cache_bytes,
            gc=GcConfig(min_empty_zones=2, victim_valid_threshold=threshold),
        )
        driver = CacheBenchDriver(
            CacheBenchConfig(
                num_ops=20_000, num_keys=45_000, zipf_theta=1.0,
                warmup_ops=45_000, set_on_miss=True,
            )
        )
        _populate(driver, stack)
        result = driver.run(stack.cache)
        layer = stack.substrate["layer"]
        rows.append(
            {
                "victim_threshold": threshold,
                "waf_app": result.waf_app,
                "throughput_mops_per_min": result.ops_per_minute_m,
                "hit_ratio": result.hit_ratio,
                "zones_collected": layer.gc.zones_collected,
            }
        )
    return rows


def test_gc_threshold_ablation(benchmark):
    rows = run_once(benchmark, sweep_thresholds)
    print()
    print(format_table(rows, title="Ablation: ZTL victim valid-data threshold"))
    # WAF must stay in a sane band and respond to the threshold: a more
    # aggressive (higher) threshold collects earlier, at higher valid
    # fractions, so it cannot produce *less* migration than the laziest one.
    wafs = [r["waf_app"] for r in rows]
    assert all(1.0 <= w < 3.0 for w in wafs), wafs
    assert wafs[0] <= wafs[-1] * 1.10, wafs
    benchmark.extra_info["rows"] = rows
