"""Figure 2 — overall throughput and hit ratio of the four schemes.

Paper result (§4.1): Zone-Cache reaches the best hit ratio (94.29% →
95.08% vs Block-Cache) thanks to its larger OP-free cache; Region-Cache
and Block-Cache lead on throughput; File-Cache trails both metrics.
"""

from conftest import by_scheme, run_once

from repro.bench.experiments import run_fig2_overall
from repro.bench.reporting import format_table


def test_fig2_overall(benchmark):
    rows = run_once(benchmark, run_fig2_overall, num_ops=40_000)
    print()
    print(format_table(rows, title="Figure 2: four schemes, CacheBench bc-mix"))
    schemes = by_scheme(rows)

    # Shape assertions (who wins, not absolute numbers):
    # 1. Zone-Cache has the best hit ratio (largest cache, no OP) —
    #    the paper's 94.29% → 95.08% observation.
    assert schemes["Zone-Cache"]["hit_ratio"] == max(r["hit_ratio"] for r in rows)
    # 2. Zone-Cache and File-Cache are the bottom two on throughput
    #    (huge-region management vs filesystem overhead); Region-Cache
    #    and Block-Cache lead, within ~10% of each other.
    ranked = sorted(rows, key=lambda r: r["throughput_mops_per_min"])
    assert {ranked[0]["scheme"], ranked[1]["scheme"]} == {"Zone-Cache", "File-Cache"}
    assert (
        schemes["Region-Cache"]["throughput_mops_per_min"]
        > 0.9 * schemes["Block-Cache"]["throughput_mops_per_min"]
    )
    # 3. Zone-Cache is GC-free: total WAF exactly 1; the middle layer's
    #    WAF stays in the paper's low-1.x band.
    assert schemes["Zone-Cache"]["waf_total"] == 1.0
    assert 1.0 <= schemes["Region-Cache"]["waf_app"] < 2.0

    benchmark.extra_info["rows"] = rows
