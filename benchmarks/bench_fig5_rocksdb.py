"""Figure 5 — the four schemes as RocksDB's secondary cache.

Paper result (§4.2): Region-Cache has the highest throughput (up to
+21% over Block-Cache); Zone-Cache has the lowest throughput and hit
ratio (whole-zone eviction with a small cache); Block-Cache's P99 is
the worst (uncontrollable device GC) while its P50 stays low.
"""

from conftest import run_once

from repro.bench.experiments import run_fig5_rocksdb
from repro.bench.reporting import format_table


def test_fig5_rocksdb(benchmark):
    rows = run_once(benchmark, run_fig5_rocksdb)
    print()
    print(format_table(rows, title="Figure 5: RocksDB + secondary cache"))

    for exp_range in (15.0, 25.0):
        subset = {r["scheme"]: r for r in rows if r["exp_range"] == exp_range}
        # Zone-Cache: lowest hit ratio AND throughput of the four
        # (whole-zone cache granularity + whole-zone eviction at a small
        # cache size) — the paper's headline Figure 5 observation.
        assert subset["Zone-Cache"]["hit_ratio"] == min(
            r["hit_ratio"] for r in subset.values()
        ), exp_range
        assert subset["Zone-Cache"]["kops_per_sec"] == min(
            r["kops_per_sec"] for r in subset.values()
        ), exp_range
        # Region-Cache has the best throughput (paper: up to +21% over
        # Block-Cache; the simulator reproduces the ordering, the margin
        # is testbed-dependent).
        assert subset["Region-Cache"]["kops_per_sec"] == max(
            r["kops_per_sec"] for r in subset.values()
        ), exp_range
        # Tail latency: the regular SSD's maintenance bursts keep its P99
        # above Region-Cache's.  (The paper's 2× P99 gap comes from
        # queueing under real concurrency, which a synchronous simulator
        # compresses — see EXPERIMENTS.md.)
        assert (
            subset["Block-Cache"]["p99_ms"] >= subset["Region-Cache"]["p99_ms"]
        ), exp_range

    benchmark.extra_info["rows"] = rows
