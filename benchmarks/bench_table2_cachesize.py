"""Table 2 — Zone-Cache with growing cache sizes under RocksDB.

Paper result: throughput 1.869 → 4.100 kops and hit ratio 86.95% →
94.40% as the Zone-Cache grows from 4 G to 8 G — both rise
monotonically with cache size, throughput roughly doubling.
"""

from conftest import run_once

from repro.bench.experiments import run_table2_cache_sizes
from repro.bench.reporting import format_table


def test_table2_cache_sizes(benchmark):
    rows = run_once(benchmark, run_table2_cache_sizes)
    print()
    print(format_table(rows, title="Table 2: Zone-Cache cache-size sweep"))

    hits = [r["hit_ratio_pct"] for r in rows]
    kops = [r["kops_per_sec"] for r in rows]
    # Hit ratio climbs (allowing sim noise of half a point per step).
    for earlier, later in zip(hits, hits[1:]):
        assert later >= earlier - 0.5, hits
    assert hits[-1] > hits[0]
    # Throughput climbs with it, by a meaningful factor end to end.
    assert kops[-1] > kops[0] * 1.15, kops

    benchmark.extra_info["rows"] = rows
