"""Smoke test: the quickstart example must run end to end."""

import subprocess

import pytest
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.slow
def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "app-level WAF" in result.stdout
    assert "get user:1001 -> b'alice'" in result.stdout
