"""Unit tests for statistics primitives."""

import pytest

from repro.sim.stats import Counter, LatencyRecorder, RatioStat


class TestCounter:
    def test_default_zero(self):
        assert Counter().value == 0

    def test_add(self):
        counter = Counter("c")
        counter.add()
        counter.add(5)
        assert counter.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_reset(self):
        counter = Counter()
        counter.add(3)
        counter.reset()
        assert counter.value == 0


class TestRatioStat:
    def test_empty_ratio_is_zero(self):
        assert RatioStat().ratio == 0.0

    def test_ratio(self):
        stat = RatioStat()
        for hit in (True, True, False, True):
            stat.record(hit)
        assert stat.hits == 3
        assert stat.misses == 1
        assert stat.ratio == pytest.approx(0.75)

    def test_reset(self):
        stat = RatioStat()
        stat.record(True)
        stat.reset()
        assert stat.total == 0


class TestLatencyRecorder:
    def test_empty_percentile_is_zero(self):
        rec = LatencyRecorder()
        assert rec.p50() == 0
        assert rec.p99() == 0
        assert rec.mean() == 0.0

    def test_single_sample(self):
        rec = LatencyRecorder()
        rec.record(42)
        assert rec.p50() == 42
        assert rec.p99() == 42
        assert rec.max() == 42
        assert rec.min() == 42

    def test_percentiles_nearest_rank(self):
        rec = LatencyRecorder()
        for value in range(1, 101):
            rec.record(value)
        assert rec.p50() == 50
        assert rec.p99() == 99
        assert rec.percentile(100) == 100

    def test_percentile_after_more_samples(self):
        """The sorted cache must invalidate when new samples arrive."""
        rec = LatencyRecorder()
        rec.record(10)
        assert rec.p50() == 10
        rec.record(1)
        assert rec.p50() == 1

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_invalid_percentile_rejected(self):
        rec = LatencyRecorder()
        rec.record(1)
        with pytest.raises(ValueError):
            rec.percentile(0)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_mean(self):
        rec = LatencyRecorder()
        rec.record(10)
        rec.record(20)
        assert rec.mean() == pytest.approx(15.0)

    def test_snapshot_keys(self):
        rec = LatencyRecorder()
        rec.record(5)
        snap = rec.snapshot()
        assert snap["count"] == 1
        assert snap["p99_ns"] == 5

    def test_reset(self):
        rec = LatencyRecorder()
        rec.record(5)
        rec.reset()
        assert rec.count == 0
        assert rec.p50() == 0
