"""Unit tests for the zone state machine."""

import pytest

from repro.errors import WritePointerError, ZoneStateError
from repro.flash.zone import Zone, ZoneState


def make_zone(size=4096 * 4) -> Zone:
    return Zone(index=0, start=8192, size=size)


class TestZoneBasics:
    def test_initial_state(self):
        zone = make_zone()
        assert zone.state == ZoneState.EMPTY
        assert zone.write_pointer == zone.start
        assert zone.written_bytes == 0
        assert zone.remaining_bytes == zone.size

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Zone(index=0, start=0, size=0)

    def test_contains(self):
        zone = make_zone()
        assert zone.contains(zone.start, zone.size)
        assert not zone.contains(zone.end, 1)
        assert not zone.contains(zone.start - 1, 1)


class TestZoneWrites:
    def test_write_at_pointer_advances(self):
        zone = make_zone()
        zone.check_writable(zone.start, 4096)
        zone.advance(4096)
        assert zone.write_pointer == zone.start + 4096
        assert zone.state == ZoneState.IMPLICIT_OPEN

    def test_write_off_pointer_rejected(self):
        zone = make_zone()
        with pytest.raises(WritePointerError):
            zone.check_writable(zone.start + 4096, 4096)

    def test_write_past_boundary_rejected(self):
        zone = make_zone()
        with pytest.raises(ZoneStateError):
            zone.check_writable(zone.start, zone.size + 4096)

    def test_fill_transitions_to_full(self):
        zone = make_zone()
        zone.advance(zone.size)
        assert zone.state == ZoneState.FULL

    def test_write_to_full_zone_rejected(self):
        zone = make_zone()
        zone.advance(zone.size)
        with pytest.raises(ZoneStateError):
            zone.check_writable(zone.write_pointer, 4096)


class TestZoneTransitions:
    def test_reset_restores_empty(self):
        zone = make_zone()
        zone.advance(zone.size)
        zone.reset()
        assert zone.state == ZoneState.EMPTY
        assert zone.write_pointer == zone.start

    def test_finish_jumps_pointer(self):
        zone = make_zone()
        zone.advance(4096)
        zone.finish()
        assert zone.state == ZoneState.FULL
        assert zone.write_pointer == zone.end

    def test_explicit_open(self):
        zone = make_zone()
        zone.open_explicit()
        assert zone.state == ZoneState.EXPLICIT_OPEN
        assert zone.is_open

    def test_open_full_zone_rejected(self):
        zone = make_zone()
        zone.finish()
        with pytest.raises(ZoneStateError):
            zone.open_explicit()

    def test_close_open_zone(self):
        zone = make_zone()
        zone.advance(4096)
        zone.close()
        assert zone.state == ZoneState.CLOSED
        assert zone.is_active and not zone.is_open

    def test_close_unwritten_zone_reverts_to_empty(self):
        zone = make_zone()
        zone.open_explicit()
        zone.close()
        assert zone.state == ZoneState.EMPTY

    def test_close_non_open_rejected(self):
        zone = make_zone()
        with pytest.raises(ZoneStateError):
            zone.close()

    def test_offline_zone_rejects_everything(self):
        zone = make_zone()
        zone.state = ZoneState.OFFLINE
        with pytest.raises(ZoneStateError):
            zone.reset()
        with pytest.raises(ZoneStateError):
            zone.finish()
        with pytest.raises(ZoneStateError):
            zone.open_explicit()
        with pytest.raises(ZoneStateError):
            zone.check_writable(zone.write_pointer, 4096)

    def test_read_only_rejects_writes(self):
        zone = make_zone()
        zone.state = ZoneState.READ_ONLY
        with pytest.raises(ZoneStateError):
            zone.check_writable(zone.write_pointer, 4096)
