"""Fast unit tests for the stats/report surfaces used by the harness."""

import pytest

from repro.cache.stats import CacheStats
from repro.f2fs.fs import F2fsStats
from repro.units import SEC
from repro.workloads.cachebench import WorkloadResult
from repro.ztl.layer import ZtlStats


class TestCacheStats:
    def test_throughput_over_window(self):
        stats = CacheStats(started_at_ns=0)
        stats.lookups.record(True)
        stats.sets += 1
        stats.finished_at_ns = 2 * SEC
        assert stats.operations == 2
        assert stats.throughput_ops() == pytest.approx(1.0)

    def test_zero_window_throughput(self):
        stats = CacheStats(started_at_ns=5, finished_at_ns=5)
        assert stats.throughput_ops() == 0.0

    def test_snapshot_keys(self):
        stats = CacheStats()
        stats.lookups.record(False)
        snap = stats.snapshot()
        for key in ("operations", "hit_ratio", "throughput_ops", "get_p99_ns"):
            assert key in snap


class TestZtlStats:
    def test_waf_identity_with_no_writes(self):
        assert ZtlStats().app_write_amplification == 1.0

    def test_waf_formula(self):
        stats = ZtlStats(host_region_writes=100, migrated_region_writes=30)
        assert stats.app_write_amplification == pytest.approx(1.3)


class TestF2fsStats:
    def test_waf_identity_with_no_writes(self):
        assert F2fsStats().write_amplification == 1.0

    def test_waf_includes_metadata(self):
        stats = F2fsStats(
            host_write_bytes=1000, data_write_bytes=1100, meta_write_bytes=100
        )
        assert stats.write_amplification == pytest.approx(1.2)


class TestWorkloadResult:
    def make(self, **kwargs):
        defaults = dict(
            scheme="X",
            operations=600,
            sim_seconds=1.0,
            throughput_ops_per_sec=600.0,
            hit_ratio=0.9,
            waf_app=1.2,
            waf_device=1.1,
        )
        defaults.update(kwargs)
        return WorkloadResult(**defaults)

    def test_ops_per_minute_conversion(self):
        result = self.make(throughput_ops_per_sec=1_000_000 / 60)
        assert result.ops_per_minute_m == pytest.approx(1.0)

    def test_total_waf(self):
        assert self.make().waf_total == pytest.approx(1.32)
