"""Unit tests for the four RegionStore backends and shared helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.backends import (
    BlockRegionStore,
    FileRegionStore,
    WafRaw,
    ZoneRegionStore,
    ZtlRegionStore,
)
from repro.cache.backends.base import aligned_window
from repro.errors import CacheConfigError, OutOfRangeError
from repro.f2fs import CleanerConfig, F2fs, F2fsConfig
from repro.flash import (
    BlockSsd,
    BlockSsdConfig,
    FtlConfig,
    NandGeometry,
    NullBlkDevice,
    ZnsConfig,
    ZnsSsd,
)
from repro.sim import SimClock
from repro.units import KIB, MIB
from repro.ztl import GcConfig, RegionTranslationLayer, ZtlConfig

PAGE = 4 * KIB
REGION = 16 * KIB


def geometry():
    return NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=256)


def payload(tag: int, size: int = REGION) -> bytes:
    return bytes([tag % 251 + 1]) * size


class TestAlignedWindow:
    def test_already_aligned(self):
        assert aligned_window(0, 4096, 4096) == (0, 4096, 0)

    def test_unaligned_offset(self):
        offset, length, skip = aligned_window(100, 50, 4096)
        assert offset == 0
        assert length == 4096
        assert skip == 100

    def test_crossing_boundary(self):
        offset, length, skip = aligned_window(4000, 200, 4096)
        assert offset == 0
        assert length == 8192
        assert skip == 4000

    @given(
        offset=st.integers(min_value=0, max_value=1 << 40),
        length=st.integers(min_value=1, max_value=1 << 24),
        alignment=st.sampled_from([512, 4096, 16384, 1 << 20]),
    )
    def test_window_properties(self, offset, length, alignment):
        aligned_offset, aligned_length, skip = aligned_window(
            offset, length, alignment
        )
        aligned_end = aligned_offset + aligned_length
        # Both edges land on alignment boundaries.
        assert aligned_offset % alignment == 0
        assert aligned_length % alignment == 0
        # The window covers the requested range...
        assert aligned_offset <= offset
        assert aligned_end >= offset + length
        # ...with minimal slack on both sides (never a full spare block).
        assert offset - aligned_offset < alignment
        assert aligned_end - (offset + length) < alignment
        # slice_start points at the requested bytes inside the window.
        assert skip == offset - aligned_offset


class TestWafRaw:
    def test_window_math(self):
        start = WafRaw(app_host=100, app_total=100, dev_host=100, dev_total=110)
        end = WafRaw(app_host=200, app_total=230, dev_host=220, dev_total=290)
        waf = start.window_to(end)
        assert waf.app == pytest.approx(1.30)
        assert waf.device == pytest.approx(1.50)
        assert waf.total == pytest.approx(1.95)

    def test_empty_window_is_one(self):
        raw = WafRaw(1, 1, 1, 1)
        waf = raw.window_to(raw)
        assert waf.app == 1.0 and waf.device == 1.0


def backend_cases():
    def block():
        clock = SimClock()
        device = BlockSsd(clock, BlockSsdConfig(geometry=geometry(), ftl=FtlConfig(0.25)))
        return BlockRegionStore(device, REGION, 16)

    def file():
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=8 * 64 * KIB))
        meta = NullBlkDevice(clock, capacity_bytes=4 * MIB)
        fs = F2fs(clock, zns, meta, F2fsConfig(checkpoint_interval_blocks=1 << 30),
                  CleanerConfig())
        fs.mkfs()
        return FileRegionStore(fs, REGION, 16)

    def zone():
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=4 * 64 * KIB))
        return ZoneRegionStore(zns, 8)

    def ztl():
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=4 * 64 * KIB))
        layer = RegionTranslationLayer(
            zns, ZtlConfig(region_size=REGION, gc=GcConfig(min_empty_zones=2))
        )
        return ZtlRegionStore(layer, 16)

    return [("block", block), ("file", file), ("zone", zone), ("ztl", ztl)]


@pytest.fixture(params=[name for name, _ in backend_cases()])
def store(request):
    for name, factory in backend_cases():
        if name == request.param:
            return factory()
    raise AssertionError


class TestRegionStoreContract:
    def region_size_of(self, store):
        return store.region_size

    def test_write_read_roundtrip(self, store):
        data = payload(3, store.region_size)
        store.write_region(0, data)
        assert store.read(0, 0, store.region_size) == data

    def test_partial_unaligned_read(self, store):
        data = payload(4, store.region_size)
        store.write_region(1, data)
        assert store.read(1, 100, 999) == data[100:1099]

    def test_rewrite_replaces(self, store):
        store.write_region(0, payload(1, store.region_size))
        store.write_region(0, payload(2, store.region_size))
        assert store.read(0, 0, 64) == payload(2, 64)

    def test_bad_region_id(self, store):
        with pytest.raises(OutOfRangeError):
            store.write_region(store.num_regions, payload(1, store.region_size))
        with pytest.raises(OutOfRangeError):
            store.read(-1, 0, 16)
        with pytest.raises(OutOfRangeError):
            store.invalidate_region(store.num_regions)

    def test_wrong_payload_size(self, store):
        with pytest.raises(ValueError):
            store.write_region(0, b"short")

    def test_waf_types(self, store):
        store.write_region(0, payload(1, store.region_size))
        waf = store.waf()
        raw = store.waf_raw()
        assert waf.app >= 1.0 and waf.device >= 1.0
        assert raw.app_total >= raw.app_host >= 0

    def test_scheme_name(self, store):
        assert store.scheme_name.endswith("-Cache")


class TestBackendSpecifics:
    def test_block_store_capacity_check(self):
        clock = SimClock()
        device = BlockSsd(clock, BlockSsdConfig(geometry=geometry()))
        too_many = device.capacity_bytes // REGION + 1
        with pytest.raises(ValueError):
            BlockRegionStore(device, REGION, too_many)

    def test_block_discard_mode(self):
        clock = SimClock()
        device = BlockSsd(clock, BlockSsdConfig(geometry=geometry()))
        store = BlockRegionStore(device, REGION, 8, use_discard=True)
        store.write_region(0, payload(1))
        store.invalidate_region(0)
        assert store.read(0, 0, 64) == b"\x00" * 64

    def test_file_store_must_fit_fs(self):
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=8 * 64 * KIB))
        meta = NullBlkDevice(clock, capacity_bytes=4 * MIB)
        fs = F2fs(clock, zns, meta)
        fs.mkfs()
        too_many = fs.usable_bytes // REGION + 1
        with pytest.raises(ValueError):
            FileRegionStore(fs, REGION, too_many)

    def test_zone_store_region_is_zone(self):
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=4 * 64 * KIB))
        store = ZoneRegionStore(zns)
        assert store.region_size == zns.zone_size
        assert store.num_regions == zns.num_zones

    def test_zone_store_invalidate_resets(self):
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=4 * 64 * KIB))
        store = ZoneRegionStore(zns, 4)
        store.write_region(0, payload(1, store.region_size))
        store.invalidate_region(0)
        from repro.flash.zone import ZoneState

        assert zns.zones[0].state == ZoneState.EMPTY

    def test_ztl_store_requires_op(self):
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=4 * 64 * KIB))
        layer = RegionTranslationLayer(zns, ZtlConfig(region_size=REGION))
        with pytest.raises(CacheConfigError):
            ZtlRegionStore(layer, layer.total_slots)

    def test_ztl_op_ratio(self):
        clock = SimClock()
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry(), zone_size=4 * 64 * KIB))
        layer = RegionTranslationLayer(zns, ZtlConfig(region_size=REGION))
        store = ZtlRegionStore(layer, layer.total_slots // 2)
        assert store.op_ratio == pytest.approx(0.5)
