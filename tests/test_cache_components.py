"""Unit tests for cache building blocks: codec, index, buffers, policies,
RAM cache, admission, config."""

import pytest

from repro.cache import (
    AdmitAll,
    CacheConfig,
    CpuCosts,
    EntryCodec,
    EntryLocation,
    ProbabilisticAdmission,
    RamCache,
    RegionBuffer,
    RegionMeta,
    ShardedIndex,
    make_eviction_policy,
)
from repro.cache.admission import SizeThresholdAdmission
from repro.errors import CacheConfigError


class TestEntryCodec:
    def test_roundtrip(self):
        blob = EntryCodec.encode(b"key", b"value")
        assert EntryCodec.decode(blob) == (b"key", b"value")

    def test_entry_size(self):
        assert EntryCodec.entry_size(b"key", b"value") == 16 + 3 + 5

    def test_expiry_roundtrip(self):
        blob = EntryCodec.encode(b"k", b"v", expiry_ns=12345)
        entry = EntryCodec.decode_entry(blob)
        assert entry.expiry_ns == 12345
        assert entry.is_expired(now_ns=12345)
        assert not entry.is_expired(now_ns=12344)

    def test_no_expiry_never_expires(self):
        entry = EntryCodec.decode_entry(EntryCodec.encode(b"k", b"v"))
        assert not entry.is_expired(now_ns=2**62)

    def test_decode_with_trailing_garbage(self):
        blob = EntryCodec.encode(b"k", b"v") + b"\x00" * 32
        assert EntryCodec.decode(blob) == (b"k", b"v")

    def test_truncated_rejected(self):
        blob = EntryCodec.encode(b"key", b"value")
        with pytest.raises(ValueError):
            EntryCodec.decode(blob[:5])
        with pytest.raises(ValueError):
            EntryCodec.decode(blob[:10])

    def test_empty_value(self):
        blob = EntryCodec.encode(b"key", b"")
        assert EntryCodec.decode(blob) == (b"key", b"")


class TestShardedIndex:
    def test_put_get_remove(self):
        index = ShardedIndex(4)
        loc = EntryLocation(1, 0, 10)
        assert index.put(b"a", loc) is None
        assert index.get(b"a") == loc
        assert b"a" in index
        assert index.remove(b"a") == loc
        assert index.get(b"a") is None

    def test_put_returns_old(self):
        index = ShardedIndex(4)
        old = EntryLocation(1, 0, 10)
        new = EntryLocation(2, 5, 10)
        index.put(b"a", old)
        assert index.put(b"a", new) == old
        assert index.get(b"a") == new

    def test_len_spans_shards(self):
        index = ShardedIndex(4)
        for i in range(100):
            index.put(f"key{i}".encode(), EntryLocation(0, i, 1))
        assert len(index) == 100
        assert len(set(index.keys())) == 100

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardedIndex(0)


class TestRegionBuffer:
    def test_append_and_read(self):
        buffer = RegionBuffer(region_id=3, capacity=4096, opened_at_ns=0)
        loc = buffer.append(b"k", b"v" * 10)
        assert loc.region_id == 3
        assert loc.offset == 0
        blob = buffer.read(loc.offset, loc.length)
        assert EntryCodec.decode(blob) == (b"k", b"v" * 10)

    def test_fits(self):
        buffer = RegionBuffer(0, capacity=32, opened_at_ns=0)
        assert buffer.fits(32)
        assert not buffer.fits(33)

    def test_overflow_rejected(self):
        buffer = RegionBuffer(0, capacity=16, opened_at_ns=0)
        with pytest.raises(ValueError):
            buffer.append(b"key", b"x" * 32)

    def test_read_beyond_used_rejected(self):
        buffer = RegionBuffer(0, capacity=64, opened_at_ns=0)
        buffer.append(b"k", b"v")
        with pytest.raises(ValueError):
            buffer.read(0, 64)

    def test_finalize_pads_to_capacity(self):
        buffer = RegionBuffer(0, capacity=64, opened_at_ns=0)
        buffer.append(b"k", b"v")
        payload = buffer.finalize()
        assert len(payload) == 64

    def test_meta_key_tracking(self):
        meta = RegionMeta(0)
        meta.note_inserted(b"a")
        meta.note_inserted(b"b")
        meta.note_removed(b"a")
        assert meta.valid_items == 1


class TestEvictionPolicies:
    def test_fifo_ignores_touch(self):
        policy = make_eviction_policy("fifo")
        policy.track(1)
        policy.track(2)
        policy.touch(1)
        assert policy.pick_victim() == 1

    def test_lru_promotes_on_touch(self):
        policy = make_eviction_policy("lru")
        policy.track(1)
        policy.track(2)
        policy.touch(1)
        assert policy.pick_victim() == 2

    def test_untrack(self):
        policy = make_eviction_policy("lru")
        policy.track(1)
        policy.untrack(1)
        assert policy.pick_victim() is None
        assert len(policy) == 0

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_eviction_policy("random")


class TestRamCache:
    def test_put_get(self):
        ram = RamCache(1024)
        ram.put(b"a", b"1" * 100)
        assert ram.get(b"a") == b"1" * 100

    def test_byte_budget_evicts_lru(self):
        ram = RamCache(300)
        ram.put(b"a", b"1" * 100)
        ram.put(b"b", b"2" * 100)
        ram.get(b"a")  # promote a
        ram.put(b"c", b"3" * 100)  # must evict b
        assert ram.get(b"b") is None
        assert ram.get(b"a") is not None
        assert ram.evictions == 1

    def test_oversized_item_skipped(self):
        ram = RamCache(50)
        ram.put(b"a", b"1" * 100)
        assert ram.get(b"a") is None

    def test_replace_updates_budget(self):
        ram = RamCache(1024)
        ram.put(b"a", b"1" * 100)
        ram.put(b"a", b"2" * 10)
        assert ram.used_bytes == 1 + 10

    def test_remove(self):
        ram = RamCache(1024)
        ram.put(b"a", b"1")
        assert ram.remove(b"a")
        assert not ram.remove(b"a")
        assert ram.used_bytes == 0


class TestAdmission:
    def test_admit_all(self):
        assert AdmitAll().admit(b"k", b"v")

    def test_probabilistic_bounds(self):
        always = ProbabilisticAdmission(1.0)
        never = ProbabilisticAdmission(0.0)
        assert all(always.admit(b"k", b"v") for _ in range(50))
        assert not any(never.admit(b"k", b"v") for _ in range(50))

    def test_probabilistic_rate(self):
        policy = ProbabilisticAdmission(0.5, seed=3)
        admitted = sum(policy.admit(b"k", b"v") for _ in range(2000))
        assert 850 < admitted < 1150

    def test_probabilistic_invalid(self):
        with pytest.raises(ValueError):
            ProbabilisticAdmission(1.5)

    def test_size_threshold(self):
        policy = SizeThresholdAdmission(10)
        assert policy.admit(b"k", b"x" * 10)
        assert not policy.admit(b"k", b"x" * 11)


class TestCacheConfig:
    def test_flash_bytes(self):
        config = CacheConfig(region_size=1024, num_regions=8)
        assert config.flash_bytes == 8192

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"region_size": 0},
            {"num_regions": 1},
            {"ram_bytes": -1},
            {"eviction_policy": "mru"},
            {"index_shards": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(CacheConfigError):
            CacheConfig(**kwargs)

    def test_eviction_teardown_superlinear(self):
        cpu = CpuCosts(evict_index_per_item_ns=1000, evict_contention_scale_items=100)
        # 10 items: ~linear; 1000 items: heavy contention multiplier.
        small = cpu.eviction_teardown_ns(10)
        large = cpu.eviction_teardown_ns(1000)
        assert small < 10 * 1000 * 2
        assert large > 1000 * 1000 * 5

    def test_teardown_zero_items(self):
        assert CpuCosts().eviction_teardown_ns(0) == 0

    def test_negative_cost_rejected(self):
        with pytest.raises(CacheConfigError):
            CpuCosts(get_ns=-1)
