"""The GC↔QoS loop: adaptive reclaim pacing + GC-aware shard routing.

Covers both halves of the loop and the accounting fixes that ride with
it:

* copy-token bucket: an oversized migration unit is granted at a full
  bucket (rate-limited, not wedged) — the livelock regression;
* ``copy_bucket_cap`` uses None-vs-set semantics (an explicit cap equal
  to a falsy-adjacent value is honored) and is validated against the
  refill;
* ``throttled_steps`` counts distinct throttled steps, with the raw
  per-unit rejections in ``copy_throttle_events``;
* the AIMD controller relaxes/clamps the runtime pace inside its
  floor/ceiling band and windows its stall signal;
* ``nodes_for``/``route_for``: reads are ring-faithful, write reroutes
  are bounded to the configured successor distance, the static policy is
  bit-identical to a cluster built with no routing config at all;
* the serving goodput window covers the last *arrival*, not just the
  last completion, so a fully-shed tail cannot inflate goodput;
* the `repro gc-qos --smoke` grid is deterministic and actually drives
  GC, rerouting, and the controller.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import ConfigError
from repro.reclaim import AdaptivePacingConfig, PacerConfig, ReclaimPacer
from repro.serve import (
    PRESSURE_RANK,
    CacheCluster,
    ConsistentHashRing,
    RoutingConfig,
    Server,
    ServerConfig,
    TenantConfig,
)
from repro.units import KIB, SEC
from repro.workloads.cachebench import CacheBenchConfig


# --------------------------------------------------------------------------
# Copy-token bucket: livelock fix + cap semantics + throttle counting
# --------------------------------------------------------------------------

class TestCopyTokenBucket:
    def test_oversized_unit_granted_at_full_bucket(self):
        # Regression: a unit twice the bucket cap used to fail try_reserve
        # forever (tokens can never reach nbytes), wedging reclamation.
        pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=50, copy_bucket_cap=50))
        assert pacer.try_reserve(100)  # full bucket admits anything
        pacer.spend(100)
        assert pacer.copy_tokens == -50  # debt paid back by later refills
        assert not pacer.try_reserve(100)  # in debt: throttled
        pacer.refill()
        assert not pacer.try_reserve(100)  # tokens == 0 < cap
        pacer.refill()
        assert pacer.try_reserve(100)  # back at cap: admitted again

    def test_oversized_unit_unblocks_within_bounded_refills(self):
        pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=10, copy_bucket_cap=40))
        pacer.spend(35)
        nbytes = 1000  # far over the cap
        for _ in range(8):  # ceil(debt/refill) + slack
            if pacer.try_reserve(nbytes):
                break
            pacer.refill()
        else:
            pytest.fail("oversized reserve never unblocked")

    def test_explicit_cap_equal_to_refill_is_honored(self):
        # Regression: `cap or default` treated an explicit small cap as
        # falsy only at 0, but the sentinel must be None — an explicit
        # cap == refill is a real configuration, not "use the default".
        pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=100, copy_bucket_cap=100))
        assert pacer.bucket_cap == 100
        pacer.spend(100)
        pacer.refill()
        pacer.refill()
        assert pacer.copy_tokens == 100  # capped at the explicit value

    def test_default_cap_is_four_refills(self):
        pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=100))
        assert pacer.bucket_cap == 400

    def test_cap_below_refill_rejected(self):
        with pytest.raises(ConfigError):
            PacerConfig(copy_tokens_per_step=100, copy_bucket_cap=99)

    def test_cap_ignored_while_bucket_disabled(self):
        # No refill -> no bucket; an explicit cap must not trip validation.
        pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=0, copy_bucket_cap=7))
        assert pacer.try_reserve(1 << 40)

    def test_throttled_steps_counts_distinct_steps(self):
        # Regression: every rejected unit used to bump throttled_steps,
        # conflating "steps that hit the budget" with "units rejected".
        pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=10, copy_bucket_cap=10))
        pacer.spend(10)
        for _ in range(5):
            assert not pacer.try_reserve(10)
        assert pacer.throttled_steps == 1
        assert pacer.copy_throttle_events == 5
        pacer.refill()  # next step; bucket back at 10
        pacer.spend(10)
        assert not pacer.try_reserve(10)
        assert pacer.throttled_steps == 2
        assert pacer.copy_throttle_events == 6


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    refill=st.integers(1, 64),
    cap_scale=st.integers(1, 8),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(1, 512)),  # (do_refill, nbytes)
        max_size=120,
    ),
)
def test_prop_bucket_invariants(refill, cap_scale, ops):
    """Tokens never exceed the cap, and a granted reserve is either
    affordable or taken at a full bucket (the no-deadlock invariant)."""
    cap = refill * cap_scale
    pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=refill, copy_bucket_cap=cap))
    for do_refill, nbytes in ops:
        if do_refill:
            pacer.refill()
        before = pacer.copy_tokens
        if pacer.try_reserve(nbytes):
            assert before >= nbytes or before >= cap
            pacer.spend(nbytes)
        assert pacer.copy_tokens <= cap


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    refill=st.integers(1, 64),
    cap_scale=st.integers(1, 8),
    debt=st.integers(0, 4096),
    nbytes=st.integers(1, 4096),
)
def test_prop_bucket_never_deadlocks(refill, cap_scale, debt, nbytes):
    """From any debt, a bounded number of refills unblocks any unit."""
    cap = refill * cap_scale
    pacer = ReclaimPacer(PacerConfig(copy_tokens_per_step=refill, copy_bucket_cap=cap))
    pacer.spend(debt)
    bound = (debt + cap) // refill + 2
    for _ in range(bound):
        if pacer.try_reserve(nbytes):
            return
        pacer.refill()
    pytest.fail(f"reserve({nbytes}) still blocked after {bound} refills")


# --------------------------------------------------------------------------
# AIMD controller
# --------------------------------------------------------------------------

def _adaptive(**overrides):
    config = dict(stall_slo_ns=1000, interval_steps=4, increase_units=2,
                  decrease_factor=0.5, max_scale=4)
    config.update(overrides)
    return AdaptivePacingConfig(**config)


class TestAdaptivePacing:
    def test_static_without_controller(self):
        pacer = ReclaimPacer(PacerConfig(pace_units=8))
        for _ in range(100):
            pacer.observe_step()
        assert pacer.pace_units == 8
        assert pacer.pace_adjustments == 0

    def test_relax_under_budget(self):
        pacer = ReclaimPacer(PacerConfig(pace_units=8), adaptive=_adaptive())
        for _ in range(4):
            pacer.stall.record(10)  # well under the 1000ns budget
            pacer.observe_step()
        assert pacer.pace_units == 10  # 8 + increase_units
        assert pacer.pace_adjustments == 1
        assert pacer.pace_clamps == 0

    def test_relax_bounded_by_ceiling(self):
        pacer = ReclaimPacer(PacerConfig(pace_units=8), adaptive=_adaptive())
        for _ in range(400):
            pacer.observe_step()  # empty window counts as under budget
        assert pacer.pace_units == 32  # 8 * max_scale

    def test_clamp_over_budget_with_floor(self):
        pacer = ReclaimPacer(PacerConfig(pace_units=8), adaptive=_adaptive())
        for _ in range(400):
            pacer.stall.record(1_000_000)
            pacer.observe_step()
        assert pacer.pace_units == 2  # 8 // max_scale
        assert pacer.pace_clamps > 0

    def test_stall_window_resets_each_interval(self):
        pacer = ReclaimPacer(PacerConfig(pace_units=8), adaptive=_adaptive())
        for _ in range(4):
            pacer.stall.record(1_000_000)
            pacer.observe_step()
        assert pacer.pace_units == 4  # clamped once
        assert pacer.stall.count == 0  # window reset: old spikes forgotten
        for _ in range(4):
            pacer.stall.record(10)
            pacer.observe_step()
        assert pacer.pace_units == 6  # relaxes again on the fresh window

    def test_copy_tokens_follow_the_controller(self):
        pacer = ReclaimPacer(
            PacerConfig(pace_units=8, copy_tokens_per_step=64),
            adaptive=_adaptive(),
        )
        for _ in range(4):
            pacer.stall.record(1_000_000)
            pacer.observe_step()
        assert pacer.copy_tokens_per_step == 32
        for _ in range(400):
            pacer.observe_step()
        # Refill ceiling is min(bucket cap, static * max_scale) = cap.
        assert pacer.copy_tokens_per_step == pacer.bucket_cap

    def test_enable_adaptive_at_runtime(self):
        pacer = ReclaimPacer(PacerConfig(pace_units=8))
        pacer.enable_adaptive(_adaptive())
        for _ in range(4):
            pacer.observe_step()
        assert pacer.pace_adjustments == 1

    def test_stack_wiring(self):
        from repro.bench.schemes import SchemeScale, build_scheme
        from repro.sim.clock import SimClock

        scale = SchemeScale(zone_size=256 * KIB, region_size=16 * KIB,
                            pages_per_block=16, ram_bytes=32 * KIB)
        media = 8 * scale.zone_size
        region = build_scheme("Region-Cache", SimClock(), scale, media,
                              6 * scale.zone_size)
        zone = build_scheme("Zone-Cache", SimClock(), scale, media, None)
        assert region.enable_adaptive_pacing(_adaptive())
        _, engine = region.reclaim_engine()
        assert engine.pacer.adaptive is not None
        assert not zone.enable_adaptive_pacing(_adaptive())
        assert zone.reclaim_pressure()["level"] == "idle"


# --------------------------------------------------------------------------
# Ring successors + GC-aware routing
# --------------------------------------------------------------------------

def _zone_cluster(num_shards=3, routing=None):
    from repro.bench.schemes import SchemeScale

    scale = SchemeScale(zone_size=256 * KIB, region_size=16 * KIB,
                        pages_per_block=16, ram_bytes=32 * KIB)
    return CacheCluster.homogeneous(
        "Zone-Cache",
        num_shards,
        8 * scale.zone_size,
        None,
        scale=scale,
        cache_overrides=(("eviction_policy", "fifo"),),
        routing=routing,
    )


class TestRingSuccessors:
    def test_first_successor_is_the_owner(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        for i in range(200):
            key = f"key-{i}".encode()
            assert ring.nodes_for(key, 1) == [ring.node_for(key)]

    def test_successors_distinct_and_capped(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        nodes = ring.nodes_for(b"k", 10)  # more than the ring has
        assert sorted(nodes) == ["a", "b", "c"]

    def test_count_validated(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ConfigError):
            ring.nodes_for(b"k", 0)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(key=st.binary(min_size=1, max_size=32), count=st.integers(1, 6))
def test_prop_successor_walk(key, count):
    ring = ConsistentHashRing(["a", "b", "c", "d", "e"])
    nodes = ring.nodes_for(key, count)
    assert len(nodes) == min(count, 5)
    assert len(set(nodes)) == len(nodes)
    assert nodes[0] == ring.node_for(key)


class TestGcAwareRouting:
    def test_routing_config_validated(self):
        with pytest.raises(ConfigError):
            RoutingConfig(policy="chaotic")
        with pytest.raises(ConfigError):
            RoutingConfig(max_reroute_distance=0)
        with pytest.raises(ConfigError):
            RoutingConfig(reroute_level="panic")

    def test_static_policy_never_reroutes(self):
        cluster = _zone_cluster(routing=RoutingConfig(policy="static"))
        for i in range(100):
            key = f"k{i}".encode()
            shard, home = cluster.route_for(key, is_write=True)
            assert home is None
            assert shard is cluster.shard_for(key)

    def test_reads_always_follow_the_ring(self):
        cluster = _zone_cluster(routing=RoutingConfig(policy="gc_aware"))
        cluster.shards[0].pressure_rank = lambda: PRESSURE_RANK["emergency"]
        for i in range(100):
            key = f"k{i}".encode()
            shard, home = cluster.route_for(key, is_write=False)
            assert home is None
            assert shard is cluster.shard_for(key)

    def test_write_reroutes_within_bounded_distance(self):
        distance = 1
        cluster = _zone_cluster(
            num_shards=4,
            routing=RoutingConfig(policy="gc_aware", max_reroute_distance=distance),
        )
        pressured = cluster.shards[0]
        pressured.pressure_rank = lambda: PRESSURE_RANK["urgent"]
        rerouted = 0
        for i in range(300):
            key = f"k{i}".encode()
            home = cluster.shard_for(key)
            shard, from_shard = cluster.route_for(key, is_write=True)
            if from_shard is None:
                assert shard is home
                continue
            rerouted += 1
            assert from_shard is pressured
            successors = cluster.ring.nodes_for(key, 1 + distance)
            assert shard.name in successors[1:]
            assert shard.pressure_rank() < PRESSURE_RANK["urgent"]
        assert rerouted > 0
        assert pressured.rerouted_out == rerouted

    def test_no_escape_when_everyone_is_pressured(self):
        cluster = _zone_cluster(routing=RoutingConfig(policy="gc_aware"))
        for shard in cluster.shards:
            shard.pressure_rank = lambda: PRESSURE_RANK["emergency"]
        for i in range(50):
            key = f"k{i}".encode()
            shard, home = cluster.route_for(key, is_write=True)
            assert home is None  # equal pressure everywhere: stay home
            assert shard is cluster.shard_for(key)

    def test_default_routing_is_static(self):
        assert _zone_cluster().routing.policy == "static"


# --------------------------------------------------------------------------
# Serving integration: reroute events + goodput window fix
# --------------------------------------------------------------------------

def _tenant(name, rate, num_ops, seed=3, **overrides):
    workload = CacheBenchConfig(
        num_ops=num_ops, num_keys=200, get_ratio=0.2, set_ratio=0.8,
        delete_ratio=0.0, seed=seed,
    )
    return TenantConfig(name, rate_ops_per_sec=rate, workload=workload,
                        slo_p99_ms=5.0, seed=seed + 7, **overrides)


class TestServingIntegration:
    def test_reroute_emits_trace_and_tenant_accounting(self):
        cluster = _zone_cluster(routing=RoutingConfig(policy="gc_aware"))
        for shard in cluster.shards:
            shard.stack.cache.store.tracer.enable()
        cluster.shards[0].pressure_rank = lambda: PRESSURE_RANK["emergency"]
        report = Server(
            cluster, [_tenant("w", 50_000.0, 400)], ServerConfig()
        ).run()
        total_rerouted = sum(r["rerouted_out"] for r in report.shard_rows)
        assert total_rerouted > 0
        assert report.tenant_rows[0]["rerouted"] == total_rerouted
        assert sum(r["rerouted_in"] for r in report.shard_rows) == total_rerouted
        route_events = [
            rec
            for shard in cluster.shards
            for rec in shard.stack.cache.store.tracer.records
            if rec.layer == "serve.route" and rec.op == "reroute"
        ]
        assert len(route_events) == total_rerouted

    def test_static_cluster_matches_no_routing_config(self):
        # Features off must be bit-identical: a cluster built with an
        # explicit static RoutingConfig and one built with none at all
        # produce the same report.
        reports = []
        for routing in (None, RoutingConfig(policy="static")):
            cluster = _zone_cluster(routing=routing)
            reports.append(
                Server(cluster, [_tenant("w", 50_000.0, 400)], ServerConfig()).run()
            )
        assert reports[0].tenant_rows == reports[1].tenant_rows
        assert reports[0].shard_rows == reports[1].shard_rows
        assert reports[0].sim_seconds == reports[1].sim_seconds

    def test_goodput_window_covers_shed_tail(self):
        # Regression: with the tail fully shed by rate limiting, the last
        # *arrival* is far past the last completion; goodput normalized
        # by completions alone was inflated by the missing window.
        cluster = _zone_cluster(num_shards=1)
        tenant = _tenant(
            "starved", 100_000.0, 2_000,
            rate_limit_ops_per_sec=100.0, rate_limit_burst=1.0,
        )
        server = Server(cluster, [tenant], ServerConfig())
        report = server.run()
        row = report.tenant_rows[0]
        assert row["shed_rate_limited"] > row["completed"]
        assert server._last_arrival_ns > server._end_ns
        assert report.sim_seconds == server._last_arrival_ns / SEC
        goodput_ops = row["goodput_kops"] * 1000
        # The admitted rate is bucket-bounded (burst + rate * window); an
        # honest window respects that bound, the old
        # completions-only window inflated past it.
        span_s = server._last_arrival_ns / SEC
        assert goodput_ops <= (1.0 + 100.0 * span_s) / span_s + 1e-6
        buggy_window = server.tenants[0].slo.within_slo / (server._end_ns / SEC)
        assert goodput_ops < buggy_window


# --------------------------------------------------------------------------
# The gc-qos grid: deterministic, and the loop actually closes
# --------------------------------------------------------------------------

class TestGcQosSmoke:
    @pytest.fixture(scope="class")
    def smoke_rows(self):
        from repro.bench.experiments import run_gc_qos_smoke

        return run_gc_qos_smoke()

    def test_grid_shape(self, smoke_rows):
        combos = {(r["pacing"], r["routing"]) for r in smoke_rows}
        assert combos == {
            ("static", "static"), ("static", "gc_aware"),
            ("adaptive", "static"), ("adaptive", "gc_aware"),
        }

    def test_loop_is_driven(self, smoke_rows):
        assert all(r["gc_victims"] > 0 for r in smoke_rows)
        for row in smoke_rows:
            if row["routing"] == "gc_aware":
                assert row["rerouted_writes"] > 0
            else:
                assert row["rerouted_writes"] == 0
            if row["pacing"] == "adaptive":
                assert row["gc_pace_adjustments"] > 0
            else:
                assert row["gc_pace_adjustments"] == 0

    def test_deterministic(self, smoke_rows):
        from repro.bench.experiments import run_gc_qos_smoke

        assert run_gc_qos_smoke() == smoke_rows
