"""Focused tests for the F2FS cleaner: pacing, victim policies, hooks."""

import random

import pytest

from repro.f2fs import CleanerConfig, F2fs, F2fsConfig, VictimPolicy, fsck
from repro.flash import NandGeometry, NullBlkDevice, ZnsConfig, ZnsSsd
from repro.sim import SimClock
from repro.units import KIB, MIB

PAGE = 4 * KIB


def make_fs(pace_blocks=8, low_watermark=3, policy=VictimPolicy.COST_BENEFIT):
    clock = SimClock()
    geometry = NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=256)
    zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=8 * geometry.block_size))
    meta = NullBlkDevice(clock, capacity_bytes=8 * MIB)
    fs = F2fs(
        clock, zns, meta,
        F2fsConfig(checkpoint_interval_blocks=1 << 30),
        CleanerConfig(low_watermark=low_watermark, pace_blocks=pace_blocks, policy=policy),
    )
    fs.mkfs()
    return fs, clock


def churn(fs, blocks=6000, spread=600, seed=5):
    handle = fs.create("data")
    rng = random.Random(seed)
    for step in range(blocks):
        handle.pwrite(rng.randrange(spread) * PAGE, bytes([step % 251 + 1]) * PAGE)
    return handle


class TestCleanerConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"low_watermark": 0}, {"pace_blocks": 0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CleanerConfig(**kwargs)


class TestCleanerPacing:
    def test_background_step_bounded(self):
        """No single trigger migrates more than pace_blocks blocks — the
        low-tail-latency property the paper credits F2FS for."""
        fs, _ = make_fs(pace_blocks=4)
        handle = fs.create("data")
        rng = random.Random(7)
        max_step = 0
        for step in range(4000):
            before = fs.cleaner.blocks_migrated
            handle.pwrite(rng.randrange(500) * PAGE, b"\x42" * PAGE)
            moved = fs.cleaner.blocks_migrated - before
            max_step = max(max_step, moved)
        assert fs.cleaner.sections_cleaned > 0
        assert max_step <= 4

    def test_victim_finished_across_steps(self):
        fs, _ = make_fs(pace_blocks=2)
        churn(fs, blocks=5000)
        # The incremental victim must never be left dangling forever.
        assert fs.cleaner.sections_cleaned > 0
        assert fsck(fs).clean

    def test_needs_cleaning_threshold(self):
        fs, _ = make_fs(low_watermark=5)
        assert not fs.cleaner.needs_cleaning()
        # Consume sections until below the watermark.
        handle = fs.create("data")
        i = 0
        while fs.logs.free_section_count >= 5:
            handle.pwrite(i * PAGE, b"\x01" * PAGE)
            i += 1
        assert fs.cleaner.needs_cleaning()


class TestVictimPolicies:
    @pytest.mark.parametrize("policy", [VictimPolicy.GREEDY, VictimPolicy.COST_BENEFIT])
    def test_policies_clean_and_stay_consistent(self, policy):
        fs, _ = make_fs(policy=policy)
        churn(fs, blocks=5000)
        assert fs.cleaner.sections_cleaned > 0
        report = fsck(fs)
        assert report.clean, report.errors

    def test_greedy_prefers_emptier_sections(self):
        fs, _ = make_fs(policy=VictimPolicy.GREEDY)
        # Build two used sections with different valid fractions by
        # overwriting one file's blocks (invalidating its old section).
        handle = fs.create("data")
        blocks_per_section = fs.layout.blocks_per_section
        for i in range(blocks_per_section):
            handle.pwrite(i * PAGE, b"\x01" * PAGE)
        for i in range(blocks_per_section // 2):
            handle.pwrite(i * PAGE, b"\x02" * PAGE)  # invalidates half of s0
        victim = fs.cleaner._pick_victim()
        assert victim is not None
        # The victim must not be a pristine (fully valid) section when a
        # half-dead one exists.
        fractions = [
            fs.sit.valid_fraction(s)
            for s in range(fs.layout.num_sections)
            if not fs.logs.is_free(s) and s not in fs.logs.open_sections()
        ]
        assert fs.sit.valid_fraction(victim) == min(fractions)


class TestCleanerCallbacks:
    def test_migrated_blocks_keep_owner_coherence(self):
        fs, _ = make_fs()
        handle = churn(fs, blocks=5000)
        assert fs.cleaner.blocks_migrated > 0
        report = fsck(fs)
        assert report.clean, report.errors[:3]
