"""Cross-layer integration tests: each scheme's full stack under load,
with substrate-level invariants checked afterwards."""


from repro.bench.experiments import _populate
from repro.bench.schemes import (
    SchemeScale,
    build_block_cache,
    build_file_cache,
    build_region_cache,
    build_zone_cache,
)
from repro.f2fs import fsck
from repro.sim import SimClock
from repro.units import KIB
from repro.workloads import CacheBenchConfig, CacheBenchDriver

SCALE = SchemeScale(
    zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
    ram_bytes=32 * KIB,
)
MEDIA = 20 * SCALE.zone_size
CACHE = 14 * SCALE.zone_size

WORKLOAD = CacheBenchConfig(
    num_ops=6000, num_keys=3000, zipf_theta=1.0, warmup_ops=3000,
    set_on_miss=True,
)


def run_mix(stack):
    driver = CacheBenchDriver(WORKLOAD)
    _populate(driver, stack)
    return driver.run(stack.cache)


class TestRegionCacheStack:
    def test_mix_and_invariants(self):
        stack = build_region_cache(SimClock(), SCALE, MEDIA, CACHE)
        result = run_mix(stack)
        assert result.operations > 0
        layer = stack.substrate["layer"]
        device = stack.substrate["device"]
        # ZNS device never amplifies; every media write was host-issued.
        assert device.stats.media_write_bytes == device.stats.host_write_bytes
        # The layer's mapping covers exactly the cache's live regions.
        assert layer.live_regions <= stack.cache.config.num_regions
        # Zone write pointers are always within bounds and zone states legal.
        for zone in device.zones:
            assert zone.start <= zone.write_pointer <= zone.end
        # Open-zone budget respected throughout (checked at the end here;
        # the device itself raises if it is ever exceeded mid-run).
        assert device.open_zone_count <= device.config.max_open_zones

    def test_gc_accounting_consistent(self):
        stack = build_region_cache(SimClock(), SCALE, MEDIA, CACHE)
        run_mix(stack)
        layer = stack.substrate["layer"]
        assert layer.stats.migrated_region_writes == layer.gc.regions_migrated
        assert layer.stats.gc_zone_resets == layer.gc.zones_collected


class TestZoneCacheStack:
    def test_mix_and_invariants(self):
        stack = build_zone_cache(SimClock(), SCALE, MEDIA)
        run_mix(stack)
        device = stack.substrate["device"]
        store = stack.substrate["store"]
        assert device.stats.write_amplification == 1.0
        # Every zone is either empty, full, or the one being filled.
        open_zones = [z for z in device.zones if z.is_open]
        assert len(open_zones) <= 1
        assert store.zone_resets > 0  # evictions really reset zones


class TestFileCacheStack:
    def test_mix_leaves_consistent_fs(self):
        stack = build_file_cache(SimClock(), SCALE, 2 * MEDIA, CACHE)
        run_mix(stack)
        fs = stack.substrate["fs"]
        report = fsck(fs)
        assert report.clean, report.errors[:3]
        # The cache file exists and covers the cache extent.
        assert fs.exists("cachelib.navy")

    def test_fs_remount_preserves_cache_file(self):
        from repro.f2fs import F2fs, F2fsConfig

        stack = build_file_cache(SimClock(), SCALE, 2 * MEDIA, CACHE)
        run_mix(stack)
        fs = stack.substrate["fs"]
        fs.checkpoint()
        remounted = F2fs.mount(
            SimClock(), fs.data_device, fs.meta_device,
            F2fsConfig(checkpoint_interval_blocks=1 << 30),
        )
        assert remounted.exists("cachelib.navy")
        assert fsck(remounted).clean


class TestBlockCacheStack:
    def test_mix_and_write_pattern(self):
        stack = build_block_cache(SimClock(), SCALE, MEDIA, CACHE)
        run_mix(stack)
        device = stack.substrate["device"]
        # Host writes are whole regions: write bytes divide region size.
        assert device.stats.host_write_bytes % SCALE.region_size == 0
        assert device.stats.write_amplification >= 1.0

    def test_mapping_integrity_after_mix(self):
        stack = build_block_cache(SimClock(), SCALE, MEDIA, CACHE)
        run_mix(stack)
        ftl = stack.substrate["device"].ftl
        locations = {}
        for lpn in range(ftl.logical_pages):
            loc = ftl.physical_of(lpn)
            if loc is not None:
                assert loc not in locations, "two logical pages share a slot"
                locations[loc] = lpn


class TestSchemeComparability:
    def test_all_schemes_answer_identically(self):
        """Same workload, same answers: the scheme only changes *where*
        bytes live, never correctness."""
        results = {}
        for name, builder in (
            ("region", lambda c: build_region_cache(c, SCALE, MEDIA, CACHE)),
            ("zone", lambda c: build_zone_cache(c, SCALE, MEDIA)),
            ("block", lambda c: build_block_cache(c, SCALE, MEDIA, CACHE)),
        ):
            stack = builder(SimClock())
            cache = stack.cache
            for i in range(500):
                cache.set(f"key{i:04d}".encode(), f"value{i}".encode())
            results[name] = [
                cache.get(f"key{i:04d}".encode()) for i in range(0, 500, 7)
            ]
        assert results["region"] == results["zone"] == results["block"]
