"""Tests for the I/O trace module, the F2FS fsck, and the CLI."""

import random

import pytest

from repro.cli import build_parser, run
from repro.f2fs import CleanerConfig, F2fs, F2fsConfig, fsck
from repro.flash import (
    IoEvent,
    IoTrace,
    NandGeometry,
    NullBlkDevice,
    TracingBlockDevice,
    ZnsConfig,
    ZnsSsd,
)
from repro.sim import SimClock
from repro.units import KIB, MIB

PAGE = 4 * KIB


class TestIoTrace:
    def make_traced(self):
        clock = SimClock()
        device = TracingBlockDevice(NullBlkDevice(clock, capacity_bytes=1 * MIB))
        return device, clock

    def test_records_reads_and_writes(self):
        device, _ = self.make_traced()
        device.write(0, b"x" * PAGE)
        device.read(0, PAGE)
        assert len(device.trace) == 2
        assert device.trace.events[0].op == "write"
        assert device.trace.events[1].op == "read"

    def test_timestamps_increase(self):
        device, _ = self.make_traced()
        device.write(0, b"x" * PAGE)
        device.write(PAGE, b"x" * PAGE)
        t0, t1 = (e.timestamp_ns for e in device.trace.events)
        assert t1 > t0

    def test_bytes_by_op(self):
        device, _ = self.make_traced()
        device.write(0, b"x" * PAGE)
        device.write(PAGE, b"x" * PAGE)
        device.read(0, PAGE)
        assert device.trace.bytes_by_op() == {"write": 2 * PAGE, "read": PAGE}

    def test_sequential_fraction(self):
        device, _ = self.make_traced()
        for i in range(4):
            device.write(i * PAGE, b"x" * PAGE)  # fully sequential
        assert device.trace.sequential_fraction("write") == 1.0
        device.write(32 * PAGE, b"x" * PAGE)  # one jump
        assert device.trace.sequential_fraction("write") == pytest.approx(3 / 4)

    def test_csv_output(self):
        device, _ = self.make_traced()
        device.write(0, b"x" * PAGE)
        csv = device.trace.to_csv()
        assert csv.splitlines()[0] == "timestamp_ns,op,offset,length,latency_ns"
        assert len(csv.splitlines()) == 2

    def test_delegates_device_properties(self):
        device, _ = self.make_traced()
        assert device.capacity_bytes == 1 * MIB
        assert device.block_size == PAGE
        device.write(0, b"x" * PAGE)
        assert device.stats.host_write_bytes == PAGE

    def test_clear(self):
        trace = IoTrace()
        trace.record(IoEvent(0, "read", 0, 10, 5))
        trace.clear()
        assert len(trace) == 0


class TestFsck:
    def make_fs(self):
        clock = SimClock()
        geometry = NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=256)
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=8 * geometry.block_size))
        meta = NullBlkDevice(clock, capacity_bytes=8 * MIB)
        fs = F2fs(clock, zns, meta, F2fsConfig(checkpoint_interval_blocks=1 << 30),
                  CleanerConfig())
        fs.mkfs()
        return fs

    def populate(self, fs, blocks=600, seed=3):
        handle = fs.create("data")
        rng = random.Random(seed)
        for step in range(blocks):
            index = rng.randrange(blocks // 2)
            handle.pwrite(index * PAGE, bytes([step % 251 + 1]) * PAGE)
        return handle

    def test_clean_after_churn(self):
        fs = self.make_fs()
        self.populate(fs)
        report = fsck(fs)
        assert report.clean, report.errors
        assert report.checked_blocks > 0

    def test_clean_after_cleaning_and_remount(self):
        fs = self.make_fs()
        self.populate(fs, blocks=3000)
        assert fs.cleaner.sections_cleaned > 0
        assert fsck(fs).clean
        fs.checkpoint()
        remounted = F2fs.mount(SimClock(), fs.data_device, fs.meta_device,
                               F2fsConfig(checkpoint_interval_blocks=1 << 30))
        assert fsck(remounted).clean

    def test_detects_lost_block(self):
        fs = self.make_fs()
        self.populate(fs)
        # Corrupt: invalidate a mapped block behind the filesystem's back.
        file_id = fs.nat.lookup_file("data")
        addr = fs.nat.get_block(file_id, 0)
        fs.sit.mark_invalid(addr)
        report = fsck(fs)
        assert not report.clean

    def test_detects_owner_mismatch(self):
        fs = self.make_fs()
        self.populate(fs)
        file_id = fs.nat.lookup_file("data")
        addr = fs.nat.get_block(file_id, 0)
        fs.sit.mark_valid(addr, (file_id, 999_999))
        assert not fsck(fs).clean

    def test_detects_shared_block(self):
        fs = self.make_fs()
        self.populate(fs)
        file_id = fs.nat.lookup_file("data")
        addr = fs.nat.get_block(file_id, 0)
        other = fs.create("other")
        fs.nat.set_block(other.file_id, 0, addr)
        fs.nat.update_size(other.file_id, PAGE)
        assert not fsck(fs).clean


class TestCli:
    def test_parser_accepts_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["fig2", "--quick"])
        assert args.experiment == "fig2"
        assert args.quick

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    @pytest.mark.slow
    def test_cli_runs_fig3_quick(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = run(["fig3", "--quick", "--csv", str(csv_path), "--max-rows", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "experiment" in header
