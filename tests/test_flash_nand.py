"""Unit tests for NAND geometry and timing."""

import pytest

from repro.flash.nand import NandGeometry, NandTiming
from repro.units import KIB


class TestNandGeometry:
    def test_derived_sizes(self):
        geo = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=8)
        assert geo.block_size == 64 * KIB
        assert geo.total_bytes == 512 * KIB
        assert geo.total_pages == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_size": 0},
            {"pages_per_block": 0},
            {"num_blocks": -1},
            {"parallelism": 0},
        ],
    )
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NandGeometry(**kwargs)


class TestNandTiming:
    def test_transfer_scales_with_bytes(self):
        timing = NandTiming(bus_ns_per_byte=1.0)
        assert timing.transfer_ns(100) == 100

    def test_read_uses_parallelism(self):
        timing = NandTiming(
            page_read_ns=100, bus_ns_per_byte=0.0, command_overhead_ns=0
        )
        # 8 pages over parallelism 4 -> 2 serial read steps.
        assert timing.read_ns(8, 0, parallelism=4) == 200

    def test_program_rounds_up_serial_steps(self):
        timing = NandTiming(
            page_program_ns=100, bus_ns_per_byte=0.0, command_overhead_ns=0
        )
        assert timing.program_ns(9, 0, parallelism=4) == 300

    def test_zero_pages_costs_only_overhead(self):
        timing = NandTiming(command_overhead_ns=7)
        assert timing.read_ns(0, 0, parallelism=4) == 7
        assert timing.program_ns(0, 0, parallelism=4) == 7

    def test_erase_serial(self):
        timing = NandTiming(block_erase_ns=1000, command_overhead_ns=0)
        assert timing.erase_ns(3) == 3000

    def test_negative_timing_rejected(self):
        with pytest.raises(ValueError):
            NandTiming(page_read_ns=-1)
