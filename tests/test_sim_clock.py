"""Unit tests for the simulated clock and resource timeline."""

import pytest

from repro.sim.clock import ResourceTimeline, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(start_ns=100).now == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_ns=-1)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(50)
        assert clock.now == 50

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start_ns=100)
        clock.advance_to(50)
        assert clock.now == 100

    def test_now_seconds(self):
        clock = SimClock()
        clock.advance(2_500_000_000)
        assert clock.now_seconds == pytest.approx(2.5)


class TestResourceTimeline:
    def test_idle_resource_no_wait(self):
        line = ResourceTimeline()
        done = line.acquire(now_ns=0, service_ns=100)
        assert done == 100
        assert line.total_wait_ns == 0

    def test_busy_resource_queues(self):
        line = ResourceTimeline()
        line.acquire(0, 100)
        done = line.acquire(50, 10)
        assert done == 110
        assert line.total_wait_ns == 50

    def test_wait_time_observation(self):
        line = ResourceTimeline()
        line.acquire(0, 100)
        assert line.wait_time(30) == 70
        assert line.wait_time(200) == 0

    def test_background_reservation_delays_foreground(self):
        line = ResourceTimeline()
        line.reserve_background(0, 1000)
        done = line.acquire(100, 10)
        assert done == 1010
        # Background reservation itself charges no wait.
        assert line.total_wait_ns == 900

    def test_negative_service_rejected(self):
        line = ResourceTimeline()
        with pytest.raises(ValueError):
            line.acquire(0, -5)
        with pytest.raises(ValueError):
            line.reserve_background(0, -5)

    def test_busy_accounting(self):
        line = ResourceTimeline()
        line.acquire(0, 100)
        line.acquire(0, 50)
        assert line.total_busy_ns == 150

    def test_interleaved_background_and_foreground_wait_charging(self):
        # Regression for the shared validation/occupancy path: background
        # reservations and foreground acquisitions interleave on one
        # timeline, but only foreground waits are charged.
        line = ResourceTimeline()
        done = line.acquire(0, 100)  # fg: busy until 100, no wait
        assert done == 100 and line.total_wait_ns == 0
        line.reserve_background(40, 200)  # bg queues behind fg: 100..300
        assert line.busy_until == 300
        assert line.total_wait_ns == 0  # bg wait (60ns) not charged
        done = line.acquire(150, 10)  # fg waits behind the bg work
        assert done == 310
        assert line.total_wait_ns == 150  # only the fg wait is charged
        line.reserve_background(310, 50)  # bg with no queueing: no change
        assert line.total_wait_ns == 150
        assert line.total_busy_ns == 360
        assert line.busy_until == 360
