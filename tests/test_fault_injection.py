"""Fault-injection torture tests.

Three guarantees, checked across every scheme backend:

* **availability** — with transient media errors, open-resource
  exhaustion, latency spikes and mid-run zone deaths injected, the cache
  keeps answering gets and sets instead of crashing;
* **accounting** — every injected fault is visible somewhere: the
  injector's own :class:`FaultStats` plus the retry / degraded-miss /
  quarantine counters the stack layers keep;
* **determinism** — the same seed and the same fault plan reproduce the
  same injections, the same stats and the same final sim-clock instant.
"""

import random

import pytest

from repro.bench.schemes import SchemeScale, build_scheme
from repro.errors import (
    AppendFailedError,
    PowerCutError,
    TransientMediaError,
    ZoneResourceError,
)
from repro.sim import (
    FaultInjector,
    FaultKind,
    FaultRule,
    IoOp,
    IoRequest,
    RetryPolicy,
    SimClock,
    ZoneFault,
)
from repro.units import KIB, MIB

SCALE = SchemeScale(
    zone_size=1 * MIB,
    region_size=16 * KIB,
    pages_per_block=64,
    ram_bytes=64 * KIB,
)
# Zone-Cache's region *is* the zone, so it gets small zones — otherwise
# the whole working set sits in the open region buffer and the device
# sees no traffic to inject faults into.
ZONE_SCALE = SchemeScale(
    zone_size=128 * KIB,
    region_size=16 * KIB,
    pages_per_block=16,
    ram_bytes=64 * KIB,
)
MEDIA = 16 * MIB
CACHE = 8 * MIB
SCHEMES = ("Block-Cache", "Zone-Cache", "File-Cache", "Region-Cache")


def build(scheme, clock, faults):
    scale = ZONE_SCALE if scheme == "Zone-Cache" else SCALE
    return build_scheme(scheme, clock, scale, MEDIA, CACHE, faults=faults)


def run_workload(stack, ops=2000, keys=300, seed=1):
    """Mixed set/get churn; returns (hits, misses) over the gets.

    Values are ~1 KiB so the working set spills well past the 64 KiB RAM
    tier: gets reach flash and sets force region flushes — without real
    device traffic the fault gate would have nothing to inject into.
    """
    rng = random.Random(seed)
    cache = stack.cache
    hits = misses = 0
    for i in range(ops):
        key = f"key{rng.randrange(keys):04d}".encode()
        if rng.random() < 0.5:
            cache.set(key, f"v{i}".encode() * 200)
        elif cache.get(key) is not None:
            hits += 1
        else:
            misses += 1
    return hits, misses


def stack_retries(stack) -> int:
    """Transient retries recorded anywhere in the scheme's layers."""
    total = stack.cache.stats.retries
    layer = stack.substrate.get("layer")
    if layer is not None:
        total += layer.stats.gc_retries
    fs = stack.substrate.get("fs")
    if fs is not None:
        total += fs.stats.io_retries + fs.cleaner.io_retries
    return total


class TestFaultPlanValidation:
    def test_rule_rejects_scheduled_kinds(self):
        with pytest.raises(ValueError):
            FaultRule(FaultKind.ZONE_OFFLINE)
        with pytest.raises(ValueError):
            FaultRule(FaultKind.POWER_CUT)

    def test_rule_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultRule(FaultKind.MEDIA_ERROR, probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(FaultKind.MEDIA_ERROR, probability=-0.1)

    def test_latency_rule_needs_extra_latency(self):
        with pytest.raises(ValueError):
            FaultRule(FaultKind.LATENCY)
        FaultRule(FaultKind.LATENCY, extra_latency_ns=1000)  # ok

    def test_zone_fault_kind_restricted(self):
        with pytest.raises(ValueError):
            ZoneFault(at_ns=0, zone_index=0, kind=FaultKind.MEDIA_ERROR)
        ZoneFault(at_ns=0, zone_index=0, kind=FaultKind.ZONE_READONLY)  # ok

    def test_retry_policy_backoff_grows(self):
        policy = RetryPolicy(max_attempts=4, backoff_ns=100, multiplier=3)
        assert [policy.backoff_for(i) for i in range(3)] == [100, 300, 900]
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestInjectorGate:
    """Direct inspect() behaviour, no device underneath."""

    def gate(self, injector, op=IoOp.READ, layer="block", zone=None):
        request = IoRequest(op=op, offset=0, length=4096, zone=zone, layer=layer)
        return injector.inspect("block", request, service_ns=1000)

    def test_error_kinds_raise_their_types(self):
        cases = [
            (FaultKind.MEDIA_ERROR, TransientMediaError, IoOp.READ),
            (FaultKind.ZONE_RESOURCE, ZoneResourceError, IoOp.WRITE),
            (FaultKind.APPEND_ERROR, AppendFailedError, IoOp.APPEND),
        ]
        for kind, error, op in cases:
            injector = FaultInjector(seed=1, rules=(FaultRule(kind),))
            injector.bind(SimClock(), None)
            with pytest.raises(error):
                self.gate(injector, op=op)
            assert injector.stats.count(kind) == 1

    def test_append_rule_ignores_non_append_ops(self):
        injector = FaultInjector(seed=1, rules=(FaultRule(FaultKind.APPEND_ERROR),))
        injector.bind(SimClock(), None)
        assert self.gate(injector, op=IoOp.WRITE) == 0

    def test_latency_rule_returns_extra_and_accounts(self):
        rule = FaultRule(FaultKind.LATENCY, extra_latency_ns=5000)
        injector = FaultInjector(seed=1, rules=(rule,))
        injector.bind(SimClock(), None)
        assert self.gate(injector) == 5000
        assert self.gate(injector) == 5000
        assert injector.stats.latency_injected_ns == 10_000
        assert injector.stats.count(FaultKind.LATENCY) == 2

    def test_after_requests_and_max_injections(self):
        rule = FaultRule(FaultKind.MEDIA_ERROR, after_requests=2, max_injections=1)
        injector = FaultInjector(seed=1, rules=(rule,))
        injector.bind(SimClock(), None)
        assert self.gate(injector) == 0  # warm-up 1
        assert self.gate(injector) == 0  # warm-up 2
        with pytest.raises(TransientMediaError):
            self.gate(injector)  # fires once
        assert self.gate(injector) == 0  # capped
        assert injector.stats.count(FaultKind.MEDIA_ERROR) == 1

    def test_filters_layer_op_zone(self):
        rule = FaultRule(FaultKind.MEDIA_ERROR, layer="ztl", op="read", zone=3)
        injector = FaultInjector(seed=1, rules=(rule,))
        injector.bind(SimClock(), None)
        assert self.gate(injector, layer="block", zone=3) == 0
        assert self.gate(injector, layer="ztl.gc", op=IoOp.WRITE, zone=3) == 0
        assert self.gate(injector, layer="ztl.gc", zone=1) == 0
        with pytest.raises(TransientMediaError):
            self.gate(injector, layer="ztl.gc", zone=3)

    def test_disabled_injector_is_transparent(self):
        injector = FaultInjector(seed=1, rules=(FaultRule(FaultKind.MEDIA_ERROR),))
        injector.bind(SimClock(), None)
        injector.disable()
        for _ in range(50):
            assert self.gate(injector) == 0
        assert injector.stats.total_injected == 0

    def test_probability_stream_is_seed_deterministic(self):
        def fire_pattern(seed):
            rule = FaultRule(FaultKind.MEDIA_ERROR, probability=0.3)
            injector = FaultInjector(seed=seed, rules=(rule,))
            injector.bind(SimClock(), None)
            pattern = []
            for _ in range(200):
                try:
                    self.gate(injector)
                    pattern.append(0)
                except TransientMediaError:
                    pattern.append(1)
            return pattern

        a, b = fire_pattern(9), fire_pattern(9)
        assert a == b
        assert 0 < sum(a) < 200  # actually probabilistic
        assert fire_pattern(10) != a  # and seed-sensitive

    def test_zone_faults_due_in_order_and_consumed_once(self):
        plan = (
            ZoneFault(at_ns=500, zone_index=2),
            ZoneFault(at_ns=100, zone_index=1, kind=FaultKind.ZONE_READONLY),
        )
        injector = FaultInjector(seed=1, zone_faults=plan)
        assert injector.due_zone_faults(50) == []
        due = injector.due_zone_faults(100)
        assert [fault.zone_index for fault in due] == [1]
        assert injector.due_zone_faults(100) == []  # consumed
        assert [f.zone_index for f in injector.due_zone_faults(10_000)] == [2]

    def test_torn_write_window(self):
        injector = FaultInjector(seed=1, power_cut_at_ns=1_000_000)
        injector.bind(SimClock(), None)
        # Write completes before the cut: untouched.
        assert injector.torn_write_bytes(0, 500_000, 8192, 4096) is None
        # Cut lands mid-write: an aligned prefix survives.
        keep = injector.torn_write_bytes(900_000, 200_000, 8192, 4096)
        assert keep == 4096
        assert injector.stats.torn_writes == 1
        assert injector.stats.torn_bytes_dropped == 8192 - 4096
        # Write issued after the cut: nothing survives.
        assert injector.torn_write_bytes(1_000_000, 100, 8192, 4096) == 0

    def test_power_trip_and_restore(self):
        clock = SimClock()
        injector = FaultInjector(seed=1, power_cut_at_ns=1_000)
        injector.bind(clock, None)
        clock.advance(2_000)
        request = IoRequest(op=IoOp.READ, length=512)
        with pytest.raises(PowerCutError):
            injector.inspect("block", request, 100)
        with pytest.raises(PowerCutError):  # stays dead until restored
            injector.inspect("block", IoRequest(op=IoOp.READ, length=512), 100)
        assert injector.stats.power_cuts == 1
        injector.restore_power()
        assert injector.inspect("block", IoRequest(op=IoOp.READ, length=512), 100) == 0


def one_rule_injector(kind, seed=11):
    if kind is FaultKind.MEDIA_ERROR:
        rule = FaultRule(kind, probability=0.05, op="read", after_requests=20)
    elif kind is FaultKind.ZONE_RESOURCE:
        rule = FaultRule(kind, probability=0.05, op="write")
    else:
        rule = FaultRule(kind, probability=0.1, extra_latency_ns=500_000)
    return FaultInjector(seed=seed, rules=(rule,))


class TestFaultMatrix:
    """kind x backend: every scheme survives every per-request fault."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize(
        "kind",
        [FaultKind.MEDIA_ERROR, FaultKind.ZONE_RESOURCE, FaultKind.LATENCY],
        ids=lambda kind: kind.value,
    )
    def test_scheme_survives_and_accounts(self, scheme, kind):
        clock = SimClock()
        faults = one_rule_injector(kind)
        stack = build(scheme, clock, faults)
        hits, misses = run_workload(stack)
        assert faults.stats.count(kind) > 0, "fault plan never fired"
        assert hits > 0, "cache stopped serving under faults"
        if kind is FaultKind.LATENCY:
            rule = faults.rules[0]
            assert faults.stats.latency_injected_ns == (
                faults.stats.count(kind) * rule.extra_latency_ns
            )
        else:
            # Every raised fault surfaced as a retry, a degraded miss or
            # a failed operation somewhere in the stack.
            survived = (
                stack_retries(stack)
                + stack.cache.stats.degraded_misses
                + stack.cache.stats.io_errors
            )
            assert survived > 0

    def test_append_errors_on_zone_append_ztl(self):
        # Zone append is an opt-in ZTL mode (use_zone_append), so the
        # append-failure kind gets a hand-built Region-Cache stack.
        from repro.cache import CacheConfig, HybridCache
        from repro.cache.backends import ZtlRegionStore
        from repro.flash import NandGeometry, ZnsConfig, ZnsSsd
        from repro.ztl import GcConfig, RegionTranslationLayer, ZtlConfig

        clock = SimClock()
        faults = FaultInjector(
            seed=11, rules=(FaultRule(FaultKind.APPEND_ERROR, probability=0.05),)
        )
        geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=256)
        device = ZnsSsd(
            clock,
            ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size),
            faults=faults,
        )
        layer = RegionTranslationLayer(
            device,
            ZtlConfig(
                region_size=16 * KIB,
                use_zone_append=True,
                gc=GcConfig(min_empty_zones=2),
            ),
        )
        store = ZtlRegionStore(layer, 160)
        config = CacheConfig(region_size=16 * KIB, num_regions=160, ram_bytes=8 * KIB)
        cache = HybridCache(clock, store, config)
        rng = random.Random(1)
        hits = 0
        for i in range(2000):
            key = f"key{rng.randrange(300):04d}".encode()
            if rng.random() < 0.5:
                cache.set(key, f"v{i}".encode() * 200)
            elif cache.get(key) is not None:
                hits += 1
        assert faults.stats.count(FaultKind.APPEND_ERROR) > 0
        assert hits > 0
        assert cache.stats.retries + layer.stats.gc_retries > 0

    @pytest.mark.parametrize("scheme", SCHEMES[:2])
    def test_same_seed_reproduces_run(self, scheme):
        def run():
            clock = SimClock()
            faults = FaultInjector(
                seed=13,
                rules=(
                    FaultRule(FaultKind.MEDIA_ERROR, probability=0.01, op="read"),
                    FaultRule(FaultKind.ZONE_RESOURCE, probability=0.005, op="write"),
                    FaultRule(
                        FaultKind.LATENCY, probability=0.02, extra_latency_ns=100_000
                    ),
                ),
            )
            stack = build(scheme, clock, faults)
            hits, misses = run_workload(stack)
            return (
                hits,
                misses,
                clock.now,
                dict(faults.stats.injected),
                faults.stats.latency_injected_ns,
                stack.cache.stats.snapshot(),
            )

        first, second = run(), run()
        assert first == second


class TestZoneDeath:
    def test_zone_cache_survives_zone_flip(self):
        clock = SimClock()
        faults = FaultInjector(
            seed=5,
            zone_faults=(
                ZoneFault(
                    at_ns=2_000_000, zone_index=2, kind=FaultKind.ZONE_READONLY
                ),
            ),
        )
        stack = build("Zone-Cache", clock, faults)
        hits, _ = run_workload(stack, ops=2500)
        assert faults.stats.zone_faults_applied == 1
        assert hits > 0
        device = stack.substrate["device"]
        assert device.zones[2].is_dead

    def test_region_cache_retires_dead_zone(self):
        clock = SimClock()
        faults = FaultInjector(
            seed=5,
            zone_faults=(ZoneFault(at_ns=2_000_000, zone_index=1),),
        )
        stack = build_scheme("Region-Cache", clock, SCALE, MEDIA, CACHE, faults=faults)
        hits, _ = run_workload(stack, ops=2500)
        assert faults.stats.zone_faults_applied == 1
        assert hits > 0
        layer = stack.substrate["layer"]
        assert layer.stats.dead_zones >= 1
        assert layer.book.dead_count >= 1

    def test_file_cache_retires_dead_section(self):
        clock = SimClock()
        faults = FaultInjector(
            seed=5,
            zone_faults=(ZoneFault(at_ns=2_000_000, zone_index=1),),
        )
        stack = build_scheme("File-Cache", clock, SCALE, MEDIA, CACHE, faults=faults)
        hits, _ = run_workload(stack, ops=2500)
        assert faults.stats.zone_faults_applied == 1
        assert hits > 0
        fs = stack.substrate["fs"]
        assert fs.stats.dead_sections >= 1

    def test_block_cache_has_no_zones_to_kill(self):
        clock = SimClock()
        faults = FaultInjector(
            seed=5,
            zone_faults=(ZoneFault(at_ns=2_000_000, zone_index=1),),
        )
        stack = build_scheme("Block-Cache", clock, SCALE, MEDIA, CACHE, faults=faults)
        hits, _ = run_workload(stack)
        assert faults.stats.zone_faults_applied == 0
        assert hits > 0


class TestPowerCutSmoke:
    """The detailed recovery oracle lives in test_warm_restart; here we
    check the cut itself fires deterministically through a full stack."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_cut_interrupts_the_workload(self, scheme):
        clock = SimClock()
        faults = FaultInjector(seed=3, power_cut_at_ns=20_000_000)
        stack = build(scheme, clock, faults)
        with pytest.raises(PowerCutError):
            run_workload(stack, ops=100_000)
        assert faults.stats.power_cuts == 1
        assert clock.now >= 20_000_000
        # Still dark: the next flush that reaches the device fails too
        # (a buffered set alone never leaves RAM, so force the flush).
        with pytest.raises(PowerCutError):
            stack.cache.set(b"after", b"the-lights-went-out")
            stack.cache.flush()
