"""Tests for workload generators: distributions and drivers."""

import pytest

from repro.bench.schemes import SchemeScale, build_block_cache
from repro.sim import SimClock
from repro.units import KIB
from repro.workloads import (
    CacheBenchConfig,
    CacheBenchDriver,
    ExpRangeSampler,
    UniformSampler,
    ValueSizeSampler,
    ZipfSampler,
)


class TestUniformSampler:
    def test_range(self):
        sampler = UniformSampler(100, seed=1)
        samples = [sampler.sample() for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)
        assert len(set(samples)) > 50

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformSampler(0)


class TestZipfSampler:
    def test_skew_increases_with_theta(self):
        def top_fraction(theta):
            sampler = ZipfSampler(10_000, theta, seed=2)
            hot = {sampler.key_of_rank(r) for r in range(100)}
            hits = sum(sampler.sample() in hot for _ in range(5000))
            return hits / 5000

        assert top_fraction(1.2) > top_fraction(0.6)

    def test_rank_zero_is_hottest(self):
        sampler = ZipfSampler(1000, 1.0, seed=3)
        hottest = sampler.key_of_rank(0)
        counts = {}
        for _ in range(20000):
            k = sampler.sample()
            counts[k] = counts.get(k, 0) + 1
        assert counts.get(hottest, 0) == max(counts.values())

    def test_deterministic(self):
        a = ZipfSampler(1000, 0.9, seed=5)
        b = ZipfSampler(1000, 0.9, seed=5)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_rank_bounds(self):
        sampler = ZipfSampler(10, 1.0)
        with pytest.raises(IndexError):
            sampler.key_of_rank(10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=-1)


class TestExpRangeSampler:
    def test_range(self):
        sampler = ExpRangeSampler(1000, 15.0, seed=1)
        samples = [sampler.sample() for _ in range(2000)]
        assert all(0 <= s < 1000 for s in samples)

    def test_larger_exp_range_is_more_skewed(self):
        def distinct(exp_range):
            sampler = ExpRangeSampler(100_000, exp_range, seed=2)
            return len({sampler.sample() for _ in range(5000)})

        # More skew → fewer distinct keys touched ("larger ER value means
        # more skewed data", §4.2).
        assert distinct(25.0) < distinct(15.0) < distinct(0.0)

    def test_zero_range_is_uniform(self):
        sampler = ExpRangeSampler(1000, 0.0, seed=3)
        samples = [sampler.sample() for _ in range(5000)]
        assert len(set(samples)) > 900

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExpRangeSampler(0, 15.0)
        with pytest.raises(ValueError):
            ExpRangeSampler(10, -1.0)


class TestValueSizeSampler:
    def test_single_size(self):
        sampler = ValueSizeSampler([100])
        assert all(sampler.sample() == 100 for _ in range(10))

    def test_weights_respected(self):
        sampler = ValueSizeSampler([10, 1000], weights=[99.0, 1.0], seed=4)
        samples = [sampler.sample() for _ in range(2000)]
        assert samples.count(10) > 1800

    def test_invalid(self):
        with pytest.raises(ValueError):
            ValueSizeSampler([])
        with pytest.raises(ValueError):
            ValueSizeSampler([0])
        with pytest.raises(ValueError):
            ValueSizeSampler([10], weights=[1.0, 2.0])


class TestCacheBenchDriver:
    SCALE = SchemeScale(
        zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
        ram_bytes=32 * KIB,
    )

    def make_stack(self):
        media = 16 * self.SCALE.zone_size
        return build_block_cache(SimClock(), self.SCALE, media, 12 * self.SCALE.zone_size)

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ValueError):
            CacheBenchConfig(get_ratio=0.5, set_ratio=0.5, delete_ratio=0.2)

    def test_run_produces_result(self):
        config = CacheBenchConfig(
            num_ops=2000, num_keys=500, value_sizes=(256, 512), value_weights=(1, 1)
        )
        driver = CacheBenchDriver(config)
        result = driver.run(self.make_stack().cache)
        assert result.operations > 0
        assert result.sim_seconds > 0
        assert result.throughput_ops_per_sec > 0
        assert 0.0 <= result.hit_ratio <= 1.0
        assert result.waf_total >= 1.0

    def test_deterministic_across_runs(self):
        config = CacheBenchConfig(num_ops=1500, num_keys=400)
        r1 = CacheBenchDriver(config).run(self.make_stack().cache)
        r2 = CacheBenchDriver(config).run(self.make_stack().cache)
        assert r1.hit_ratio == r2.hit_ratio
        assert r1.throughput_ops_per_sec == r2.throughput_ops_per_sec

    def test_warmup_excluded_from_stats(self):
        config = CacheBenchConfig(num_ops=500, num_keys=200, warmup_ops=500)
        stack = self.make_stack()
        result = CacheBenchDriver(config).run(stack.cache)
        # Only the measured ops are counted.
        assert result.operations <= 500 * 2  # set_on_miss may add sets

    def test_set_on_miss_refills(self):
        config = CacheBenchConfig(
            num_ops=3000, num_keys=100, set_on_miss=True, delete_ratio=0.0,
            get_ratio=0.8, set_ratio=0.2,
        )
        stack = self.make_stack()
        result = CacheBenchDriver(config).run(stack.cache)
        assert result.hit_ratio > 0.8  # tiny keyspace fully refilled

    def test_key_bytes_fixed_width(self):
        driver = CacheBenchDriver(CacheBenchConfig(num_ops=1, num_keys=10))
        assert len(driver.key_bytes(3)) == driver.config.key_size
        assert len(driver.value_bytes(3, 100)) == 100

    def test_ops_per_minute_conversion(self):
        config = CacheBenchConfig(num_ops=1000, num_keys=100)
        result = CacheBenchDriver(config).run(self.make_stack().cache)
        assert result.ops_per_minute_m == pytest.approx(
            result.throughput_ops_per_sec * 60 / 1e6
        )
